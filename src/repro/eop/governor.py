"""The per-node EOP governor: supervised, transactional margin adoption.

Section 3's feedback loop — HealthLog anomalies, StressLog
re-characterisation, hypervisor reconfiguration — is only closed if
adopting an extended operating point is *reversible*.  The governor owns
a :class:`~repro.eop.policy.EOPState` machine per component and applies
margins as transactions: every adoption records the component's previous
point and a rollback closure, so a runtime error-budget breach demotes
the component back to its last-known-safe point instead of leaving it
stuck at a margin the hardware has started disproving.

Demotion triggers, in priority order:

* a ``critical`` HealthLog :class:`AnomalyEvent` naming the component;
* the governor's own error-budget check (errors in the HealthLog ledger
  within ``policy.error_window_s`` reaching ``policy.error_budget``);
* stale telemetry — when the HealthLog info vectors age beyond
  ``stale_fallback_s``, *every* adopted point falls back to nominal
  until the daemon freshens (the paper's conservative fallback).

A demoted component sits out a probation window, then is re-promoted if
its ledger stayed clean; ``max_demotions`` breaches quarantine it for
the rest of the boot.

When ``policy.correlated_k`` is set, the governor also watches the
*pattern* of budget demotions: K components of one kind breaching
within ``policy.correlated_window_s`` is a shared-fault-domain
signature (a sagging rail, a hot rank group), not K independent
failures.  The guard then demotes every remaining adopted component of
that kind in one batch with a single rollback closure — none of them
accrues an individual demotion count, because the fault belongs to the
domain, not to the components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..core.eop import OperatingPoint
from ..core.events import AnomalyEvent, EOPTransitionEvent
from ..core.exceptions import ConfigurationError
from .policy import EOPPolicy, EOPState

if TYPE_CHECKING:
    from ..core.runtime import NodeRuntime
    from ..daemons.healthlog import HealthLog
    from ..daemons.infovector import MarginVector
    from ..hypervisor.hypervisor import Hypervisor
    from ..hypervisor.qos import QoSGuard


@dataclass
class ComponentRecord:
    """One component's position in the governor's state machine."""

    component: str
    kind: str  # "core" | "domain"
    state: EOPState = EOPState.NOMINAL
    #: The characterised extended point (last seen margin).
    target: Optional[OperatingPoint] = None
    failure_probability: float = 0.0
    #: The point to roll back to on demotion (pre-adoption configuration).
    saved_point: Optional[OperatingPoint] = None
    adopted_at: Optional[float] = None
    demoted_at: Optional[float] = None
    probation_until: Optional[float] = None
    demotions: int = 0
    #: Demoted by the stale-telemetry fallback (no probation; restored
    #: as soon as telemetry freshens).
    stale_demoted: bool = False
    last_reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {
            "component": self.component,
            "kind": self.kind,
            "state": self.state.value,
            "target": None if self.target is None else self.target.as_dict(),
            "failure_probability": self.failure_probability,
            "saved_point": (None if self.saved_point is None
                            else self.saved_point.as_dict()),
            "adopted_at": self.adopted_at,
            "demoted_at": self.demoted_at,
            "probation_until": self.probation_until,
            "demotions": self.demotions,
            "stale_demoted": self.stale_demoted,
            "last_reason": self.last_reason,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "ComponentRecord":
        """Inverse of :meth:`as_dict`."""
        def _point(value: object) -> Optional[OperatingPoint]:
            return None if value is None else OperatingPoint.from_dict(value)  # type: ignore[arg-type]

        def _time(value: object) -> Optional[float]:
            return None if value is None else float(value)  # type: ignore[arg-type]

        return cls(
            component=str(state["component"]),
            kind=str(state["kind"]),
            state=EOPState(str(state["state"])),
            target=_point(state["target"]),
            failure_probability=float(state["failure_probability"]),  # type: ignore[arg-type]
            saved_point=_point(state["saved_point"]),
            adopted_at=_time(state["adopted_at"]),
            demoted_at=_time(state["demoted_at"]),
            probation_until=_time(state["probation_until"]),
            demotions=int(state["demotions"]),  # type: ignore[arg-type]
            stale_demoted=bool(state["stale_demoted"]),
            last_reason=str(state["last_reason"]),
        )


@dataclass
class EOPTransaction:
    """One batch adoption: what changed, and how to undo it."""

    timestamp: float
    #: Components whose hardware configuration changed.
    adopted: List[str] = field(default_factory=list)
    #: Margins dropped before the budget gate (unknown / quarantined).
    skipped: List[str] = field(default_factory=list)
    #: Margins rejected by the budget or probation gate.
    rejected: List[str] = field(default_factory=list)
    committed: bool = False
    _rollbacks: List[Tuple[str, Callable[[], None]]] = field(
        default_factory=list, repr=False)

    def rollback(self) -> List[str]:
        """Undo every applied change, newest first."""
        undone: List[str] = []
        for component, undo in reversed(self._rollbacks):
            undo()
            undone.append(component)
        self._rollbacks.clear()
        self.committed = False
        return undone


class EOPGovernor:
    """Supervises one node's extended operating points.

    The governor sits between characterisation (margin vectors out of
    the StressLog) and the hardware-facing hypervisor setters.  It is
    the only code path that adopts margins at runtime; policy decides
    whether it adopts at all and how strictly it supervises afterwards.
    """

    def __init__(self, hypervisor: "Hypervisor",
                 qos: Optional["QoSGuard"] = None,
                 healthlog: Optional["HealthLog"] = None,
                 policy: Optional[EOPPolicy] = None,
                 runtime: Optional["NodeRuntime"] = None) -> None:
        self.hypervisor = hypervisor
        self.qos = qos
        self.healthlog = healthlog
        self.policy = policy or EOPPolicy.adopt_within_budget()
        self.clock = hypervisor.clock
        self.bus = hypervisor.bus
        self.metrics = (runtime.metrics if runtime is not None
                        else hypervisor.metrics)
        #: Telemetry-staleness horizon; mutable so the cloud controller's
        #: degradation config can (un)arm the conservative fallback.
        self.stale_fallback_s: Optional[float] = self.policy.stale_fallback_s
        #: Chaos switch: a wedged governor stops supervising (step() and
        #: anomaly demotions become no-ops) without touching the platform.
        self.wedged = False
        self._records: Dict[str, ComponentRecord] = {}
        #: Budget-counted demotions as ``(timestamp, kind)``, pruned to
        #: ``policy.correlated_window_s`` — the correlated guard's input.
        self._demotion_log: List[Tuple[float, str]] = []
        #: One entry per correlated-guard firing (timestamp, kind,
        #: components batch-demoted) for reports and tests.
        self.domain_demotion_events: List[Dict[str, object]] = []
        #: One entry per tier-budget firing (timestamp, tier, components)
        #: — the HRM counterpart of ``domain_demotion_events``.
        self.tier_demotion_events: List[Dict[str, object]] = []
        self._fallback_saved: Optional[Tuple[
            Dict[int, OperatingPoint], Dict[str, float]]] = None
        self._unsubscribe = self.bus.subscribe(AnomalyEvent, self._on_anomaly)
        # Register the gauge up front so metrics snapshots have the same
        # key set whether or not any adoption (or state restore) happened.
        self._refresh_gauges()

    @property
    def platform(self):
        """The hardware platform behind the hypervisor."""
        return self.hypervisor.platform

    # -- adoption (the transaction) -----------------------------------------

    def adopt(self, margins: "MarginVector") -> EOPTransaction:
        """Adopt a margin vector as one transaction.

        QoS filtering, the (policy-scaled) failure-budget gate and the
        per-component state machine all run before any hardware setter;
        if a setter raises mid-batch, every change already applied in
        this transaction is rolled back before the error propagates.
        """
        txn = EOPTransaction(timestamp=self.clock.now)
        vector = (self.qos.filter_margins(margins)
                  if self.qos is not None else margins)
        budget = (self.hypervisor.config.failure_budget
                  * self.policy.failure_budget_scale)
        try:
            for margin in vector.margins:
                self._adopt_one(margin, budget, txn)
        except Exception:
            undone = txn.rollback()
            for component in undone:
                record = self._records.get(component)
                if record is not None and record.state is EOPState.ADOPTED:
                    self._transition(record, EOPState.CANDIDATE,
                                     "transaction rolled back")
            self.metrics.inc("eop.transactions_rolled_back")
            raise
        if txn.adopted:
            self.hypervisor.stats.margin_applications += 1
            self.metrics.inc("hypervisor.margin_applications")
        txn.committed = True
        self._refresh_gauges()
        return txn

    def _adopt_one(self, margin, budget: float, txn: EOPTransaction) -> None:
        """Run one margin through the state machine and (maybe) apply it."""
        from ..hypervisor.hypervisor import Hypervisor

        component = margin.component
        if Hypervisor._core_id(component) is not None:
            kind = "core"
        elif component in self.platform.memory:
            kind = "domain"
        else:
            self.metrics.inc("eop.unknown_component")
            txn.skipped.append(component)
            return
        record = self._ensure_record(component, kind)
        record.target = margin.safe_point
        record.failure_probability = margin.failure_probability
        if record.state is EOPState.QUARANTINED:
            self.metrics.inc("eop.quarantine_blocked")
            txn.skipped.append(component)
            return
        if (record.state is EOPState.DEMOTED
                and record.probation_until is not None
                and self.clock.now < record.probation_until):
            txn.rejected.append(component)
            record.last_reason = "re-adoption blocked: on probation"
            return
        if not self.policy.adopt:
            if record.state is EOPState.NOMINAL:
                self._transition(
                    record, EOPState.CANDIDATE,
                    f"policy {self.policy.name!r} declines adoption")
            txn.rejected.append(component)
            return
        stance = (self.policy.stance_for(self._domain_tier(component) or "")
                  if kind == "domain" and self.policy.tier_stances else None)
        if stance is not None:
            if not stance.adopt:
                if record.state is EOPState.NOMINAL:
                    self._transition(
                        record, EOPState.CANDIDATE,
                        f"tier {stance.tier!r} pinned at nominal")
                txn.rejected.append(component)
                return
            cap = stance.max_refresh_interval_s
            if (cap is not None
                    and margin.safe_point.refresh_interval_s > cap):
                # Clamp, don't reject: the tier takes as much margin as
                # its stance allows.
                record.target = margin.safe_point.with_refresh(cap)
                self.metrics.inc("eop.tier_clamped")
        if margin.failure_probability > budget:
            self.metrics.inc("hypervisor.margin_skips")
            if record.state is EOPState.NOMINAL:
                self._transition(
                    record, EOPState.CANDIDATE,
                    f"failure probability {margin.failure_probability:.2e} "
                    f"over budget {budget:.2e}")
            txn.rejected.append(component)
            return
        old = self._current_point(record)
        # record.target is margin.safe_point, possibly refresh-clamped by
        # the tier stance above.
        undo = self.hypervisor.apply_component(component, record.target)
        if undo is not None:
            txn.adopted.append(component)
            txn._rollbacks.append((component, undo))
            record.saved_point = old
        if record.state is not EOPState.ADOPTED:
            record.adopted_at = self.clock.now
            record.probation_until = None
            record.stale_demoted = False
            self._transition(record, EOPState.ADOPTED, "margin adopted")
            self.metrics.inc("eop.adopted")

    def _domain_tier(self, component: str) -> Optional[str]:
        """The memory tier of a domain component (None for cores)."""
        if component in self.platform.memory:
            return self.platform.memory.domain(component).tier
        return None

    def _current_point(self, record: ComponentRecord) -> OperatingPoint:
        """The component's live configuration, as a rollback target."""
        from ..hypervisor.hypervisor import Hypervisor

        if record.kind == "core":
            core_id = Hypervisor._core_id(record.component)
            assert core_id is not None
            return self.platform.core_point(core_id)
        domain = self.platform.memory.domain(record.component)
        base = record.target or self.platform.chip.spec.nominal
        return base.with_refresh(domain.refresh_interval_s)

    # -- demotion and re-promotion ------------------------------------------

    def demote(self, component: str, reason: str,
               count: bool = True) -> bool:
        """Roll one adopted component back to its last-known-safe point.

        Returns True when a rollback actually happened.  ``count=False``
        demotions (stale telemetry) carry no probation and do not move
        the component toward quarantine.
        """
        record = self._records.get(component)
        if record is None or record.state is not EOPState.ADOPTED:
            return False
        if record.saved_point is not None:
            self.hypervisor.apply_component(component, record.saved_point)
        now = self.clock.now
        record.demoted_at = now
        if count:
            record.demotions += 1
            if record.demotions >= self.policy.max_demotions:
                self._transition(record, EOPState.QUARANTINED, reason)
                self.metrics.inc("eop.quarantined")
            else:
                record.probation_until = now + self.policy.probation_s
                self._transition(record, EOPState.DEMOTED, reason)
        else:
            record.stale_demoted = True
            record.probation_until = None
            self._transition(record, EOPState.DEMOTED, reason)
        self.metrics.inc("eop.demoted")
        self._refresh_gauges()
        if count:
            self._note_budget_demotion(record.kind, now)
        return True

    # -- the correlated-demotion guard ---------------------------------------

    def _note_budget_demotion(self, kind: str, now: float) -> None:
        """Feed one budget demotion to the correlated guard."""
        if self.policy.correlated_k is None:
            return
        window = self.policy.correlated_window_s
        self._demotion_log.append((now, kind))
        self._demotion_log = [
            (when, k) for when, k in self._demotion_log
            if when > now - window]
        breaches = sum(1 for _, k in self._demotion_log if k == kind)
        if breaches >= self.policy.correlated_k:
            # Consume the evidence so one episode fires the guard once.
            self._demotion_log = [
                (when, k) for when, k in self._demotion_log if k != kind]
            self._demote_kind(
                kind, now,
                f"correlated guard: {breaches} {kind} components "
                f"breached within {window:.0f}s")

    def _demote_kind(self, kind: str, now: float,
                     reason: str) -> Optional[EOPTransaction]:
        """Demote every remaining adopted ``kind`` component as one batch.

        The hardware rollbacks run first, collected in a single
        :class:`EOPTransaction`; if a setter raises mid-batch the
        already-reverted components are restored before the error
        propagates, so the domain demotes atomically or not at all.
        None of the batch accrues an individual demotion count — the
        breach is charged to the shared domain, not its members.
        """
        members = [record for record in self.records()
                   if record.kind == kind
                   and record.state is EOPState.ADOPTED]
        if not members:
            return None
        txn = EOPTransaction(timestamp=now)
        try:
            for record in members:
                if record.saved_point is None:
                    continue
                target = record.saved_point
                undo = self.hypervisor.apply_component(
                    record.component, target)
                if undo is not None:
                    txn._rollbacks.append((record.component, undo))
        except Exception:
            txn.rollback()
            raise
        for record in members:
            record.demoted_at = now
            record.probation_until = now + self.policy.probation_s
            self._transition(record, EOPState.DEMOTED, reason)
            self.metrics.inc("eop.demoted")
        txn.committed = True
        self.metrics.inc("eop.correlated_demotions")
        self.domain_demotion_events.append({
            "timestamp": now,
            "kind": kind,
            "components": [record.component for record in members],
            "reason": reason,
        })
        self._refresh_gauges()
        return txn

    def _review_tier_budgets(self, now: float) -> None:
        """Charge ledger errors to tier-scoped budgets (HRM supervision).

        Errors from every adopted domain of a tier count against that
        tier's stance budget; a breach demotes the whole tier in one
        batch while the other tiers' adopted margins stand untouched.
        """
        assert self.policy.tier_stances is not None
        for stance in self.policy.tier_stances:
            members = [
                record for record in self.records()
                if record.kind == "domain"
                and record.state is EOPState.ADOPTED
                and self._domain_tier(record.component) == stance.tier
            ]
            if not members:
                continue
            since = now - stance.error_window_s
            errors = sum(self._ledger_count(record.component, since)
                         for record in members)
            if errors >= stance.error_budget:
                self._demote_tier(
                    stance.tier, now,
                    f"tier {stance.tier!r}: {errors} errors within "
                    f"{stance.error_window_s:.0f}s "
                    f"(budget {stance.error_budget})")

    def _demote_tier(self, tier: str, now: float,
                     reason: str) -> Optional[EOPTransaction]:
        """Demote every adopted domain of one memory tier as one batch.

        Mirrors :meth:`_demote_kind`: hardware rollbacks run first in a
        single transaction (atomic — a mid-batch setter failure restores
        the already-reverted domains), members take probation but no
        individual demotion count, and domains of *other* tiers are
        never touched.
        """
        members = [
            record for record in self.records()
            if record.kind == "domain"
            and record.state is EOPState.ADOPTED
            and self._domain_tier(record.component) == tier
        ]
        if not members:
            return None
        txn = EOPTransaction(timestamp=now)
        try:
            for record in members:
                if record.saved_point is None:
                    continue
                undo = self.hypervisor.apply_component(
                    record.component, record.saved_point)
                if undo is not None:
                    txn._rollbacks.append((record.component, undo))
        except Exception:
            txn.rollback()
            raise
        for record in members:
            record.demoted_at = now
            record.probation_until = now + self.policy.probation_s
            self._transition(record, EOPState.DEMOTED, reason)
            self.metrics.inc("eop.demoted")
        txn.committed = True
        self.metrics.inc("eop.tier_demotions")
        self.tier_demotion_events.append({
            "timestamp": now,
            "tier": tier,
            "components": [record.component for record in members],
            "reason": reason,
        })
        self._refresh_gauges()
        return txn

    def _promote(self, record: ComponentRecord, reason: str) -> None:
        """Re-adopt a demoted component's target after clean probation."""
        if record.target is not None:
            record.saved_point = self._current_point(record)
            self.hypervisor.apply_component(record.component, record.target)
        record.adopted_at = self.clock.now
        record.probation_until = None
        record.stale_demoted = False
        self._transition(record, EOPState.ADOPTED, reason)
        self.metrics.inc("eop.promoted")
        if self.healthlog is not None:
            # Probation served: re-arm the HealthLog anomaly trigger so a
            # fresh breach at the re-adopted point raises again.
            self.healthlog.clear_flag(record.component)
        self._refresh_gauges()

    # -- the supervision loop ------------------------------------------------

    def step(self) -> None:
        """One supervision pass: stale fallback, budgets, probations."""
        if self.hypervisor.crashed:
            return
        if self.wedged:
            self.metrics.inc("eop.wedged_ticks")
            return
        now = self.clock.now
        self._review_stale_fallback(now)
        if not (self.policy.adopt and self.policy.supervise):
            return
        if self._fallback_saved is not None:
            return  # everything is nominal until telemetry freshens
        if self.policy.tier_stances is not None:
            self._review_tier_budgets(now)
        window = self.policy.error_window_s
        for record in list(self._records.values()):
            if record.state is EOPState.ADOPTED:
                if (self.policy.tier_stances is not None
                        and record.kind == "domain"
                        and self.policy.stance_for(
                            self._domain_tier(record.component) or "")
                        is not None):
                    # Tier-scoped budget (above) governs this domain.
                    continue
                errors = self._ledger_count(record.component, now - window)
                if errors >= self.policy.error_budget:
                    self.demote(
                        record.component,
                        f"{errors} errors within {window:.0f}s")
            elif (record.state is EOPState.DEMOTED
                  and not record.stale_demoted
                  and record.probation_until is not None
                  and now >= record.probation_until):
                errors = self._ledger_count(record.component, now - window)
                if errors < self.policy.error_budget:
                    self._promote(record, "probation served clean")
                else:
                    record.probation_until = now + self.policy.probation_s
                    record.last_reason = "probation extended"

    def _ledger_count(self, component: str, since: float) -> int:
        """Runtime errors attributed to ``component`` since ``since``.

        The HealthLog ledger is the superset view (it also sees faults
        injected on the bus); the platform ledger is the fallback when
        the governor runs without daemons.
        """
        ledger = (self.healthlog.ledger if self.healthlog is not None
                  else self.platform.faults)
        return ledger.count(component=component, since=since)

    def _on_anomaly(self, event: AnomalyEvent) -> None:
        """A critical HealthLog anomaly demotes the named component."""
        if self.wedged or not (self.policy.adopt and self.policy.supervise):
            return
        if event.severity != "critical" or not event.component:
            return
        self.demote(event.component,
                    f"healthlog anomaly: {event.description}")

    # -- the stale-telemetry conservative fallback ---------------------------

    def _review_stale_fallback(self, now: float) -> None:
        """The paper's conservative-fallback semantics.

        When the HealthLog info vectors go stale the governor can no
        longer trust that extended points are being monitored: it saves
        the current configuration, resets the platform to nominal and
        marks every adopted component stale-demoted; once telemetry
        freshens the saved configuration is restored and the components
        re-promoted.  Both edges are level-triggered but idempotent —
        the save/restore pair runs at most once per stale episode.
        """
        if self.stale_fallback_s is None or self.healthlog is None:
            return
        age = self.healthlog.info_vector_age_s()
        if age > self.stale_fallback_s and self._fallback_saved is None:
            self._fallback_saved = (
                {core.core_id: self.platform.core_point(core.core_id)
                 for core in self.platform.chip.cores},
                {domain.name: domain.refresh_interval_s
                 for domain in self.platform.memory.domains()
                 if not domain.reliable},
            )
            self.platform.reset_nominal()
            self.metrics.inc("resilience.fallback.engaged")
            for record in self._records.values():
                if record.state is EOPState.ADOPTED:
                    record.stale_demoted = True
                    record.demoted_at = now
                    record.probation_until = None
                    self._transition(
                        record, EOPState.DEMOTED,
                        f"telemetry stale ({age:.0f}s); nominal fallback")
                    self.metrics.inc("eop.demoted")
        elif age <= self.stale_fallback_s and self._fallback_saved:
            core_points, refresh_intervals = self._fallback_saved
            for core_id, point in core_points.items():
                self.platform.set_core_point(core_id, point)
            for name, interval in refresh_intervals.items():
                self.platform.memory.domain(name).set_refresh_interval(
                    interval)
            self._fallback_saved = None
            self.metrics.inc("resilience.fallback.restored")
            for record in self._records.values():
                if record.state is EOPState.DEMOTED and record.stale_demoted:
                    record.stale_demoted = False
                    record.adopted_at = now
                    self._transition(record, EOPState.ADOPTED,
                                     "telemetry fresh; fallback restored")
                    self.metrics.inc("eop.promoted")
            self._refresh_gauges()

    # -- introspection -------------------------------------------------------

    def record(self, component: str) -> Optional[ComponentRecord]:
        """The state-machine record for one component, if any."""
        return self._records.get(component)

    def records(self) -> List[ComponentRecord]:
        """All records, sorted by component name."""
        return sorted(self._records.values(), key=lambda r: r.component)

    def counts(self) -> Dict[str, int]:
        """Component count per state (all states present, zero-filled)."""
        counts = {state.value: 0 for state in EOPState}
        for record in self._records.values():
            counts[record.state.value] += 1
        return counts

    def adopted_count(self) -> int:
        """Components currently running an extended point."""
        return sum(1 for r in self._records.values()
                   if r.state is EOPState.ADOPTED)

    def state_table(self) -> List[Dict[str, object]]:
        """Per-component rows for the ``repro eop`` CLI table."""
        return [
            {
                "component": r.component,
                "kind": r.kind,
                "state": r.state.value,
                "demotions": r.demotions,
                "failure_probability": r.failure_probability,
                "target": "" if r.target is None else r.target.describe(),
                "reason": r.last_reason,
            }
            for r in self.records()
        ]

    def _refresh_gauges(self) -> None:
        self.metrics.set_gauge("eop.components_adopted",
                               float(self.adopted_count()))

    def _ensure_record(self, component: str, kind: str) -> ComponentRecord:
        record = self._records.get(component)
        if record is None:
            record = ComponentRecord(component=component, kind=kind)
            self._records[component] = record
        return record

    def _transition(self, record: ComponentRecord, state: EOPState,
                    reason: str) -> None:
        old = record.state
        record.state = state
        record.last_reason = reason
        self.bus.publish(EOPTransitionEvent(
            timestamp=self.clock.now, source="eop-governor",
            component=record.component, from_state=old.value,
            to_state=state.value, reason=reason,
        ))

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable governor state (policy is config, not state)."""
        fallback = None
        if self._fallback_saved is not None:
            core_points, refresh_intervals = self._fallback_saved
            fallback = {
                "core_points": {str(core_id): point.as_dict()
                                for core_id, point in core_points.items()},
                "refresh_intervals": dict(refresh_intervals),
            }
        return {
            "records": {name: record.as_dict()
                        for name, record in self._records.items()},
            "stale_fallback_s": self.stale_fallback_s,
            "wedged": self.wedged,
            "fallback_saved": fallback,
            "demotion_log": [[when, kind]
                             for when, kind in self._demotion_log],
            "domain_demotion_events": [
                dict(event) for event in self.domain_demotion_events],
            "tier_demotion_events": [
                dict(event) for event in self.tier_demotion_events],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state saved by :meth:`state_dict`.

        Operating points themselves live in the platform's state dict;
        the governor only restores its bookkeeping on top.
        """
        records = state["records"]
        if not isinstance(records, dict):
            raise ConfigurationError("governor state: records must be a dict")
        self._records = {
            str(name): ComponentRecord.from_dict(record)
            for name, record in records.items()
        }
        stale = state["stale_fallback_s"]
        self.stale_fallback_s = None if stale is None else float(stale)  # type: ignore[arg-type]
        self.wedged = bool(state["wedged"])
        # .get defaults keep pre-guard snapshots loadable.
        self._demotion_log = [
            (float(when), str(kind))
            for when, kind in state.get("demotion_log", [])]  # type: ignore[union-attr]
        self.domain_demotion_events = [
            dict(event) for event in state.get(
                "domain_demotion_events", [])]  # type: ignore[union-attr]
        self.tier_demotion_events = [
            dict(event) for event in state.get(
                "tier_demotion_events", [])]  # type: ignore[union-attr]
        fallback = state["fallback_saved"]
        if fallback is None:
            self._fallback_saved = None
        else:
            self._fallback_saved = (
                {int(core_id): OperatingPoint.from_dict(point)
                 for core_id, point in fallback["core_points"].items()},  # type: ignore[index]
                {str(name): float(interval)
                 for name, interval
                 in fallback["refresh_intervals"].items()},  # type: ignore[index]
            )
        self._refresh_gauges()
