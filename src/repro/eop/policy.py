"""EOP adoption policies and the per-component state machine vocabulary.

The paper treats margin reduction as a *supervised* process: a component
may run at an extended operating point only while its runtime error
behaviour stays inside an explicit budget.  An :class:`EOPPolicy` is the
typed knob bundle that replaced the old boolean adoption flag —
whether to adopt characterised points at all, whether to keep
supervising them afterwards, and how aggressively to trade failure
probability for energy.

The governor (:mod:`repro.eop.governor`) drives each component through

    NOMINAL -> CANDIDATE -> ADOPTED -> DEMOTED -> (probation) -> ADOPTED
                                    \\-> QUARANTINED

where CANDIDATE marks a characterised point that did not fit the budget,
DEMOTED is a rollback to the last-known-safe point with a probation
timer, and QUARANTINED is a component that breached its budget too many
times to trust again this boot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..core.exceptions import ConfigurationError
from ..hardware.dram import MEMORY_TIERS, TIER_NORMAL, TIER_RELAXED, TIER_STRONG


@dataclass(frozen=True)
class TierStance:
    """Per-memory-tier refresh stance for a heterogeneous-reliability node.

    ``adopt=False`` pins the tier at nominal refresh regardless of what
    characterisation offers (the strong tier's posture).
    ``max_refresh_interval_s`` caps how far an adopted margin may relax
    the tier's refresh; margins beyond the cap are clamped, not
    rejected.  ``error_budget`` errors within ``error_window_s`` summed
    across the *tier's* domains demote the whole tier in one batch —
    without touching the other tiers.
    """

    tier: str
    adopt: bool = True
    error_budget: int = 10
    error_window_s: float = 300.0
    max_refresh_interval_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tier not in MEMORY_TIERS:
            raise ConfigurationError(f"unknown memory tier {self.tier!r}")
        if self.error_budget < 1:
            raise ConfigurationError("error_budget must be >= 1")
        if self.error_window_s <= 0:
            raise ConfigurationError("error_window_s must be positive")
        if (self.max_refresh_interval_s is not None
                and self.max_refresh_interval_s <= 0):
            raise ConfigurationError(
                "max_refresh_interval_s must be positive")

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {
            "tier": self.tier,
            "adopt": self.adopt,
            "error_budget": self.error_budget,
            "error_window_s": self.error_window_s,
            "max_refresh_interval_s": self.max_refresh_interval_s,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "TierStance":
        """Inverse of :meth:`as_dict`."""
        cap = state.get("max_refresh_interval_s")
        return cls(
            tier=str(state["tier"]),
            adopt=bool(state.get("adopt", True)),
            error_budget=int(state.get("error_budget", 10)),  # type: ignore[arg-type]
            error_window_s=float(state.get("error_window_s", 300.0)),  # type: ignore[arg-type]
            max_refresh_interval_s=None if cap is None else float(cap),  # type: ignore[arg-type]
        )


class EOPState(enum.Enum):
    """Lifecycle of one component's extended operating point."""

    #: Running the guard-banded factory point; no margin adopted.
    NOMINAL = "nominal"
    #: A characterised point exists but was rejected (over budget / QoS).
    CANDIDATE = "candidate"
    #: Running the characterised extended point under supervision.
    ADOPTED = "adopted"
    #: Rolled back to the last-known-safe point; on probation.
    DEMOTED = "demoted"
    #: Breached the error budget too often; never re-promoted this boot.
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class EOPPolicy:
    """How eagerly a node adopts — and how strictly it supervises — EOPs.

    ``failure_budget_scale`` multiplies the hypervisor's failure budget
    when gating adoption (>1 admits riskier points).  ``error_budget``
    errors within ``error_window_s`` demote an adopted component;
    ``max_demotions`` demotions quarantine it.  A demoted component is
    re-promoted after a clean ``probation_s``.  ``stale_fallback_s`` is
    the telemetry-staleness horizon beyond which every adopted point is
    demoted back to nominal until the HealthLog freshens (None disables
    the check).

    ``correlated_k`` arms the correlated-demotion guard: when at least
    that many components of one kind ("core" or "domain" — a shared
    fault domain such as a voltage rail or a DRAM rank group) are
    budget-demoted within ``correlated_window_s``, the governor treats
    the breaches as one domain-level fault and demotes every remaining
    adopted component of that kind in a single transaction, instead of
    letting the shared fault march each component toward quarantine
    one budget breach at a time (None disables the guard).
    """

    name: str
    adopt: bool = True
    supervise: bool = True
    failure_budget_scale: float = 1.0
    error_budget: int = 10
    error_window_s: float = 300.0
    probation_s: float = 600.0
    max_demotions: int = 2
    stale_fallback_s: Optional[float] = None
    correlated_k: Optional[int] = None
    correlated_window_s: float = 120.0
    #: Per-memory-tier stances (HRM).  ``None`` keeps the legacy
    #: per-component supervision for every domain; with stances set, the
    #: governor adopts refresh margins per tier and charges errors to
    #: tier-scoped budgets.
    tier_stances: Optional[Tuple[TierStance, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("policy name must be non-empty")
        if self.failure_budget_scale <= 0:
            raise ConfigurationError("failure_budget_scale must be positive")
        if self.error_budget < 1:
            raise ConfigurationError("error_budget must be >= 1")
        if self.error_window_s <= 0:
            raise ConfigurationError("error_window_s must be positive")
        if self.probation_s <= 0:
            raise ConfigurationError("probation_s must be positive")
        if self.max_demotions < 1:
            raise ConfigurationError("max_demotions must be >= 1")
        if self.stale_fallback_s is not None and self.stale_fallback_s <= 0:
            raise ConfigurationError("stale_fallback_s must be positive")
        if self.correlated_k is not None and self.correlated_k < 1:
            raise ConfigurationError("correlated_k must be >= 1")
        if self.correlated_window_s <= 0:
            raise ConfigurationError("correlated_window_s must be positive")
        if self.tier_stances is not None:
            tiers = [stance.tier for stance in self.tier_stances]
            if len(set(tiers)) != len(tiers):
                raise ConfigurationError("duplicate tier stances")

    def stance_for(self, tier: str) -> Optional[TierStance]:
        """The stance governing one tier, if any."""
        if self.tier_stances is None:
            return None
        for stance in self.tier_stances:
            if stance.tier == tier:
                return stance
        return None

    # -- the three paper-facing stances (plus the legacy one-shot) ------------

    @classmethod
    def conservative(cls) -> "EOPPolicy":
        """Never leave nominal: characterisation informs, nothing adopts."""
        return cls(name="conservative", adopt=False, supervise=False)

    @classmethod
    def adopt_within_budget(cls) -> "EOPPolicy":
        """The paper's default: adopt within budget, supervise, roll back."""
        return cls(name="adopt-within-budget")

    @classmethod
    def aggressive(cls) -> "EOPPolicy":
        """Chase energy: a 10x budget and a short probation window."""
        return cls(name="aggressive", failure_budget_scale=10.0,
                   probation_s=300.0, max_demotions=3)

    @classmethod
    def one_shot(cls) -> "EOPPolicy":
        """The pre-governor behaviour: adopt once, never supervise.

        Kept as the governor-off arm of A/B benchmarks; not a stance the
        paper recommends.
        """
        return cls(name="one-shot", supervise=False)

    @classmethod
    def tiered(cls) -> "EOPPolicy":
        """Heterogeneous-reliability stance: refresh governed per tier.

        The strong tier never leaves nominal; the normal tier relaxes to
        at most 1.5 s under a tight tier-wide error budget; the relaxed
        tier chases refresh energy under a loose budget.  Demoting one
        tier leaves the others' adopted margins standing.
        """
        return cls(name="tiered", tier_stances=(
            TierStance(tier=TIER_STRONG, adopt=False),
            TierStance(tier=TIER_NORMAL, error_budget=5,
                       error_window_s=300.0, max_refresh_interval_s=1.5),
            TierStance(tier=TIER_RELAXED, error_budget=20,
                       error_window_s=300.0),
        ))

    _BY_NAME = {
        "conservative": "conservative",
        "adopt-within-budget": "adopt_within_budget",
        "aggressive": "aggressive",
        "one-shot": "one_shot",
        "tiered": "tiered",
    }

    @classmethod
    def from_name(cls, name: str) -> "EOPPolicy":
        """The named stance, e.g. for CLI ``--policy`` flags."""
        try:
            factory = cls._BY_NAME[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown EOP policy {name!r}; "
                f"choose from {sorted(cls._BY_NAME)}") from None
        return getattr(cls, factory)()

    def with_overrides(self, **changes: object) -> "EOPPolicy":
        """A copy with individual knobs replaced (validation re-runs)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # -- persistence ----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {
            "name": self.name,
            "adopt": self.adopt,
            "supervise": self.supervise,
            "failure_budget_scale": self.failure_budget_scale,
            "error_budget": self.error_budget,
            "error_window_s": self.error_window_s,
            "probation_s": self.probation_s,
            "max_demotions": self.max_demotions,
            "stale_fallback_s": self.stale_fallback_s,
            "correlated_k": self.correlated_k,
            "correlated_window_s": self.correlated_window_s,
            "tier_stances": (
                None if self.tier_stances is None
                else [stance.as_dict() for stance in self.tier_stances]),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "EOPPolicy":
        """Inverse of :meth:`as_dict`."""
        stale = state["stale_fallback_s"]
        # .get defaults keep pre-guard policy dicts loadable.
        correlated_k = state.get("correlated_k")
        stances = state.get("tier_stances")
        return cls(
            name=str(state["name"]),
            adopt=bool(state["adopt"]),
            supervise=bool(state["supervise"]),
            failure_budget_scale=float(state["failure_budget_scale"]),  # type: ignore[arg-type]
            error_budget=int(state["error_budget"]),  # type: ignore[arg-type]
            error_window_s=float(state["error_window_s"]),  # type: ignore[arg-type]
            probation_s=float(state["probation_s"]),  # type: ignore[arg-type]
            max_demotions=int(state["max_demotions"]),  # type: ignore[arg-type]
            stale_fallback_s=None if stale is None else float(stale),  # type: ignore[arg-type]
            correlated_k=None if correlated_k is None else int(correlated_k),  # type: ignore[arg-type]
            correlated_window_s=float(
                state.get("correlated_window_s", 120.0)),  # type: ignore[arg-type]
            tier_stances=(
                None if stances is None
                else tuple(TierStance.from_dict(s) for s in stances)),  # type: ignore[union-attr]
        )
