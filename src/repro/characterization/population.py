"""Chip-population binning study (paper Figure 1).

Figure 1's message: "each manufactured chip is intrinsically different in
terms of capabilities" — the population spreads across performance bins,
and conservative per-SKU margins waste everything above the worst part.

This campaign samples a manufactured population, bins it classically, and
quantifies what UniServer recovers:

* the Vmin/Fmax distribution and its bin populations (the figure);
* the classical binning yield and the fraction of discards recoverable
  with per-core EOPs (Section 5.A's yield argument);
* the mean per-chip voltage margin wasted by a one-size-fits-all nominal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..hardware.variation import (
    DEFAULT_BINS,
    Bin,
    ChipSample,
    VariationModel,
    VariationParameters,
    bin_population,
    binning_yield,
    per_core_recoverable_fraction,
)


@dataclass
class PopulationStudy:
    """Results of a population sampling + binning run."""

    population: List[ChipSample]
    binned: Dict[str, List[ChipSample]]
    bins: Tuple[Bin, ...]

    @property
    def n_chips(self) -> int:
        """Number of chips in the sampled population."""
        return len(self.population)

    def bin_counts(self) -> Dict[str, int]:
        """Chips per bin, in bin order then discard."""
        order = [b.name for b in self.bins] + ["discard"]
        return {name: len(self.binned.get(name, [])) for name in order}

    def classical_yield(self) -> float:
        """Fraction of parts surviving classical binning."""
        return binning_yield(self.binned)

    def recoverable_discard_fraction(self) -> float:
        """Fraction of discards usable under per-core EOPs."""
        worst_bin = max(b.max_vmin_factor for b in self.bins)
        return per_core_recoverable_fraction(self.population, worst_bin)

    def vmin_factor_histogram(self, n_bins: int = 12,
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of worst-core Vmin factors (Figure 1's x-axis)."""
        worst = [c.worst_vmin_factor() for c in self.population]
        counts, edges = np.histogram(worst, bins=n_bins)
        return counts, edges

    def per_core_margin_waste(self) -> float:
        """Mean fractional voltage wasted by worst-part provisioning.

        A conservative vendor sets nominal for the worst shipped part;
        every better core runs that much above its true requirement.
        UniServer reclaims this gap per core.
        """
        shipped = [
            chip for name, chips in self.binned.items() if name != "discard"
            for chip in chips
        ]
        if not shipped:
            return 0.0
        worst_shipped = max(c.worst_vmin_factor() for c in shipped)
        gaps = [
            worst_shipped - factor
            for chip in shipped
            for factor in chip.core_vmin_factor
        ]
        return float(np.mean(gaps))

    def core_spread_summary(self) -> Tuple[float, float, float]:
        """(mean, min, max) within-chip core-to-core Vmin spread."""
        spreads = [c.core_to_core_vmin_spread() for c in self.population]
        return float(np.mean(spreads)), float(min(spreads)), float(max(spreads))


def run_population_study(n_chips: int = 1000, n_cores: int = 8,
                         seed: int = 42,
                         params: Optional[VariationParameters] = None,
                         bins: Sequence[Bin] = DEFAULT_BINS,
                         ) -> PopulationStudy:
    """Sample and bin a manufactured population (Figure 1 driver)."""
    if n_chips < 10:
        raise ConfigurationError("population study needs >= 10 chips")
    model = VariationModel(params, seed=seed)
    population = model.sample_population(n_chips, n_cores)
    binned = bin_population(population, bins)
    return PopulationStudy(
        population=population, binned=binned, bins=tuple(bins)
    )
