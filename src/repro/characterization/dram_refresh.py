"""DRAM refresh-relaxation characterisation campaign (paper Section 6.B).

Mirrors the paper's instrumented framework: main memory split into
per-channel refresh domains; critical kernel code/stack pinned to a
reliable domain at nominal 64 ms refresh; the remaining domains swept
through relaxed refresh intervals under random test patterns while a
full-fledged (simulated) Linux keeps running.

Outputs reproduce the Section 6.B findings:

* errors observed per interval (none up to 1.5 s at server-room temp);
* cumulative BER per interval (≈1e-9 at 5 s = 78× nominal), compared
  against commercial DRAM BER targets and the SECDED 1e-6 capability;
* refresh-power savings at each relaxation, and the refresh share of
  total memory power as device density scales 2 Gb → 32 Gb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S
from ..core.exceptions import ConfigurationError
from ..hardware.dram import DramSystem, MemoryDomain
from ..hardware.ecc import SECDED_BER_CAPABILITY
from ..hardware.power import DramPowerModel
from ..workloads.patterns import RANDOM, TestPattern

#: BER targeted by commercial DRAM parts (paper: "within the BERs
#: targeted by commercial DRAMs", order 1e-9).
COMMERCIAL_DRAM_BER_TARGET = 1e-9

#: The paper's headline relaxation points: 1.5 s (error-free) and 5 s
#: (78× nominal, BER ≈ 1e-9).
PAPER_RELAXED_INTERVALS_S = (0.064, 0.128, 0.256, 0.512, 1.0, 1.5, 3.0, 5.0)


@dataclass(frozen=True)
class RefreshStepResult:
    """Observation at one refresh interval."""

    refresh_interval_s: float
    relaxation_factor: float
    observed_errors: int
    cumulative_ber: float
    refresh_power_w: float
    total_power_w: float

    @property
    def error_free(self) -> bool:
        """Whether this step observed zero errors."""
        return self.observed_errors == 0

    @property
    def within_commercial_target(self) -> bool:
        """BER at/below the commercial DRAM target."""
        return self.cumulative_ber <= COMMERCIAL_DRAM_BER_TARGET

    @property
    def within_secded_capability(self) -> bool:
        """BER at/below the SECDED 1e-6 capability."""
        return self.cumulative_ber <= SECDED_BER_CAPABILITY


@dataclass
class RefreshCampaignResult:
    """Full sweep results plus derived headline numbers."""

    domain_name: str
    capacity_gb: float
    temperature_c: float
    pattern_name: str
    steps: List[RefreshStepResult] = field(default_factory=list)

    def max_error_free_interval_s(self) -> float:
        """Longest tested interval with zero observed errors."""
        error_free = [s.refresh_interval_s for s in self.steps if s.error_free]
        if not error_free:
            raise ConfigurationError("no error-free interval observed")
        return max(error_free)

    def step_at(self, interval_s: float) -> RefreshStepResult:
        """The sweep step at an exact refresh interval."""
        for step in self.steps:
            if abs(step.refresh_interval_s - interval_s) < 1e-9:
                return step
        raise KeyError(f"no step at interval {interval_s} s")

    def refresh_power_saving_fraction(self, interval_s: float) -> float:
        """Refresh-power reduction at an interval relative to nominal."""
        nominal = self.step_at(NOMINAL_REFRESH_INTERVAL_S).refresh_power_w
        relaxed = self.step_at(interval_s).refresh_power_w
        if nominal == 0:
            return 0.0
        return 1.0 - relaxed / nominal


class RefreshRelaxationCampaign:
    """Sweeps a (non-reliable) memory domain through refresh intervals."""

    def __init__(self, memory: DramSystem, domain_name: str,
                 pattern: TestPattern = RANDOM, passes: int = 4,
                 temperature_c: float = 45.0,
                 intervals_s: Sequence[float] = PAPER_RELAXED_INTERVALS_S,
                 ) -> None:
        domain = memory.domain(domain_name)
        if domain.reliable:
            raise ConfigurationError(
                "characterise a relaxable domain, not the reliable one"
            )
        if passes < 1:
            raise ConfigurationError("passes must be >= 1")
        self.memory = memory
        self.domain = domain
        self.pattern = pattern
        self.passes = passes
        self.temperature_c = temperature_c
        self.intervals_s = sorted(intervals_s)

    def run(self) -> RefreshCampaignResult:
        """Sweep all intervals and restore nominal refresh afterwards."""
        result = RefreshCampaignResult(
            domain_name=self.domain.name,
            capacity_gb=self.domain.capacity_gb,
            temperature_c=self.temperature_c,
            pattern_name=self.pattern.name,
        )
        original_interval = self.domain.refresh_interval_s
        try:
            for interval in self.intervals_s:
                self.domain.set_refresh_interval(interval)
                coverage = self.pattern.cumulative_coverage(self.passes)
                errors = self.domain.sample_pattern_errors(
                    coverage=coverage, passes=1,
                    temperature_c=self.temperature_c,
                )
                result.steps.append(RefreshStepResult(
                    refresh_interval_s=interval,
                    relaxation_factor=interval / NOMINAL_REFRESH_INTERVAL_S,
                    observed_errors=errors,
                    cumulative_ber=self.domain.ber(self.temperature_c),
                    refresh_power_w=self.domain.refresh_power_w(),
                    total_power_w=self.domain.total_power_w(),
                ))
        finally:
            self.domain.set_refresh_interval(original_interval)
        return result


@dataclass(frozen=True)
class RefreshShareRow:
    """Refresh share of total device power at one density."""

    density_gbit: float
    refresh_share_nominal: float
    refresh_share_relaxed: float
    relaxed_interval_s: float


def refresh_share_vs_density(
        densities_gbit: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 32.0),
        relaxed_interval_s: float = 1.5) -> List[RefreshShareRow]:
    """Refresh power share as device density scales (paper: 9 % → >34 %).

    The second column shows what relaxation to ``relaxed_interval_s``
    leaves of that share — the saving grows with density, which is the
    paper's argument that refresh relaxation matters *more* for future
    parts.
    """
    rows = []
    for density in densities_gbit:
        model = DramPowerModel(density_gbit=density)
        rows.append(RefreshShareRow(
            density_gbit=density,
            refresh_share_nominal=model.refresh_share(
                NOMINAL_REFRESH_INTERVAL_S),
            refresh_share_relaxed=model.refresh_share(relaxed_interval_s),
            relaxed_interval_s=relaxed_interval_s,
        ))
    return rows
