"""Experiment drivers: the characterisation campaigns of Section 6."""

from .cpu_undervolting import (
    CampaignResult,
    SweepResult,
    UndervoltingCampaign,
)
from .dram_refresh import (
    COMMERCIAL_DRAM_BER_TARGET,
    PAPER_RELAXED_INTERVALS_S,
    RefreshCampaignResult,
    RefreshRelaxationCampaign,
    RefreshShareRow,
    RefreshStepResult,
    refresh_share_vs_density,
)
from .population import PopulationStudy, run_population_study
from .vf_exploration import (
    VFExplorer,
    VFPoint,
    energy_performance_table,
    pareto_front,
    point_for_performance,
)

__all__ = [
    "VFExplorer", "VFPoint", "energy_performance_table", "pareto_front", "point_for_performance",
    "CampaignResult", "SweepResult", "UndervoltingCampaign",
    "COMMERCIAL_DRAM_BER_TARGET", "PAPER_RELAXED_INTERVALS_S",
    "RefreshCampaignResult", "RefreshRelaxationCampaign", "RefreshShareRow",
    "RefreshStepResult", "refresh_share_vs_density",
    "PopulationStudy", "run_population_study",
]
