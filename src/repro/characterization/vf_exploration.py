"""Two-dimensional V-F exploration and the energy/performance Pareto set.

The Table 2 campaign pins frequency at maximum and sweeps voltage; the
full EOP space of the paper is two-dimensional (plus refresh).  This
module explores the (voltage, frequency) plane per core:

* :class:`VFExplorer` finds, for a grid of frequencies, the deepest safe
  voltage under the worst stress kernel (with a guard margin) — the
  *V-F margin curve* of a core;
* :func:`pareto_front` extracts the energy/performance Pareto-optimal
  points, which is exactly the menu the Predictor's low-power mode
  chooses from and the Hypervisor exposes to OpenStack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError
from ..hardware.chip import ChipModel
from ..workloads.base import Workload, WorkloadSuite
from ..workloads.viruses import virus_suite


@dataclass(frozen=True)
class VFPoint:
    """One characterised (voltage, frequency) point of a core."""

    core_id: int
    point: OperatingPoint
    #: Performance relative to nominal (cycle-counted => f ratio).
    relative_performance: float
    #: Dynamic energy per unit work relative to nominal (V² ratio).
    relative_energy: float
    #: Total power relative to nominal (includes leakage).
    relative_power: float
    observed_crash_voltage_v: float

    def dominates(self, other: "VFPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        no_worse = (self.relative_performance >= other.relative_performance
                    and self.relative_energy <= other.relative_energy)
        strictly = (self.relative_performance > other.relative_performance
                    or self.relative_energy < other.relative_energy)
        return no_worse and strictly


class VFExplorer:
    """Characterises a core's safe envelope over the V-F plane."""

    def __init__(self, chip: ChipModel,
                 suite: Optional[WorkloadSuite] = None,
                 guard_margin_v: float = 0.010,
                 sweep_trials: int = 3) -> None:
        if guard_margin_v < 0:
            raise ConfigurationError("guard margin must be >= 0")
        if sweep_trials < 1:
            raise ConfigurationError("sweep_trials must be >= 1")
        self.chip = chip
        self.suite = suite or virus_suite()
        self.guard_margin_v = guard_margin_v
        self.sweep_trials = sweep_trials

    def _worst_crash_voltage(self, core_id: int,
                             frequency_hz: float) -> float:
        core = self.chip.core(core_id)
        return max(
            core.sample_crash_voltage_v(kernel.profile, frequency_hz)
            for kernel in self.suite
            for _ in range(self.sweep_trials)
        )

    def explore_core(self, core_id: int,
                     frequency_fractions: Sequence[float]
                     = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5),
                     ) -> List[VFPoint]:
        """The V-F margin curve: deepest safe voltage per frequency."""
        nominal = self.chip.spec.nominal
        points = []
        for fraction in sorted(set(frequency_fractions), reverse=True):
            if not 0 < fraction <= 1:
                raise ConfigurationError(
                    "frequency fractions must be in (0, 1]"
                )
            frequency = nominal.frequency_hz * fraction
            crash_v = self._worst_crash_voltage(core_id, frequency)
            safe_v = min(nominal.voltage_v, crash_v + self.guard_margin_v)
            point = OperatingPoint(safe_v, frequency,
                                   nominal.refresh_interval_s)
            points.append(VFPoint(
                core_id=core_id,
                point=point,
                relative_performance=fraction,
                relative_energy=(safe_v / nominal.voltage_v) ** 2,
                relative_power=self.chip.power.total_power_w(point)
                / self.chip.power.total_power_w(nominal),
                observed_crash_voltage_v=crash_v,
            ))
        return points

    def explore_chip(self, frequency_fractions: Sequence[float]
                     = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5),
                     ) -> List[VFPoint]:
        """All cores' V-F curves, concatenated."""
        points: List[VFPoint] = []
        for core in self.chip.cores:
            points.extend(
                self.explore_core(core.core_id, frequency_fractions))
        return points


def pareto_front(points: Sequence[VFPoint]) -> List[VFPoint]:
    """The non-dominated subset, sorted by descending performance."""
    front = [
        candidate for candidate in points
        if not any(other.dominates(candidate) for other in points)
    ]
    return sorted(front, key=lambda p: p.relative_performance,
                  reverse=True)


def point_for_performance(front: Sequence[VFPoint],
                          min_performance: float) -> VFPoint:
    """Lowest-energy Pareto point meeting a performance floor.

    This is the query an SLA's ``min_frequency_fraction`` turns into.
    """
    if not front:
        raise ConfigurationError("empty Pareto front")
    feasible = [p for p in front
                if p.relative_performance >= min_performance]
    if not feasible:
        raise ConfigurationError(
            f"no Pareto point meets performance floor {min_performance}"
        )
    return min(feasible, key=lambda p: p.relative_energy)


def energy_performance_table(front: Sequence[VFPoint],
                             ) -> List[Tuple[float, float, float, float]]:
    """(freq fraction, voltage, relative energy, relative power) rows."""
    return [
        (p.relative_performance, p.point.voltage_v, p.relative_energy,
         p.relative_power)
        for p in front
    ]
