"""CPU undervolting characterisation campaign (paper Table 2).

Methodology, mirroring Section 6.A: frequency pinned at maximum, supply
voltage lowered from nominal in fixed (5 mV) steps; at each step the
benchmark runs once per sweep.  The *crash point* is the first voltage at
which the run dies; corrected cache ECC errors at surviving steps are
logged (the low-end part exposes them, the high-end part does not).

Each (benchmark, core) pair is swept ``runs_per_benchmark`` times (the
paper does 3 consecutive runs).  The summary reports exactly Table 2's
three rows:

1. *crash points below nominal VID* — min/max, across benchmarks, of the
   per-benchmark mean crash offset;
2. *core-to-core variation* — min/max, across benchmarks, of the spread
   between the best and worst core's mean crash offset;
3. *number of cache ECC errors* — min/max nonzero per-step corrected
   counts observed (only where the platform reports them), plus the mean
   voltage margin between first-error onset and crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import quantize
from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError
from ..hardware.chip import ChipModel
from ..workloads.base import Workload, WorkloadSuite


@dataclass(frozen=True)
class SweepResult:
    """One downward voltage sweep on one core under one benchmark."""

    benchmark: str
    core_id: int
    run_index: int
    crash_voltage_v: float
    crash_offset: float
    #: (voltage, corrected-count) for each surviving step with errors.
    ecc_observations: Tuple[Tuple[float, int], ...]

    def onset_voltage_v(self) -> Optional[float]:
        """Lowest... highest voltage at which errors first appeared.

        Returns the maximum voltage with a nonzero count (errors begin
        there as the sweep descends), or ``None`` if the sweep saw none.
        """
        if not self.ecc_observations:
            return None
        return max(v for v, _ in self.ecc_observations)

    def onset_margin_v(self) -> Optional[float]:
        """Voltage gap between first ECC errors and the crash point."""
        onset = self.onset_voltage_v()
        if onset is None:
            return None
        return onset - self.crash_voltage_v


@dataclass
class CampaignResult:
    """All sweeps of one chip's characterisation campaign."""

    chip_name: str
    nominal_voltage_v: float
    step_v: float
    sweeps: List[SweepResult] = field(default_factory=list)

    # -- per-benchmark views -------------------------------------------------

    def benchmarks(self) -> List[str]:
        """Benchmark names present in the campaign, sorted."""
        return sorted({s.benchmark for s in self.sweeps})

    def cores(self) -> List[int]:
        """Core ids present in the campaign, sorted."""
        return sorted({s.core_id for s in self.sweeps})

    def mean_crash_offset(self, benchmark: str,
                          core_id: Optional[int] = None) -> float:
        """Mean crash offset over runs (and cores unless one is given)."""
        selected = [
            s.crash_offset for s in self.sweeps
            if s.benchmark == benchmark
            and (core_id is None or s.core_id == core_id)
        ]
        if not selected:
            raise ConfigurationError(
                f"no sweeps for benchmark {benchmark!r} core {core_id}"
            )
        return float(np.mean(selected))

    def core_to_core_spread(self, benchmark: str) -> float:
        """Spread between best and worst core's mean crash offset.

        Quantised to the sweep step (as a fraction of nominal): spreads
        below the measurement grid read as 0 %, which is how the paper's
        i5 shows a 0 % minimum variation.
        """
        per_core = [self.mean_crash_offset(benchmark, c) for c in self.cores()]
        raw = max(per_core) - min(per_core)
        step_fraction = self.step_v / self.nominal_voltage_v
        return quantize(raw, step_fraction)

    # -- Table 2 summary -------------------------------------------------------

    def crash_offset_range(self) -> Tuple[float, float]:
        """Min/max per-benchmark mean crash offset (Table 2 row 1)."""
        means = [self.mean_crash_offset(b) for b in self.benchmarks()]
        return min(means), max(means)

    def core_variation_range(self) -> Tuple[float, float]:
        """Min/max per-benchmark core-to-core spread (Table 2 row 2)."""
        spreads = [self.core_to_core_spread(b) for b in self.benchmarks()]
        return min(spreads), max(spreads)

    def ecc_error_counts(self) -> List[int]:
        """All nonzero per-step corrected counts (Table 2 row 3)."""
        counts = []
        for sweep in self.sweeps:
            counts.extend(c for _, c in sweep.ecc_observations if c > 0)
        return counts

    def ecc_count_range(self) -> Optional[Tuple[int, int]]:
        """Min/max corrected counts, or ``None`` when nothing was exposed."""
        counts = self.ecc_error_counts()
        if not counts:
            return None
        return min(counts), max(counts)

    def mean_ecc_onset_margin_v(self) -> Optional[float]:
        """Mean voltage gap between ECC onset and crash (paper: ~15 mV)."""
        margins = [
            m for m in (s.onset_margin_v() for s in self.sweeps)
            if m is not None
        ]
        if not margins:
            return None
        return float(np.mean(margins))

    def table2_rows(self) -> List[List]:
        """The three Table 2 rows as (label, min, max) for rendering."""
        cmin, cmax = self.crash_offset_range()
        vmin, vmax = self.core_variation_range()
        ecc = self.ecc_count_range()
        rows = [
            ["crash points below nominal VID",
             f"-{cmin * 100:.1f}%", f"-{cmax * 100:.1f}%"],
            ["core-to-core variation",
             f"{vmin * 100:.1f}%", f"{vmax * 100:.1f}%"],
            ["number of cache ECC errors",
             str(ecc[0]) if ecc else "-", str(ecc[1]) if ecc else "-"],
        ]
        return rows


class UndervoltingCampaign:
    """Drives the Table 2 characterisation on one chip."""

    def __init__(self, chip: ChipModel, suite: WorkloadSuite,
                 step_v: float = 0.005, runs_per_benchmark: int = 3,
                 max_offset: float = 0.30) -> None:
        if step_v <= 0:
            raise ConfigurationError("step must be positive")
        if runs_per_benchmark < 1:
            raise ConfigurationError("need at least one run per benchmark")
        if not 0 < max_offset < 1:
            raise ConfigurationError("max_offset must be in (0, 1)")
        self.chip = chip
        self.suite = suite
        self.step_v = step_v
        self.runs_per_benchmark = runs_per_benchmark
        self.max_offset = max_offset

    def _sweep(self, workload: Workload, core_id: int,
               run_index: int) -> SweepResult:
        """One downward sweep: step until the first crashing run."""
        nominal = self.chip.spec.nominal
        voltage = nominal.voltage_v
        floor = nominal.voltage_v * (1.0 - self.max_offset)
        observations: List[Tuple[float, int]] = []
        crash_voltage = floor

        while voltage >= floor:
            point = nominal.with_voltage(voltage)
            outcome = self.chip.run_benchmark(core_id, workload, point)
            if not outcome.survived:
                crash_voltage = voltage
                break
            if outcome.cache_result.correctable > 0:
                observations.append(
                    (voltage, outcome.cache_result.correctable)
                )
            voltage = round(voltage - self.step_v, 9)
        else:
            raise ConfigurationError(
                f"{self.chip.name} survived to the sweep floor on "
                f"{workload.name}/core{core_id}; raise max_offset"
            )

        offset = (nominal.voltage_v - crash_voltage) / nominal.voltage_v
        return SweepResult(
            benchmark=workload.name,
            core_id=core_id,
            run_index=run_index,
            crash_voltage_v=crash_voltage,
            crash_offset=offset,
            ecc_observations=tuple(observations),
        )

    def run(self) -> CampaignResult:
        """Run the full campaign: every benchmark × core × repetition."""
        result = CampaignResult(
            chip_name=self.chip.name,
            nominal_voltage_v=self.chip.spec.nominal.voltage_v,
            step_v=self.step_v,
        )
        for workload in self.suite:
            for core in self.chip.cores:
                for run_index in range(self.runs_per_benchmark):
                    result.sweeps.append(
                        self._sweep(workload, core.core_id, run_index)
                    )
        return result
