"""UniServer reproduction: an energy-efficient, error-resilient server
ecosystem exceeding conservative scaling limits.

Reproduction of Tovletoglou et al., "An Energy-Efficient and
Error-Resilient Server Ecosystem Exceeding Conservative Scaling Limits"
(UniServer project overview).  The package builds the full cross-layer
stack on a simulated hardware substrate:

* :mod:`repro.hardware` — calibrated silicon models: per-core Vmin and
  voltage droop, cache SECDED, DRAM retention and refresh domains, power,
  thermal and aging models.
* :mod:`repro.workloads` — SPEC-CPU2006-like benchmarks, hand-coded and
  GA-evolved stress viruses, DRAM test patterns, an LDBC-SNB-like graph
  workload.
* :mod:`repro.daemons` — HealthLog (runtime monitoring), StressLog
  (offline characterisation of Extended Operating Points), Predictor
  (learned failure models).
* :mod:`repro.hypervisor` — KVM-like error-resilient hypervisor: EOP
  adoption, error masking, reliable-domain placement, isolation,
  selective checkpointing, and the Figure 4 fault-injection campaign.
* :mod:`repro.cloudmgr` — OpenStack-like resource management with a node
  reliability metric, failure prediction and proactive migration.
* :mod:`repro.tco` — total-cost-of-ownership tool and the edge-vs-cloud
  latency/energy model.
* :mod:`repro.security` — EOP threat analysis and countermeasures.
* :mod:`repro.characterization` — the Section 6 experiment drivers.

Quickstart::

    from repro import UniServerNode
    node = UniServerNode()
    node.pre_deploy()          # StressLog reveals the real margins
    node.deploy()              # Hypervisor adopts the safe EOPs
    print(node.energy_report().saving_fraction)
"""

from .core import (
    EnergyReport,
    EOPTable,
    GuardBandBreakdown,
    OperatingPoint,
    SimClock,
    UniServerNode,
)

__version__ = "1.0.0"

__all__ = [
    "EnergyReport", "EOPTable", "GuardBandBreakdown", "OperatingPoint",
    "SimClock", "UniServerNode", "__version__",
]
