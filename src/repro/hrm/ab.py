"""The tiered-vs-uniform memory A/B (the ``repro hrm`` experiment).

Three arms share one deterministic per-node workload (hypervisor state,
VM-critical pages, tolerant data and application pages, sizes drawn from
counter-based hashes so any node can be evaluated in any process):

* ``tiered`` — :func:`~repro.hardware.dram.tiered_server_memory` with
  the :class:`~repro.hypervisor.memory.TierClassifier` placement matrix;
* ``all-nominal`` — the conservative baseline: every channel at nominal
  refresh behind SECDED;
* ``all-relaxed`` — the degenerate no-reliable-domain topology
  (``reliable_channel=None``) with every channel relaxed to the deep
  interval — the energy-greedy arm the tier layout must beat on
  expected critical uncorrectable errors.

Every metric is an analytic expectation (refresh power, ECC decoder
power, expected critical UEs per sweep), so the report is a pure
function of the config: byte-identical across runs, ``--jobs`` counts
and process boundaries by construction — the merge only reassembles
per-node rows in node order and sums with ``math.fsum``.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..fleet.state import shard_bounds
from ..fleet.vectors import counter_uniform, splitmix64
from ..hardware.dram import (
    DEFAULT_TIER_REFRESH_S,
    TIER_RELAXED,
    DramSystem,
    standard_server_memory,
    tiered_server_memory,
)
from ..hypervisor.fault_injection import tier_exposure_report
from ..hypervisor.memory import (
    CLASS_APPLICATION,
    CLASS_HYPERVISOR,
    CLASS_VM_CRITICAL,
    CLASS_VM_DATA,
    HYPERVISOR_BASE_MB,
    HYPERVISOR_PER_VM_MB,
    PlacementPolicy,
)

#: The A/B arms, in report order.
HRM_ARMS: Tuple[str, ...] = ("tiered", "all-nominal", "all-relaxed")

#: Counter-hash channels for the per-node draws (disjoint from the
#: fleet's step channels only by convention — the streams never mix
#: because the keys differ).
_CH_NODE_TEMP = 201
_CH_VM_SIZE = 202


@dataclass(frozen=True)
class HrmConfig:
    """Shape of the tiered-vs-uniform A/B."""

    n_nodes: int = 8
    seed: int = 0
    duration_s: float = 3600.0
    n_channels: int = 4
    dimm_gb: float = 8.0
    vms_per_node: int = 4
    vm_base_mb: float = 900.0
    vm_spread_mb: float = 600.0
    #: Fraction of a VM's memory that is criticality-sensitive (page
    #: tables, checkpoint images) and of its tolerant remainder that is
    #: raw application pages.
    vm_critical_fraction: float = 0.05
    vm_application_fraction: float = 0.4
    #: Ambient band the per-node temperatures are drawn from.
    temperature_base_c: float = 50.0
    temperature_spread_c: float = 8.0
    #: Aggregate access rate through each node's memory (for ECC
    #: decoder energy), split across domains by used capacity.
    accesses_per_s: float = 2e8

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("hrm A/B needs at least one node")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.n_channels < 2:
            raise ConfigurationError("hrm A/B needs >= 2 channels")
        if self.vms_per_node < 1:
            raise ConfigurationError("hrm A/B needs >= 1 VM per node")
        if not 0.0 <= self.vm_critical_fraction <= 0.5:
            raise ConfigurationError(
                "vm_critical_fraction must be in [0, 0.5]")
        if not 0.0 <= self.vm_application_fraction <= 1.0:
            raise ConfigurationError(
                "vm_application_fraction must be in [0, 1]")
        if self.accesses_per_s < 0:
            raise ConfigurationError("accesses_per_s cannot be negative")

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for canonical reports."""
        return asdict(self)

    @staticmethod
    def from_dict(state: Dict[str, object]) -> "HrmConfig":
        """Rebuild a config saved by :meth:`as_dict`."""
        return HrmConfig(**state)  # type: ignore[arg-type]


def _node_key(config: HrmConfig, node: int) -> np.uint64:
    """Stable per-node counter key (independent of jobs/chunking)."""
    with np.errstate(over="ignore"):
        return np.uint64(splitmix64(
            np.uint64(config.seed) * np.uint64(0x9E3779B97F4A7C15)
            ^ np.uint64(node)))


def node_temperature_c(config: HrmConfig, node: int) -> float:
    """Deterministic per-node ambient temperature."""
    u = float(counter_uniform(_node_key(config, node), _CH_NODE_TEMP))
    return (config.temperature_base_c
            + config.temperature_spread_c * (2.0 * u - 1.0))


def build_arm_node(config: HrmConfig, arm: str,
                   node: int) -> Tuple[DramSystem, PlacementPolicy]:
    """One node's memory system and fully placed allocation set."""
    if arm not in HRM_ARMS:
        raise ConfigurationError(f"unknown hrm arm {arm!r}")
    temperature = node_temperature_c(config, node)
    seed = config.seed * 100003 + node
    if arm == "tiered":
        memory = tiered_server_memory(
            n_channels=config.n_channels, dimm_gb=config.dimm_gb,
            temperature_c=temperature, seed=seed)
    elif arm == "all-nominal":
        memory = standard_server_memory(
            n_channels=config.n_channels, dimm_gb=config.dimm_gb,
            reliable_channel=0, seed=seed)
    else:
        # The degenerate topology: no reliable domain anywhere, every
        # channel relaxed to the deep interval behind baseline SECDED.
        memory = standard_server_memory(
            n_channels=config.n_channels, dimm_gb=config.dimm_gb,
            reliable_channel=None, seed=seed)
        memory.relax_all(DEFAULT_TIER_REFRESH_S[TIER_RELAXED])
    placement = PlacementPolicy(memory)
    key = _node_key(config, node)
    placement.place(
        "hypervisor",
        HYPERVISOR_BASE_MB + HYPERVISOR_PER_VM_MB * config.vms_per_node,
        critical=True, placement_class=CLASS_HYPERVISOR)
    for vm in range(config.vms_per_node):
        u = float(counter_uniform(key, _CH_VM_SIZE, np.uint64(vm)))
        total_mb = config.vm_base_mb + config.vm_spread_mb * u
        critical_mb = max(8.0, total_mb * config.vm_critical_fraction)
        tolerant_mb = total_mb - critical_mb
        app_mb = tolerant_mb * config.vm_application_fraction
        data_mb = tolerant_mb - app_mb
        name = f"vm{vm}"
        placement.place(name, critical_mb,
                        placement_class=CLASS_VM_CRITICAL)
        placement.place(name, data_mb, placement_class=CLASS_VM_DATA)
        placement.place(name, app_mb, placement_class=CLASS_APPLICATION)
    return memory, placement


def evaluate_node(config: HrmConfig, arm: str,
                  node: int) -> Dict[str, object]:
    """Analytic per-node metrics of one arm (a pure function)."""
    memory, placement = build_arm_node(config, arm, node)
    temperature = node_temperature_c(config, node)
    used_mb = sum(a.size_mb for a in placement.allocations)
    ecc_power = 0.0
    for domain in memory.domains():
        domain_used = sum(a.size_mb for a in placement.allocations
                          if a.domain == domain.name)
        share = domain_used / used_mb if used_mb else 0.0
        ecc_power += domain.ecc_power_w(config.accesses_per_s * share)
    exposure = tier_exposure_report(placement, temperature_c=temperature)
    return {
        "node": node,
        "temperature_c": temperature,
        "refresh_power_w": memory.refresh_power_w(),
        "ecc_power_w": ecc_power,
        "expected_critical_ue": math.fsum(
            row.expected_critical_ue for row in exposure),
        "exposure_mb": {row.tier: row.critical_mb for row in exposure},
        "spilled_mb": placement.spilled_mb(),
    }


def _evaluate_chunk(config_state: Dict[str, object], lo: int,
                    hi: int) -> List[Dict[str, object]]:
    """Worker entry point: all arms for nodes ``[lo, hi)``."""
    config = HrmConfig.from_dict(config_state)
    return [
        {"node": node,
         "arms": {arm: evaluate_node(config, arm, node)
                  for arm in HRM_ARMS}}
        for node in range(lo, hi)
    ]


def _aggregate_arm(config: HrmConfig, arm: str,
                   rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Fleet totals of one arm from per-node rows (node order)."""
    per_node = [row["arms"][arm] for row in rows]  # type: ignore[index]
    refresh_w = math.fsum(r["refresh_power_w"] for r in per_node)
    ecc_w = math.fsum(r["ecc_power_w"] for r in per_node)
    tiers: Dict[str, float] = {}
    for r in per_node:
        for tier, mb in r["exposure_mb"].items():  # type: ignore[union-attr]
            tiers[tier] = tiers.get(tier, 0.0) + mb
    return {
        "nodes": len(per_node),
        "refresh_power_w": refresh_w,
        "refresh_energy_j": refresh_w * config.duration_s,
        "ecc_power_w": ecc_w,
        "ecc_energy_j": ecc_w * config.duration_s,
        "energy_j": (refresh_w + ecc_w) * config.duration_s,
        "expected_critical_ue": math.fsum(
            r["expected_critical_ue"] for r in per_node),
        "critical_exposure_mb": {t: tiers[t] for t in sorted(tiers)},
        "spilled_mb": math.fsum(r["spilled_mb"] for r in per_node),
    }


def run_hrm_ab(config: HrmConfig, jobs: int = 1) -> Dict[str, object]:
    """Run the tiered-vs-uniform A/B; returns the canonical report.

    ``jobs`` only changes how the per-node evaluations are distributed:
    chunks are reassembled in node order and every reduction is an
    order-fixed ``fsum``, so the report bytes are jobs-invariant.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    state = config.as_dict()
    bounds = shard_bounds(config.n_nodes, min(jobs, config.n_nodes))
    if jobs == 1 or len(bounds) == 1:
        chunks = [_evaluate_chunk(state, lo, hi) for lo, hi in bounds]
    else:
        with ProcessPoolExecutor(max_workers=len(bounds)) as pool:
            futures = [pool.submit(_evaluate_chunk, state, lo, hi)
                       for lo, hi in bounds]
            chunks = [f.result() for f in futures]
    rows = [row for chunk in chunks for row in chunk]
    arms = {arm: _aggregate_arm(config, arm, rows) for arm in HRM_ARMS}
    tiered = arms["tiered"]
    nominal = arms["all-nominal"]
    relaxed = arms["all-relaxed"]
    frontier = {
        "refresh_energy_savings_vs_nominal": (
            1.0 - tiered["refresh_energy_j"] / nominal["refresh_energy_j"]
            if nominal["refresh_energy_j"] else 0.0),
        "critical_ue_ratio_vs_relaxed": (
            tiered["expected_critical_ue"]
            / relaxed["expected_critical_ue"]
            if relaxed["expected_critical_ue"] else 0.0),
        "tiered_beats_nominal_energy": bool(
            tiered["refresh_energy_j"] < nominal["refresh_energy_j"]),
        "tiered_beats_relaxed_ue": bool(
            tiered["expected_critical_ue"]
            < relaxed["expected_critical_ue"]),
    }
    return {
        "version": 1,
        "config": state,
        "arms": arms,
        "frontier": frontier,
        "nodes": [
            {"node": row["node"],
             "temperature_c": row["arms"]["tiered"]["temperature_c"]}  # type: ignore[index]
            for row in rows
        ],
    }
