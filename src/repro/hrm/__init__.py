"""Heterogeneous-reliability memory (HRM) tier A/B experiments.

The tier refactor threads strong/normal/relaxed memory tiers through the
hardware, hypervisor, EOP and fleet layers; this package closes the loop
with the experiment that justifies the machinery: a deterministic
tiered-vs-uniform A/B (``repro hrm``) showing the tiered layout on the
energy/reliability frontier — cheaper refresh than an all-nominal fleet
*and* orders of magnitude fewer expected critical uncorrectable errors
than an all-relaxed one.
"""

from .ab import (
    HRM_ARMS,
    HrmConfig,
    build_arm_node,
    evaluate_node,
    run_hrm_ab,
)

__all__ = [
    "HRM_ARMS",
    "HrmConfig",
    "build_arm_node",
    "evaluate_node",
    "run_hrm_ab",
]
