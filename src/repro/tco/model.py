"""Total-Cost-of-Ownership analytical model.

The paper plans "a tool for estimating the Total Cost of Ownership (TCO)
gains against other solutions" following the analytical framework of
Hardy et al. [31] (ISPASS 2013).  The model splits TCO into:

* **capex** — server acquisition (chip cost inflated by binning yield
  loss — the UniServer yield argument of Section 5.A — plus the rest of
  the BOM) and datacenter infrastructure (cost per provisioned watt,
  amortised over the facility lifetime);
* **opex** — energy (IT power × PUE × electricity price), maintenance and
  personnel.

Everything is normalised per server over the deployment lifetime, so TCO
ratios between configurations are directly the "×" improvements the
paper's Table 3 quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..core.exceptions import ConfigurationError

HOURS_PER_YEAR = 24 * 365.25


@dataclass(frozen=True)
class ServerSpec:
    """Cost/power description of one server configuration."""

    name: str
    chip_cost_usd: float = 600.0
    other_bom_usd: float = 1400.0
    #: Fraction of manufactured chips that survive binning; chip cost is
    #: amortised over sold parts, so cost scales with 1/yield.
    binning_yield: float = 0.85
    #: Average wall power of the micro-server under datacenter load.
    average_power_w: float = 90.0
    #: Provisioned (peak) power, which sizes the infrastructure.
    provisioned_power_w: float = 150.0

    def __post_init__(self) -> None:
        if not 0 < self.binning_yield <= 1:
            raise ConfigurationError("yield must be in (0, 1]")
        if min(self.chip_cost_usd, self.other_bom_usd,
               self.average_power_w, self.provisioned_power_w) < 0:
            raise ConfigurationError("costs and powers must be >= 0")

    def acquisition_cost_usd(self) -> float:
        """Server price: yield-adjusted silicon plus the rest of the BOM."""
        return self.chip_cost_usd / self.binning_yield + self.other_bom_usd


@dataclass(frozen=True)
class DatacenterSpec:
    """Facility and operations parameters."""

    name: str = "cloud"
    #: Power usage effectiveness: total facility power / IT power.
    pue: float = 1.7
    electricity_usd_per_kwh: float = 0.10
    #: Infrastructure (building, power, cooling) cost per provisioned watt.
    infrastructure_usd_per_w: float = 10.0
    #: Facility amortisation period (years).
    infrastructure_lifetime_y: float = 12.0
    #: Server refresh / deployment lifetime (years).
    server_lifetime_y: float = 4.0
    #: Annual maintenance as a fraction of acquisition cost.
    maintenance_fraction_per_y: float = 0.05
    #: Admin personnel cost per server per year (scales down with
    #: automation; edge sites share remote administrators).
    personnel_usd_per_server_y: float = 150.0

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise ConfigurationError("PUE cannot be below 1")
        for name in ("electricity_usd_per_kwh", "infrastructure_usd_per_w",
                     "personnel_usd_per_server_y",
                     "maintenance_fraction_per_y"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.infrastructure_lifetime_y <= 0 or self.server_lifetime_y <= 0:
            raise ConfigurationError("lifetimes must be positive")


#: An edge deployment: no purpose-built facility (existing premises, free
#: cooling), pricier retail electricity, shared remote administration.
EDGE_SITE = DatacenterSpec(
    name="edge",
    pue=1.15,
    electricity_usd_per_kwh=0.14,
    infrastructure_usd_per_w=2.0,
    infrastructure_lifetime_y=8.0,
    server_lifetime_y=4.0,
    maintenance_fraction_per_y=0.06,
    personnel_usd_per_server_y=120.0,
)


@dataclass(frozen=True)
class TCOBreakdown:
    """Per-server TCO over the deployment lifetime, by component."""

    server_capex_usd: float
    infrastructure_capex_usd: float
    energy_opex_usd: float
    maintenance_opex_usd: float
    personnel_opex_usd: float

    @property
    def capex_usd(self) -> float:
        """Capital expenses (server plus infrastructure)."""
        return self.server_capex_usd + self.infrastructure_capex_usd

    @property
    def opex_usd(self) -> float:
        """Operating expenses (energy, maintenance, personnel)."""
        return (self.energy_opex_usd + self.maintenance_opex_usd
                + self.personnel_opex_usd)

    @property
    def total_usd(self) -> float:
        """Capex plus opex."""
        return self.capex_usd + self.opex_usd

    def energy_share(self) -> float:
        """Fraction of TCO spent on energy (the EE-gain leverage)."""
        return self.energy_opex_usd / self.total_usd if self.total_usd else 0.0

    def rows(self) -> List[tuple]:
        """(label, value) rows for table rendering."""
        return [
            ("server capex", self.server_capex_usd),
            ("infrastructure capex", self.infrastructure_capex_usd),
            ("energy opex", self.energy_opex_usd),
            ("maintenance opex", self.maintenance_opex_usd),
            ("personnel opex", self.personnel_opex_usd),
            ("total", self.total_usd),
        ]


class TCOModel:
    """Computes per-server lifetime TCO for a (server, facility) pair."""

    def __init__(self, datacenter: Optional[DatacenterSpec] = None) -> None:
        self.datacenter = datacenter or DatacenterSpec()

    def breakdown(self, server: ServerSpec) -> TCOBreakdown:
        """Full TCO breakdown for one server over its lifetime."""
        dc = self.datacenter
        lifetime_y = dc.server_lifetime_y

        server_capex = server.acquisition_cost_usd()
        infra_capex = (server.provisioned_power_w
                       * dc.infrastructure_usd_per_w
                       * lifetime_y / dc.infrastructure_lifetime_y)
        energy_kwh = (server.average_power_w / 1000.0 * dc.pue
                      * HOURS_PER_YEAR * lifetime_y)
        energy_opex = energy_kwh * dc.electricity_usd_per_kwh
        maintenance = (server_capex * dc.maintenance_fraction_per_y
                       * lifetime_y)
        personnel = dc.personnel_usd_per_server_y * lifetime_y
        return TCOBreakdown(
            server_capex_usd=server_capex,
            infrastructure_capex_usd=infra_capex,
            energy_opex_usd=energy_opex,
            maintenance_opex_usd=maintenance,
            personnel_opex_usd=personnel,
        )

    def total(self, server: ServerSpec) -> float:
        """Number of claims checked."""
        return self.breakdown(server).total_usd

    def improvement(self, baseline: ServerSpec,
                    improved: ServerSpec,
                    improved_datacenter: Optional[DatacenterSpec] = None,
                    ) -> float:
        """TCO improvement factor (baseline / improved, >1 is better)."""
        base = self.total(baseline)
        model = (self if improved_datacenter is None
                 else TCOModel(improved_datacenter))
        new = model.total(improved)
        if new <= 0:
            raise ConfigurationError("improved TCO must be positive")
        return base / new


def apply_energy_efficiency(server: ServerSpec, ee_factor: float,
                            name: Optional[str] = None) -> ServerSpec:
    """A server whose energy per unit work improved ``ee_factor``×.

    Serving the same load, its average power divides by the factor.
    Provisioned power is left unchanged: the facility is sized for the
    worst case at deployment time, and EOPs save *average* energy, not
    the rated envelope the infrastructure must still support.
    """
    if ee_factor <= 0:
        raise ConfigurationError("EE factor must be positive")
    return replace(
        server,
        name=name or f"{server.name}+ee{ee_factor:g}x",
        average_power_w=server.average_power_w / ee_factor,
    )


def apply_yield_recovery(server: ServerSpec, recovered_yield: float,
                         name: Optional[str] = None) -> ServerSpec:
    """A server built from silicon whose effective yield improved.

    UniServer's per-core EOPs make previously discarded parts sellable
    (Section 5.A), cutting the amortised chip cost.
    """
    if not 0 < recovered_yield <= 1:
        raise ConfigurationError("yield must be in (0, 1]")
    return replace(
        server,
        name=name or f"{server.name}+yield{recovered_yield:.2f}",
        binning_yield=recovered_yield,
    )
