"""Table 3 projection report: energy-efficiency and TCO improvements.

The paper's Table 3 lists the 2019 projection for an ARM-based UniServer
over a baseline ARM server platform, with four sources of energy-
efficiency improvement: technology scaling (FinFET adoption), software
maturity for ARM servers, running at the Edge ("Fog"), and operating at
EOP (the UniServer margins).  The scanned row reads "1.15 4 2 3 1.5 36";
we interpret the sources as Scaling = 1.15×, SW maturity = 4×, Fog = 2×,
Margins = 3× and report both the product of sources (27.6×) and the
paper's printed 36× overall; the prose separately states that the energy
gains alone yield a 1.15× TCO improvement, with the overall TCO factor
printed as 1.5× (see EXPERIMENTS.md for the ambiguity note).

This module computes the TCO consequences of those EE sources through
the actual cost model rather than restating constants: the EE-only TCO
improvement falls out of the energy share of the baseline TCO, and the
overall improvement adds the yield-recovery and edge-infrastructure
effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import ConfigurationError
from .model import (
    DatacenterSpec,
    EDGE_SITE,
    ServerSpec,
    TCOModel,
    apply_energy_efficiency,
    apply_yield_recovery,
)


@dataclass(frozen=True)
class EnergyEfficiencySources:
    """The four multiplicative EE improvement sources of Table 3."""

    scaling: float = 1.15
    sw_maturity: float = 4.0
    fog: float = 2.0
    margins: float = 3.0

    def __post_init__(self) -> None:
        for name in ("scaling", "sw_maturity", "fog", "margins"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def overall(self) -> float:
        """Product of the sources (the paper prints 36; ours is ≈27.6)."""
        return self.scaling * self.sw_maturity * self.fog * self.margins

    def rows(self) -> List[Tuple[str, float]]:
        """(label, value) rows for table rendering."""
        return [
            ("Scaling", self.scaling),
            ("Sw maturity", self.sw_maturity),
            ("Fog", self.fog),
            ("Margins", self.margins),
            ("Overall", self.overall()),
        ]


#: Baseline 2016-era ARM micro-server platform of the projection.
BASELINE_ARM_SERVER = ServerSpec(
    name="arm-server-2016",
    chip_cost_usd=600.0,
    other_bom_usd=1400.0,
    binning_yield=0.85,
    average_power_w=90.0,
    provisioned_power_w=150.0,
)


@dataclass(frozen=True)
class Table3Projection:
    """The computed Table 3: EE sources plus TCO factors."""

    sources: EnergyEfficiencySources
    ee_only_tco: float
    overall_tco: float

    def rows(self) -> List[Tuple[str, float]]:
        """(label, value) rows for table rendering."""
        return self.sources.rows() + [
            ("TCO (EE gains only)", self.ee_only_tco),
            ("TCO (overall)", self.overall_tco),
        ]


def project_table3(sources: Optional[EnergyEfficiencySources] = None,
                   baseline: ServerSpec = BASELINE_ARM_SERVER,
                   datacenter: Optional[DatacenterSpec] = None,
                   recovered_yield: float = 0.97,
                   edge_site: DatacenterSpec = EDGE_SITE,
                   ) -> Table3Projection:
    """Compute the Table 3 projection through the TCO model.

    * ``ee_only_tco``: same datacenter, same silicon — only the energy
      bill shrinks by the overall EE factor.
    * ``overall_tco``: additionally, per-core EOPs recover binning
      discards (cheaper silicon) and the deployment moves to an edge
      site (cheaper infrastructure, better PUE).
    """
    sources = sources or EnergyEfficiencySources()
    model = TCOModel(datacenter or DatacenterSpec())
    ee_factor = sources.overall()

    efficient = apply_energy_efficiency(baseline, ee_factor)
    ee_only_tco = model.improvement(baseline, efficient)

    recovered = apply_yield_recovery(efficient, recovered_yield)
    overall_tco = model.improvement(
        baseline, recovered, improved_datacenter=edge_site,
    )
    return Table3Projection(
        sources=sources,
        ee_only_tco=ee_only_tco,
        overall_tco=overall_tco,
    )
