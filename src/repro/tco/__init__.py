"""Total-Cost-of-Ownership tool and edge-vs-cloud deployment model."""

from .edge import (
    CLOUD,
    EDGE,
    DeploymentLatency,
    DvfsCurve,
    EdgeServiceModel,
    ServicePoint,
)
from .model import (
    DatacenterSpec,
    EDGE_SITE,
    HOURS_PER_YEAR,
    ServerSpec,
    TCOBreakdown,
    TCOModel,
    apply_energy_efficiency,
    apply_yield_recovery,
)
from .report import (
    BASELINE_ARM_SERVER,
    EnergyEfficiencySources,
    Table3Projection,
    project_table3,
)
from .exploration import (
    AGGRESSIVE_EOP_POLICY,
    CONSERVATIVE_POLICY,
    DEFAULT_POLICIES,
    DesignPoint,
    DesignSpaceExplorer,
    MODERATE_EOP_POLICY,
    MarginPolicy,
    cheapest_meeting_availability,
    cost_availability_pareto,
)

__all__ = [
    "AGGRESSIVE_EOP_POLICY", "CONSERVATIVE_POLICY", "DEFAULT_POLICIES", "DesignPoint", "DesignSpaceExplorer", "MODERATE_EOP_POLICY", "MarginPolicy", "cheapest_meeting_availability", "cost_availability_pareto",
    "CLOUD", "EDGE", "DeploymentLatency", "DvfsCurve", "EdgeServiceModel",
    "ServicePoint",
    "DatacenterSpec", "EDGE_SITE", "HOURS_PER_YEAR", "ServerSpec",
    "TCOBreakdown", "TCOModel", "apply_energy_efficiency",
    "apply_yield_recovery",
    "BASELINE_ARM_SERVER", "EnergyEfficiencySources", "Table3Projection",
    "project_table3",
]
