"""Edge-vs-cloud latency and energy model (paper Section 6.D).

The paper's arithmetic: an IoT service with a 200 ms end-to-end budget
spends roughly half of it on the network round trip to a cloud
datacenter, leaving a tight compute budget; processing at the edge
eliminates most of the communication latency, so the *same* deadline can
be met at a much lower frequency and voltage — "operating at 50 % of the
peak frequency with 30 % less voltage translates to running with 50 %
less energy and 75 % less power".

:class:`EdgeServiceModel` turns a latency budget and deployment RTTs into
the minimum frequency that still meets the deadline, maps frequency to
voltage along a DVFS curve, and reports the energy/power savings through
the CMOS power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError
from ..hardware.power import CorePowerModel


@dataclass(frozen=True)
class DeploymentLatency:
    """Network characteristics of one deployment option."""

    name: str
    network_rtt_ms: float

    def __post_init__(self) -> None:
        if self.network_rtt_ms < 0:
            raise ConfigurationError("RTT must be non-negative")


#: The paper's round numbers: ~100 ms of a 200 ms budget goes to the
#: public network for a cloud round trip; the edge is effectively local.
CLOUD = DeploymentLatency("cloud", network_rtt_ms=100.0)
EDGE = DeploymentLatency("edge", network_rtt_ms=5.0)


@dataclass(frozen=True)
class DvfsCurve:
    """Linear voltage/frequency relation of a DVFS ladder.

    Voltage scales from ``min_voltage_fraction`` at ``min_frequency_fraction``
    up to 1.0 at full frequency.  The paper's example point (50 % f,
    −30 % V) lies on the default curve's lower end.
    """

    min_frequency_fraction: float = 0.5
    min_voltage_fraction: float = 0.7

    def __post_init__(self) -> None:
        if not 0 < self.min_frequency_fraction <= 1:
            raise ConfigurationError("bad frequency fraction")
        if not 0 < self.min_voltage_fraction <= 1:
            raise ConfigurationError("bad voltage fraction")

    def voltage_fraction(self, frequency_fraction: float) -> float:
        """Voltage fraction needed at a frequency fraction."""
        if not 0 < frequency_fraction <= 1:
            raise ConfigurationError(
                "frequency fraction must be in (0, 1]"
            )
        f = max(frequency_fraction, self.min_frequency_fraction)
        t = (f - self.min_frequency_fraction) / (
            1.0 - self.min_frequency_fraction)
        return self.min_voltage_fraction + t * (1.0 - self.min_voltage_fraction)


@dataclass(frozen=True)
class ServicePoint:
    """The operating point a deployment allows for the service."""

    deployment: str
    frequency_fraction: float
    voltage_fraction: float
    compute_budget_ms: float
    #: Dynamic energy per request relative to full-speed execution.
    relative_energy: float
    #: Dynamic power relative to full-speed execution.
    relative_power: float

    @property
    def energy_saving(self) -> float:
        """One minus the relative energy."""
        return 1.0 - self.relative_energy

    @property
    def power_saving(self) -> float:
        """One minus the relative power."""
        return 1.0 - self.relative_power


class EdgeServiceModel:
    """Latency-budget arithmetic for one interactive service."""

    def __init__(self, end_to_end_budget_ms: float = 200.0,
                 compute_time_at_peak_ms: float = 95.0,
                 dvfs: Optional[DvfsCurve] = None) -> None:
        if end_to_end_budget_ms <= 0 or compute_time_at_peak_ms <= 0:
            raise ConfigurationError("budgets must be positive")
        self.end_to_end_budget_ms = end_to_end_budget_ms
        self.compute_time_at_peak_ms = compute_time_at_peak_ms
        self.dvfs = dvfs or DvfsCurve()

    def compute_budget_ms(self, deployment: DeploymentLatency) -> float:
        """Time left for computation after the network takes its share."""
        budget = self.end_to_end_budget_ms - deployment.network_rtt_ms
        if budget <= 0:
            raise ConfigurationError(
                f"deployment {deployment.name!r} leaves no compute budget"
            )
        return budget

    def required_frequency_fraction(self,
                                    deployment: DeploymentLatency) -> float:
        """Slowest clock that still meets the deadline (1.0 = peak)."""
        budget = self.compute_budget_ms(deployment)
        fraction = self.compute_time_at_peak_ms / budget
        if fraction > 1.0:
            raise ConfigurationError(
                f"service cannot meet its deadline on {deployment.name!r} "
                "even at peak frequency"
            )
        return max(fraction, self.dvfs.min_frequency_fraction)

    def service_point(self, deployment: DeploymentLatency) -> ServicePoint:
        """The (frequency, voltage) the deployment permits, with savings."""
        f = self.required_frequency_fraction(deployment)
        v = self.dvfs.voltage_fraction(f)
        return ServicePoint(
            deployment=deployment.name,
            frequency_fraction=f,
            voltage_fraction=v,
            compute_budget_ms=self.compute_budget_ms(deployment),
            relative_energy=v ** 2,          # E ∝ V² (work is fixed cycles)
            relative_power=v ** 2 * f,       # P ∝ V²·f
        )

    def compare(self, cloud: DeploymentLatency = CLOUD,
                edge: DeploymentLatency = EDGE) -> dict:
        """Cloud vs edge service points plus the headline deltas."""
        cloud_point = self.service_point(cloud)
        edge_point = self.service_point(edge)
        return {
            "cloud": cloud_point,
            "edge": edge_point,
            "energy_saving_vs_cloud": (
                1.0 - edge_point.relative_energy / cloud_point.relative_energy
            ),
            "power_saving_vs_cloud": (
                1.0 - edge_point.relative_power / cloud_point.relative_power
            ),
        }
