"""Datacenter design-space exploration with the TCO tool.

The paper promises "a tool [...] for end-to-end estimation of the TCO
and data-center design exploration.  Among other parameters, the TCO
tool will consider specific requirements and architecture of both the
Cloud and the Edge."  This module implements that exploration: sweep
deployment site × server platform × margin policy, price every
configuration for a fixed service capacity, and extract the
cost/reliability Pareto set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from .model import (
    DatacenterSpec,
    EDGE_SITE,
    ServerSpec,
    TCOModel,
    apply_energy_efficiency,
    apply_yield_recovery,
)


@dataclass(frozen=True)
class MarginPolicy:
    """How aggressively a deployment uses Extended Operating Points.

    ``energy_gain`` is the EE factor the policy buys;
    ``failure_overhead`` is the fraction of capacity lost to masked
    errors, restarts and re-characterisation downtime — aggressive
    policies pay it back in extra provisioned servers.
    """

    name: str
    energy_gain: float
    failure_overhead: float
    recovered_yield: float

    def __post_init__(self) -> None:
        if self.energy_gain < 1.0:
            raise ConfigurationError("energy gain must be >= 1")
        if not 0.0 <= self.failure_overhead < 0.5:
            raise ConfigurationError("failure overhead must be in [0, 0.5)")
        if not 0 < self.recovered_yield <= 1:
            raise ConfigurationError("yield must be in (0, 1]")


CONSERVATIVE_POLICY = MarginPolicy(
    "conservative", energy_gain=1.0, failure_overhead=0.0,
    recovered_yield=0.85,
)
MODERATE_EOP_POLICY = MarginPolicy(
    "moderate-eop", energy_gain=1.8, failure_overhead=0.01,
    recovered_yield=0.92,
)
AGGRESSIVE_EOP_POLICY = MarginPolicy(
    "aggressive-eop", energy_gain=3.0, failure_overhead=0.04,
    recovered_yield=0.97,
)

DEFAULT_POLICIES = (CONSERVATIVE_POLICY, MODERATE_EOP_POLICY,
                    AGGRESSIVE_EOP_POLICY)


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration with its priced outcome."""

    site: str
    server: str
    policy: str
    n_servers: int
    fleet_tco_usd: float
    tco_per_capacity_usd: float
    effective_availability: float

    def dominates(self, other: "DesignPoint") -> bool:
        """Cheaper and at least as available (strictly better on one)."""
        no_worse = (self.tco_per_capacity_usd <= other.tco_per_capacity_usd
                    and self.effective_availability
                    >= other.effective_availability)
        strictly = (self.tco_per_capacity_usd < other.tco_per_capacity_usd
                    or self.effective_availability
                    > other.effective_availability)
        return no_worse and strictly


class DesignSpaceExplorer:
    """Prices every (site, server, policy) combination for a capacity."""

    def __init__(self, required_capacity_units: float = 1000.0,
                 capacity_per_server: float = 10.0,
                 base_availability: float = 0.9999) -> None:
        if required_capacity_units <= 0 or capacity_per_server <= 0:
            raise ConfigurationError("capacities must be positive")
        if not 0 < base_availability <= 1:
            raise ConfigurationError("availability must be in (0, 1]")
        self.required_capacity = required_capacity_units
        self.capacity_per_server = capacity_per_server
        self.base_availability = base_availability

    def price(self, site: DatacenterSpec, server: ServerSpec,
              policy: MarginPolicy) -> DesignPoint:
        """Price one configuration for the required capacity."""
        effective_per_server = (self.capacity_per_server
                                * (1.0 - policy.failure_overhead))
        n_servers = int(-(-self.required_capacity // effective_per_server))

        configured = apply_yield_recovery(
            apply_energy_efficiency(server, policy.energy_gain),
            policy.recovered_yield,
        )
        per_server = TCOModel(site).total(configured)
        fleet = per_server * n_servers
        availability = self.base_availability * (
            1.0 - policy.failure_overhead * 0.1)
        return DesignPoint(
            site=site.name,
            server=server.name,
            policy=policy.name,
            n_servers=n_servers,
            fleet_tco_usd=fleet,
            tco_per_capacity_usd=fleet / self.required_capacity,
            effective_availability=availability,
        )

    def explore(self, sites: Sequence[DatacenterSpec],
                servers: Sequence[ServerSpec],
                policies: Sequence[MarginPolicy] = DEFAULT_POLICIES,
                ) -> List[DesignPoint]:
        """Price the whole design space."""
        if not sites or not servers or not policies:
            raise ConfigurationError("empty design-space axis")
        return [
            self.price(site, server, policy)
            for site, server, policy
            in itertools.product(sites, servers, policies)
        ]


def cost_availability_pareto(points: Sequence[DesignPoint],
                             ) -> List[DesignPoint]:
    """Non-dominated configurations, cheapest first."""
    front = [
        candidate for candidate in points
        if not any(other.dominates(candidate) for other in points)
    ]
    return sorted(front, key=lambda p: p.tco_per_capacity_usd)


def cheapest_meeting_availability(points: Sequence[DesignPoint],
                                  min_availability: float) -> DesignPoint:
    """The SLA-style query: cheapest design at/above an availability."""
    feasible = [p for p in points
                if p.effective_availability >= min_availability]
    if not feasible:
        raise ConfigurationError(
            f"no design meets availability {min_availability}"
        )
    return min(feasible, key=lambda p: p.tco_per_capacity_usd)
