"""Compute-node abstraction for the resource manager.

A :class:`ComputeNode` is the cloud layer's view of one **full**
:class:`~repro.core.coordinator.UniServerNode` — Predictor and
IsolationManager included — rather than a hand-assembled partial stack.
Rack experiments therefore exercise exactly the same cross-layer code
path as the single-node benches, through the shared
``pre_deploy → deploy → run`` lifecycle, and every node reports into its
runtime's :class:`~repro.core.runtime.MetricsRegistry`.

The node exposes the metrics OpenStack-style scheduling consumes.  Paper
Section 2: "in UniServer an additional node *reliability* metric is added
to the traditional metrics of interest, which are node availability,
utilization and energy usage."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.clock import SimClock
from ..core.coordinator import UniServerNode
from ..core.events import EventBus
from ..core.exceptions import ConfigurationError, IsolationError
from ..core.runtime import NodeRuntime, spawn_runtimes
from ..daemons.healthlog import HealthLog
from ..daemons.predictor import Predictor
from ..daemons.stresslog import StressLog
from ..eop.governor import EOPGovernor
from ..eop.policy import EOPPolicy, EOPState
from ..hardware.faults import FaultClass
from ..hardware.platform import ServerPlatform
from ..hypervisor.hypervisor import Hypervisor, HypervisorConfig
from ..hypervisor.isolation import IsolationManager
from ..hypervisor.qos import QoSGuard
from ..hypervisor.vm import VirtualMachine
from ..resilience.health import Heartbeat
from .telemetry import NodeSample, TelemetryService, VMSample


def _predictor_state(predictor):
    """Kind-tagged predictor envelope (lazy import: cyclic module)."""
    from .failure_prediction import predictor_state
    return predictor_state(predictor)


@dataclass(frozen=True)
class NodeMetrics:
    """One scheduling-relevant snapshot of a node."""

    node: str
    availability: float
    utilization: float
    power_w: float
    reliability: float
    free_vcpus: int
    free_memory_mb: float
    frequency_fraction: float

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        return (
            f"{self.node}: avail={self.availability:.4f} "
            f"util={self.utilization:.2f} power={self.power_w:.1f}W "
            f"rel={self.reliability:.3f} free_vcpus={self.free_vcpus}"
        )


class ComputeNode:
    """A full UniServer node as the cloud layer sees it.

    Wraps a :class:`~repro.core.coordinator.UniServerNode` and drives its
    unified lifecycle:

    * ``characterize=True`` runs the pre-deployment StressLog cycle,
      deploys under ``eop_policy`` (adopt-within-budget by default) and
      trains the node Predictor from the stress evidence;
    * ``characterize=False`` (the default, and the old behaviour)
      deploys conservatively at nominal with no offline campaign.

    Either way the node carries the complete stack — HealthLog,
    StressLog, Predictor, Hypervisor, IsolationManager, QoSGuard, EOP
    governor — and :meth:`step` runs governor supervision and periodic
    isolation reviews alongside hypervisor ticks.
    """

    def __init__(self, name: str, clock: Optional[SimClock] = None,
                 platform: Optional[ServerPlatform] = None,
                 hypervisor_config: Optional[HypervisorConfig] = None,
                 seed: int = 0,
                 runtime: Optional[NodeRuntime] = None,
                 characterize: bool = False,
                 eop_policy: Optional[EOPPolicy] = None,
                 isolation_review_every_s: float = 60.0) -> None:
        if isolation_review_every_s <= 0:
            raise ConfigurationError(
                "isolation review period must be positive")
        if runtime is None:
            runtime = NodeRuntime(name=name, clock=clock, seed=seed)
        elif clock is not None and clock is not runtime.clock:
            raise ConfigurationError(
                "pass either a runtime or a clock, not a conflicting pair")
        self.name = name
        self.runtime = runtime
        self.node = UniServerNode(
            platform=platform, hypervisor_config=hypervisor_config,
            runtime=runtime,
        )
        self.platform.name = name
        self.isolation_review_every_s = isolation_review_every_s
        self._uptime_s = 0.0
        self._downtime_s = 0.0
        self._since_review = 0.0
        #: Node-local telemetry ring the on-node risk predictor reads —
        #: the controller only ever sees what the heartbeat ships out.
        self.local_telemetry = TelemetryService()
        #: Node-local failure-risk predictor (lazily a
        #: ThresholdFailurePredictor; the controller may swap it).
        self.risk_predictor = None
        #: Last horizon report shipped in a heartbeat (serving cache —
        #: rebuilt on the next heartbeat, so not persisted).
        self.last_risk_report = None
        #: Chaos switches: the Predictor daemon is down (heartbeats ship
        #: no risk verdict) / recovery commands are silently swallowed.
        self.predictor_down = False
        self.recovery_stuck = False
        if eop_policy is None:
            eop_policy = (EOPPolicy.adopt_within_budget() if characterize
                          else EOPPolicy.conservative())
        if characterize:
            self.node.pre_deploy()
            self.node.deploy(eop_policy)
            self.node.train_predictor(include_campaign=False)
        else:
            self.node.deploy(eop_policy)

    # -- the wrapped stack -------------------------------------------------

    @property
    def clock(self) -> SimClock:
        """The shared simulation clock."""
        return self.runtime.clock

    @property
    def bus(self) -> EventBus:
        """The node's event bus."""
        return self.runtime.bus

    @property
    def platform(self) -> ServerPlatform:
        """The node's hardware platform."""
        return self.node.platform

    @property
    def hypervisor(self) -> Hypervisor:
        """The node's hypervisor."""
        return self.node.hypervisor

    @property
    def healthlog(self) -> HealthLog:
        """The node's HealthLog daemon."""
        return self.node.healthlog

    @property
    def stresslog(self) -> StressLog:
        """The node's StressLog daemon."""
        return self.node.stresslog

    @property
    def predictor(self) -> Predictor:
        """The node's failure Predictor daemon."""
        return self.node.predictor

    @property
    def isolation(self) -> IsolationManager:
        """The node's isolation manager."""
        return self.node.isolation

    @property
    def qos(self) -> QoSGuard:
        """Per-VM QoS guarantees gating local EOP adoption."""
        return self.node.qos

    @property
    def governor(self) -> EOPGovernor:
        """The node's EOP governor (supervised margin adoption)."""
        return self.node.governor

    @property
    def stale_fallback_s(self) -> Optional[float]:
        """Telemetry-staleness horizon of the conservative fallback.

        Delegates to the governor, which owns the fallback since the
        one-shot era; kept as a node attribute because the cloud
        controller's degradation config arms it per-node.
        """
        return self.node.governor.stale_fallback_s

    @stale_fallback_s.setter
    def stale_fallback_s(self, value: Optional[float]) -> None:
        self.node.governor.stale_fallback_s = value

    # -- capacity ---------------------------------------------------------

    @property
    def total_vcpus(self) -> int:
        """vCPU capacity over the node's active cores."""
        return len(self.platform.chip.active_cores()) * 2  # 2 vCPUs per core

    def used_vcpus(self) -> int:
        """vCPUs consumed by active VMs."""
        return sum(vm.vcpus for vm in self.hypervisor.active_vms())

    def free_vcpus(self) -> int:
        """vCPUs still available."""
        return max(0, self.total_vcpus - self.used_vcpus())

    def total_memory_mb(self) -> float:
        """Total node memory in MB."""
        return self.platform.memory.capacity_gb * 1024.0

    def used_memory_mb(self) -> float:
        """Memory consumed by current allocations (MB)."""
        return sum(a.size_mb for a in self.hypervisor.placement.allocations)

    def free_memory_mb(self) -> float:
        """Memory still available (MB)."""
        return max(0.0, self.total_memory_mb() - self.used_memory_mb())

    def tier_free_mb(self) -> Dict[str, float]:
        """Free memory per reliability tier (MB), for tier-aware weighing."""
        capacity = {
            tier: gb * 1024.0
            for tier, gb in self.platform.memory.tier_capacity_gb().items()
        }
        used = self.hypervisor.placement.tier_usage_mb()
        return {
            tier: max(0.0, capacity[tier] - used.get(tier, 0.0))
            for tier in capacity
        }

    def can_host(self, vm: VirtualMachine) -> bool:
        """Capacity check for one more VM."""
        if self.hypervisor.crashed:
            return False
        need_mb = vm.guest_os_mb + vm.workload.demand.memory_mb
        return vm.vcpus <= self.free_vcpus() and need_mb <= self.free_memory_mb()

    # -- metrics -----------------------------------------------------------

    def availability(self) -> float:
        """Achieved availability (uptime over total time)."""
        total = self._uptime_s + self._downtime_s
        return self._uptime_s / total if total else 1.0

    def utilization(self) -> float:
        """vCPU utilization in [0, 1]."""
        if self.total_vcpus == 0:
            return 1.0
        return min(1.0, self.used_vcpus() / self.total_vcpus)

    def reliability(self, window_s: float = 3600.0) -> float:
        """The UniServer-added node reliability metric in [0, 1].

        Derived from the recent error history: correctable errors dent the
        score mildly, uncorrectable errors and crashes heavily.  Governor
        state folds in on top — a node whose extended points are being
        demoted or quarantined is advertising its own margins as suspect.
        """
        now = self.clock.now
        since = now - window_s
        ledger = self.platform.faults
        ce = ledger.count(fault_class=FaultClass.CORRECTABLE, since=since)
        ue = ledger.count(fault_class=FaultClass.UNCORRECTABLE, since=since)
        sdc = ledger.count(
            fault_class=FaultClass.SILENT_DATA_CORRUPTION, since=since)
        crash = ledger.count(fault_class=FaultClass.CRASH, since=since)
        penalty = 0.002 * ce + 0.05 * ue + 0.05 * sdc + 0.25 * crash
        counts = self.governor.counts()
        penalty += (0.02 * counts[EOPState.DEMOTED.value]
                    + 0.05 * counts[EOPState.QUARANTINED.value])
        return max(0.0, 1.0 - penalty)

    def frequency_fraction(self) -> float:
        """Mean active-core frequency relative to nominal."""
        nominal = self.platform.chip.spec.nominal.frequency_hz
        active = self.platform.chip.active_cores()
        if not active:
            return 0.0
        fractions = [
            self.platform.core_point(c.core_id).frequency_hz / nominal
            for c in active
        ]
        return sum(fractions) / len(fractions)

    def metrics(self) -> NodeMetrics:
        """The scheduling snapshot (also mirrored into the registry)."""
        snapshot = NodeMetrics(
            node=self.name,
            availability=self.availability(),
            utilization=self.utilization(),
            power_w=self.platform.total_power_w(
                activity=0.3 + 0.6 * self.utilization()),
            reliability=self.reliability(),
            free_vcpus=self.free_vcpus(),
            free_memory_mb=self.free_memory_mb(),
            frequency_fraction=self.frequency_fraction(),
        )
        registry = self.runtime.metrics
        registry.set_gauge("cloudmgr.node.availability",
                           snapshot.availability)
        registry.set_gauge("cloudmgr.node.utilization", snapshot.utilization)
        registry.set_gauge("cloudmgr.node.power_w", snapshot.power_w)
        registry.set_gauge("cloudmgr.node.reliability", snapshot.reliability)
        return snapshot

    def metrics_snapshot(self) -> dict:
        """The node's full cross-layer metrics registry dump."""
        return self.runtime.metrics.snapshot()

    # -- the control-plane self-report --------------------------------------

    def _assess_risk(self):
        """Node-local failure-risk verdict (None while Predictor down)."""
        if self.predictor_down:
            self.runtime.metrics.inc("resilience.predictor.unavailable")
            return None
        if self.risk_predictor is None:
            from .failure_prediction import ThresholdFailurePredictor
            self.risk_predictor = ThresholdFailurePredictor()
        return self.risk_predictor.assess(self, self.local_telemetry)

    def _risk_report(self, assessment):
        """The predictor's horizon report, if it can produce one.

        Down with the Predictor daemon (same degradation rung as the
        scalar verdict); None for a predictor without horizon support.
        """
        if self.predictor_down or self.risk_predictor is None:
            self.last_risk_report = None
            return None
        report_fn = getattr(self.risk_predictor, "report", None)
        if report_fn is None:
            self.last_risk_report = None
            return None
        self.last_risk_report = report_fn(self, self.local_telemetry,
                                          assessment=assessment)
        return self.last_risk_report

    def risk_report(self):
        """The last horizon report shipped (None before any heartbeat)."""
        return self.last_risk_report

    def heartbeat(self) -> Optional[Heartbeat]:
        """The periodic self-report to the controller.

        ``None`` while the host is down — a crashed node cannot speak,
        which is exactly what the controller's missed-heartbeat ladder
        keys on.  The sample also feeds the node-local telemetry ring so
        the on-node risk predictor sees its own error history.
        """
        if self.hypervisor.crashed:
            return None
        metrics = self.metrics()
        sample = NodeSample(
            timestamp=self.clock.now, node=self.name,
            utilization=metrics.utilization, power_w=metrics.power_w,
            reliability=metrics.reliability,
            correctable_errors=self.hypervisor.stats.correctable_errors,
            temperature_c=self.platform.chip.thermal.temperature_c,
        )
        self.local_telemetry.record_node(sample)
        dt = max(self.hypervisor.config.tick_s, 1e-9)
        vm_samples = tuple(
            VMSample(
                timestamp=self.clock.now, vm_name=vm.name, node=self.name,
                cpu_utilization=vm.workload.profile.activity_factor,
                memory_mb=vm.memory_usage_mb(),
                progress_rate=vm.progress / max(self.clock.now, dt),
            )
            for vm in self.hypervisor.active_vms()
        )
        self.runtime.metrics.inc("resilience.heartbeats.emitted")
        counts = self.governor.counts()
        risk = self._assess_risk()
        return Heartbeat(
            timestamp=self.clock.now, node=self.name, metrics=metrics,
            sample=sample, vm_samples=vm_samples, risk=risk,
            info_vector_age_s=self.healthlog.info_vector_age_s(),
            active_vms=tuple(
                vm.name for vm in self.hypervisor.active_vms()),
            margin_applications=self.hypervisor.stats.margin_applications,
            failure_budget=self.hypervisor.config.failure_budget,
            eop_adopted=self.governor.adopted_count(),
            eop_demoted=counts[EOPState.DEMOTED.value],
            eop_quarantined=counts[EOPState.QUARANTINED.value],
            horizon_report=self._risk_report(risk),
        )

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable node state across every wrapped layer."""
        return {
            "runtime": self.runtime.state_dict(),
            "metrics": self.runtime.metrics.state_dict(),
            "platform": self.platform.state_dict(),
            "hypervisor": self.hypervisor.state_dict(),
            "healthlog": self.healthlog.state_dict(),
            "isolation": self.isolation.state_dict(),
            "qos": self.qos.state_dict(),
            "local_telemetry": self.local_telemetry.state_dict(),
            "uptime_s": self._uptime_s,
            "downtime_s": self._downtime_s,
            "since_review": self._since_review,
            "predictor_down": self.predictor_down,
            "recovery_stuck": self.recovery_stuck,
            "governor": self.governor.state_dict(),
            "risk_predictor": _predictor_state(self.risk_predictor),
        }

    def load_state_dict(self, state: Dict[str, object],
                        vm_factory: Callable[[str], VirtualMachine]) -> None:
        """Restore the node saved by :meth:`state_dict`.

        ``vm_factory`` rebuilds each named VM shell (workload and sizing)
        so the hypervisor can overlay the saved runtime state onto it.
        """
        self.runtime.load_state_dict(state["runtime"])  # type: ignore[arg-type]
        self.runtime.metrics.load_state_dict(state["metrics"])  # type: ignore[arg-type]
        self.platform.load_state_dict(state["platform"])  # type: ignore[arg-type]
        self.hypervisor.load_state_dict(
            state["hypervisor"], vm_factory)  # type: ignore[arg-type]
        self.healthlog.load_state_dict(state["healthlog"])  # type: ignore[arg-type]
        self.isolation.load_state_dict(state["isolation"])  # type: ignore[arg-type]
        self.qos.load_state_dict(state["qos"])  # type: ignore[arg-type]
        self.local_telemetry.load_state_dict(
            state["local_telemetry"])  # type: ignore[arg-type]
        self._uptime_s = float(state["uptime_s"])  # type: ignore[arg-type]
        self._downtime_s = float(state["downtime_s"])  # type: ignore[arg-type]
        self._since_review = float(state["since_review"])  # type: ignore[arg-type]
        self.predictor_down = bool(state["predictor_down"])
        self.recovery_stuck = bool(state["recovery_stuck"])
        self.governor.load_state_dict(state["governor"])  # type: ignore[arg-type]
        # .get(): snapshots from before the predictor round-trip landed
        # have no envelope — leave whatever predictor is installed.
        envelope = state.get("risk_predictor")
        if envelope is not None:
            from .failure_prediction import predictor_from_state
            restored = predictor_from_state(envelope)  # type: ignore[arg-type]
            if (self.risk_predictor is not None
                    and getattr(self.risk_predictor, "KIND", None)
                    == getattr(restored, "KIND", None)):
                # Keep the installed instance (it may be shared with the
                # controller); overlay the saved state onto it.
                self.risk_predictor.load_state_dict(
                    envelope["state"])  # type: ignore[index]
            else:
                self.risk_predictor = restored

    # -- execution ----------------------------------------------------------

    def _review_isolation(self) -> None:
        """One isolation review; a refusal to fence the last core is
        recorded rather than propagated (the rack keeps running)."""
        try:
            self.isolation.review(self.platform.faults, self.clock.now)
        except IsolationError:
            self.runtime.metrics.inc("hypervisor.isolation.blocked")

    def step(self, dt_s: float) -> None:
        """Advance the node: governor supervision, hypervisor ticks,
        isolation review, availability accounting."""
        if dt_s < 0:
            raise ConfigurationError("dt must be non-negative")
        self.governor.step()
        if self.hypervisor.crashed:
            self._downtime_s += dt_s
            return
        n_ticks = max(1, int(dt_s / self.hypervisor.config.tick_s))
        for _ in range(n_ticks):
            if self.hypervisor.crashed:
                break
            self.hypervisor.tick()
        self._since_review += dt_s
        if self._since_review >= self.isolation_review_every_s:
            self._review_isolation()
            self._since_review = 0.0
        if self.hypervisor.crashed:
            self._downtime_s += dt_s
        else:
            self._uptime_s += dt_s

    def recover(self) -> bool:
        """Power-cycle the node (operator/automation action).

        Returns whether the node came back up.  A stuck recovery path
        (chaos) swallows the command and reports failure.  Power-cycling
        a node that was in fact alive — the cost of a controller's false
        DOWN declaration — is disruptive: every guest reboots.
        """
        if self.recovery_stuck:
            self.runtime.metrics.inc("resilience.recovery.stuck")
            return False
        if not self.hypervisor.crashed:
            for vm in self.hypervisor.active_vms():
                vm.fail()
                if self.hypervisor.config.restart_failed_vms:
                    vm.restart()
            self.runtime.metrics.inc("resilience.recovery.disruptive")
            return True
        self.hypervisor.reboot()
        return not self.hypervisor.crashed


def build_rack(n_nodes: int, clock: Optional[SimClock] = None,
               seed: int = 0, name_prefix: str = "node",
               characterize: bool = False,
               eop_policy: Optional[EOPPolicy] = None,
               hypervisor_config: Optional[HypervisorConfig] = None,
               ) -> List[ComputeNode]:
    """A rack of full UniServer nodes on one shared clock.

    One experiment ``seed`` fans out (``SeedSequence.spawn``) into an
    independent, reproducible stream family per node, replacing the
    ad-hoc ``seed=base + i`` convention.
    """
    runtimes = spawn_runtimes(n_nodes, seed=seed, clock=clock,
                              name_prefix=name_prefix)
    return [
        ComputeNode(runtime.name, runtime=runtime,
                    hypervisor_config=hypervisor_config,
                    characterize=characterize,
                    eop_policy=eop_policy)
        for runtime in runtimes
    ]
