"""Compute-node abstraction for the resource manager.

Each node bundles a platform, its hypervisor and its daemons, and exposes
the metrics OpenStack-style scheduling consumes.  Paper Section 2: "in
UniServer an additional node *reliability* metric is added to the
traditional metrics of interest, which are node availability, utilization
and energy usage."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.clock import SimClock
from ..core.eop import OperatingPoint
from ..core.events import EventBus
from ..core.exceptions import ConfigurationError
from ..daemons.healthlog import HealthLog, HealthLogConfig
from ..daemons.stresslog import StressLog, StressTargets
from ..hardware.faults import FaultClass
from ..hardware.platform import ServerPlatform, build_uniserver_node
from ..hypervisor.hypervisor import Hypervisor, HypervisorConfig
from ..hypervisor.vm import VirtualMachine


@dataclass(frozen=True)
class NodeMetrics:
    """One scheduling-relevant snapshot of a node."""

    node: str
    availability: float
    utilization: float
    power_w: float
    reliability: float
    free_vcpus: int
    free_memory_mb: float
    frequency_fraction: float

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        return (
            f"{self.node}: avail={self.availability:.4f} "
            f"util={self.utilization:.2f} power={self.power_w:.1f}W "
            f"rel={self.reliability:.3f} free_vcpus={self.free_vcpus}"
        )


class ComputeNode:
    """A full UniServer node as the cloud layer sees it."""

    def __init__(self, name: str, clock: SimClock,
                 platform: Optional[ServerPlatform] = None,
                 hypervisor_config: Optional[HypervisorConfig] = None,
                 seed: int = 0) -> None:
        self.name = name
        self.clock = clock
        self.bus = EventBus()
        self.platform = platform or build_uniserver_node(name=name)
        self.platform.name = name
        self.hypervisor = Hypervisor(
            self.platform, clock, bus=self.bus,
            config=hypervisor_config, seed=seed,
        )
        self.healthlog = HealthLog(self.platform, self.bus, clock)
        self.stresslog = StressLog(self.platform, clock, bus=self.bus)
        # Per-VM QoS guarantees gating local EOP adoption; the cloud
        # layer registers each VM's requirement at placement time.
        from ..hypervisor.qos import QoSGuard
        self.qos = QoSGuard(self.hypervisor)
        self._uptime_s = 0.0
        self._downtime_s = 0.0
        self.hypervisor.boot()

    # -- capacity ---------------------------------------------------------

    @property
    def total_vcpus(self) -> int:
        """vCPU capacity over the node's active cores."""
        return len(self.platform.chip.active_cores()) * 2  # 2 vCPUs per core

    def used_vcpus(self) -> int:
        """vCPUs consumed by active VMs."""
        return sum(vm.vcpus for vm in self.hypervisor.active_vms())

    def free_vcpus(self) -> int:
        """vCPUs still available."""
        return max(0, self.total_vcpus - self.used_vcpus())

    def total_memory_mb(self) -> float:
        """Total node memory in MB."""
        return self.platform.memory.capacity_gb * 1024.0

    def used_memory_mb(self) -> float:
        """Memory consumed by current allocations (MB)."""
        return sum(a.size_mb for a in self.hypervisor.placement.allocations)

    def free_memory_mb(self) -> float:
        """Memory still available (MB)."""
        return max(0.0, self.total_memory_mb() - self.used_memory_mb())

    def can_host(self, vm: VirtualMachine) -> bool:
        """Capacity check for one more VM."""
        if self.hypervisor.crashed:
            return False
        need_mb = vm.guest_os_mb + vm.workload.demand.memory_mb
        return vm.vcpus <= self.free_vcpus() and need_mb <= self.free_memory_mb()

    # -- metrics -----------------------------------------------------------

    def availability(self) -> float:
        """Achieved availability (uptime over total time)."""
        total = self._uptime_s + self._downtime_s
        return self._uptime_s / total if total else 1.0

    def utilization(self) -> float:
        """vCPU utilization in [0, 1]."""
        if self.total_vcpus == 0:
            return 1.0
        return min(1.0, self.used_vcpus() / self.total_vcpus)

    def reliability(self, window_s: float = 3600.0) -> float:
        """The UniServer-added node reliability metric in [0, 1].

        Derived from the recent error history: correctable errors dent the
        score mildly, uncorrectable errors and crashes heavily.
        """
        now = self.clock.now
        since = now - window_s
        ledger = self.platform.faults
        ce = ledger.count(fault_class=FaultClass.CORRECTABLE, since=since)
        ue = ledger.count(fault_class=FaultClass.UNCORRECTABLE, since=since)
        sdc = ledger.count(
            fault_class=FaultClass.SILENT_DATA_CORRUPTION, since=since)
        crash = ledger.count(fault_class=FaultClass.CRASH, since=since)
        penalty = 0.002 * ce + 0.05 * ue + 0.05 * sdc + 0.25 * crash
        return max(0.0, 1.0 - penalty)

    def frequency_fraction(self) -> float:
        """Mean active-core frequency relative to nominal."""
        nominal = self.platform.chip.spec.nominal.frequency_hz
        active = self.platform.chip.active_cores()
        if not active:
            return 0.0
        fractions = [
            self.platform.core_point(c.core_id).frequency_hz / nominal
            for c in active
        ]
        return sum(fractions) / len(fractions)

    def metrics(self) -> NodeMetrics:
        """The scheduling snapshot."""
        return NodeMetrics(
            node=self.name,
            availability=self.availability(),
            utilization=self.utilization(),
            power_w=self.platform.total_power_w(
                activity=0.3 + 0.6 * self.utilization()),
            reliability=self.reliability(),
            free_vcpus=self.free_vcpus(),
            free_memory_mb=self.free_memory_mb(),
            frequency_fraction=self.frequency_fraction(),
        )

    # -- execution ----------------------------------------------------------

    def step(self, dt_s: float) -> None:
        """Advance the node: tick the hypervisor, account availability."""
        if dt_s < 0:
            raise ConfigurationError("dt must be non-negative")
        if self.hypervisor.crashed:
            self._downtime_s += dt_s
            return
        n_ticks = max(1, int(dt_s / self.hypervisor.config.tick_s))
        for _ in range(n_ticks):
            if self.hypervisor.crashed:
                break
            self.hypervisor.tick()
        if self.hypervisor.crashed:
            self._downtime_s += dt_s
        else:
            self._uptime_s += dt_s

    def recover(self) -> None:
        """Reboot a crashed node (operator/automation action)."""
        self.hypervisor.reboot()
