"""Trace-driven cloud simulation: streams of incoming and terminating VMs.

Section 4.B requires the new scheduling policies to be "non-intrusive in
real-world scenarios where OpenStack would manage streams of incoming
and terminating VMs".  This module closes the loop between the
synthetic arrival traces (:mod:`repro.workloads.traces`) and the
:class:`~repro.cloudmgr.cloud.CloudController`: VMs arrive on the trace's
schedule, run for their drawn lifetimes, and terminate; rejected
arrivals (no feasible node) are counted rather than crashing the
simulation, because admission pressure is part of what the experiment
measures.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.exceptions import ConfigurationError, SchedulingError
from ..hypervisor.vm import VirtualMachine
from ..workloads.traces import ArrivalEvent, TraceGenerator
from .cloud import CloudController
from .sla import BRONZE, GOLD, SILVER, SLA

TIER_MAP: Dict[str, SLA] = {
    "gold": GOLD,
    "silver": SILVER,
    "bronze": BRONZE,
}

#: Nominal core frequency the admission scaling assumes.
NOMINAL_HZ = 2.4e9


def vm_from_event(event: ArrivalEvent) -> VirtualMachine:
    """The VM shell an arrival event admits.

    Scales the workload so it runs for roughly the drawn lifetime at
    nominal frequency; the VM terminates on its departure time
    regardless (interactive services do not "complete").  Shared by the
    live admission path and the snapshot-restore VM factory so both
    rebuild identical shells.
    """
    workload = event.workload.scaled(
        max(0.01, event.lifetime_s * NOMINAL_HZ
            / event.workload.duration_cycles))
    return VirtualMachine(name=event.vm_name, workload=workload)


@dataclass
class SimulationStats:
    """Outcome counters of one trace-driven run."""

    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    terminated: int = 0
    rejected_by_tier: Dict[str, int] = field(default_factory=dict)

    @property
    def admission_rate(self) -> float:
        """Admitted arrivals as a fraction of all arrivals."""
        return self.admitted / self.arrivals if self.arrivals else 1.0


class TraceDrivenSimulation:
    """Feeds an arrival trace through a cloud controller."""

    def __init__(self, cloud: CloudController,
                 events: Sequence[ArrivalEvent],
                 step_s: float = 60.0) -> None:
        if step_s <= 0:
            raise ConfigurationError("step must be positive")
        self.cloud = cloud
        self.events = sorted(events, key=lambda e: e.timestamp)
        self.step_s = step_s
        self.stats = SimulationStats()
        self._departures: Dict[str, float] = {}
        #: Min-heap of (departure_time, vm_name) with lazy deletion —
        #: ``_departures`` stays the source of truth (and the persisted
        #: form); stale heap entries are skipped on pop.
        self._departure_heap: List[Tuple[float, str]] = []
        self._next_event = 0
        self.now = 0.0

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable simulation-loop state (the trace itself is
        regenerated from config on rebuild, not saved)."""
        return {
            "stats": {
                "arrivals": self.stats.arrivals,
                "admitted": self.stats.admitted,
                "rejected": self.stats.rejected,
                "terminated": self.stats.terminated,
                "rejected_by_tier": dict(self.stats.rejected_by_tier),
            },
            "departures": dict(self._departures),
            "next_event": self._next_event,
            "now": self.now,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the loop saved by :meth:`state_dict`."""
        stats = state["stats"]
        self.stats = SimulationStats(
            arrivals=int(stats["arrivals"]),  # type: ignore[index]
            admitted=int(stats["admitted"]),  # type: ignore[index]
            rejected=int(stats["rejected"]),  # type: ignore[index]
            terminated=int(stats["terminated"]),  # type: ignore[index]
            rejected_by_tier={str(k): int(v) for k, v
                              in stats["rejected_by_tier"].items()},  # type: ignore[index]
        )
        self._departures = {str(k): float(v) for k, v
                            in state["departures"].items()}  # type: ignore[union-attr]
        self._departure_heap = [(when, name) for name, when
                                in self._departures.items()]
        heapq.heapify(self._departure_heap)
        self._next_event = int(state["next_event"])  # type: ignore[arg-type]
        self.now = float(state["now"])  # type: ignore[arg-type]

    def _admit(self, event: ArrivalEvent, now: float) -> None:
        sla = TIER_MAP[event.tier]
        vm = vm_from_event(event)
        self.stats.arrivals += 1
        try:
            self.cloud.launch(vm, sla)
        except SchedulingError:
            self.stats.rejected += 1
            self.stats.rejected_by_tier[event.tier] = (
                self.stats.rejected_by_tier.get(event.tier, 0) + 1)
            return
        self.stats.admitted += 1
        departure = now + event.lifetime_s
        self._departures[event.vm_name] = departure
        heapq.heappush(self._departure_heap, (departure, event.vm_name))

    def _terminate_departed(self, now: float) -> None:
        # Pop only what is due: O(departed log n) per step instead of a
        # linear scan over every pending VM.
        while self._departure_heap and self._departure_heap[0][0] <= now:
            departure, vm_name = heapq.heappop(self._departure_heap)
            if self._departures.get(vm_name) != departure:
                # Stale entry (lazy deletion): superseded or restored.
                continue
            del self._departures[vm_name]
            try:
                node = self.cloud.locate(vm_name)
            except KeyError:
                # Completed or lost before its departure time.
                self.cloud.forget_vm(vm_name)
                self.stats.terminated += 1
                continue
            node.hypervisor.destroy_vm(vm_name)
            self.cloud.forget_vm(vm_name)
            self.stats.terminated += 1

    def step_once(self) -> None:
        """Advance the simulation by exactly one step.

        Order is load-bearing (the crash-safe runtime replays it
        verbatim): admit due arrivals, advance the controller, advance
        the clock, then terminate VMs past their lifetimes.
        """
        now = self.now
        while (self._next_event < len(self.events)
               and self.events[self._next_event].timestamp <= now):
            self._admit(self.events[self._next_event], now)
            self._next_event += 1
        self.cloud.step(self.step_s)
        self.cloud.clock.advance_by(self.step_s)
        now += self.step_s
        self.now = now
        self._terminate_departed(now)

    def run(self, duration_s: float) -> SimulationStats:
        """Run the whole trace window.

        Each step: admit due arrivals, advance the controller, terminate
        VMs past their lifetimes.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        while self.now < duration_s:
            self.step_once()
        return self.stats

    def active_vm_count(self) -> int:
        """VMs currently resident across the rack."""
        return sum(len(node.hypervisor.vms)
                   for node in self.cloud.node_list())


def run_trace_experiment(cloud: CloudController, duration_s: float,
                         trace_seed: int = 0,
                         base_rate_per_hour: float = 12.0,
                         step_s: float = 60.0) -> SimulationStats:
    """Convenience: generate a trace and run it through a controller."""
    from ..workloads.traces import TraceConfig

    generator = TraceGenerator(
        TraceConfig(base_rate_per_hour=base_rate_per_hour),
        seed=trace_seed)
    events = generator.generate(duration_s)
    simulation = TraceDrivenSimulation(cloud, events, step_s=step_s)
    return simulation.run(duration_s)


@dataclass
class RackExperiment:
    """Everything one seeded rack run produced."""

    cloud: CloudController
    stats: SimulationStats

    def metrics_snapshot(self) -> Dict[str, dict]:
        """Per-node cross-layer metrics (see CloudController)."""
        return self.cloud.metrics_snapshot()


def run_rack_experiment(n_nodes: int = 4, duration_s: float = 3600.0,
                        seed: int = 0,
                        characterize: bool = False,
                        eop_policy=None,
                        proactive_migration: bool = True,
                        base_rate_per_hour: float = 12.0,
                        step_s: float = 60.0,
                        degradation=None,
                        fault_plan=None,
                        scheduler=None,
                        predictor=None) -> RackExperiment:
    """One fully seeded rack run: N full UniServer nodes, one clock.

    Everything stochastic — per-node fault draws, the arrival trace,
    any chaos injections — derives from the single ``seed``, so the run
    is reproducible bit-for-bit: placements, migrations and the metrics
    snapshot are identical across same-seed invocations.

    ``degradation`` (a :class:`~repro.resilience.policies.DegradationConfig`)
    tunes the controller's graceful-degradation ladder; ``fault_plan``
    (a :class:`~repro.resilience.chaos.FaultPlan`) attaches a chaos
    engine injecting control-plane faults against it.  ``eop_policy``
    (a :class:`~repro.eop.EOPPolicy`) sets every node's margin-adoption
    stance; None keeps the per-node default.

    ``scheduler`` (e.g. a :class:`~repro.cloudmgr.scheduler.FilterScheduler`
    armed with ``RISK_AWARE_WEIGHERS``) and ``predictor`` (installed as
    every node's local risk predictor) select the prediction arm — the
    A/B surface of ``bench_failure_prediction``.
    """
    from ..core.clock import SimClock
    from ..resilience.chaos import ChaosEngine
    from .node import build_rack

    if n_nodes < 1:
        raise ConfigurationError("the rack needs at least one node")
    clock = SimClock()
    nodes = build_rack(n_nodes, clock=clock, seed=seed,
                       characterize=characterize,
                       eop_policy=eop_policy)
    chaos = ChaosEngine(fault_plan) if fault_plan is not None else None
    cloud = CloudController(clock, nodes,
                            scheduler=scheduler,
                            predictor=predictor,
                            proactive_migration=proactive_migration,
                            degradation=degradation,
                            chaos=chaos, control_seed=seed)
    stats = run_trace_experiment(
        cloud, duration_s, trace_seed=seed,
        base_rate_per_hour=base_rate_per_hour, step_s=step_s)
    return RackExperiment(cloud=cloud, stats=stats)
