"""The risk-aware migration A/B: trained predictor vs. threshold baseline.

One pinned chaos plan, two controller arms:

* **baseline** — every node runs the default
  :class:`~repro.cloudmgr.failure_prediction.ThresholdFailurePredictor`
  and the stock weigher set;
* **risk_aware** — every node runs a trained
  :class:`~repro.cloudmgr.failure_prediction.MultiHorizonPredictor`
  (typically trained on sweep-harvested labels) and the scheduler is
  armed with the horizon-report weigher
  (:data:`~repro.cloudmgr.scheduler.RISK_AWARE_WEIGHERS`).

Both arms replay the *same* fault schedule on same-seed racks, so the
deltas in availability and SLA violations are attributable to the
prediction/actuation path alone.  Shared by ``repro predict --ab`` and
``benchmarks/bench_failure_prediction.py``; the payload is
canonical-JSON serializable and deterministic, so same-seed reports are
byte-identical.

The default pinned plan is a *storm composition*
(:func:`storm_plan`): background random chaos plus one long crash-loop
storm per node.  Re-crash storms are the fault mode prediction can act
on — a node that just crashed and recovered inside a storm window will
crash again, and its dented reliability says so — whereas isolated
exogenous crashes are irreducible noise no predictor beats.  The A/B
pins a plan that contains the predictable mode rather than one that is
noise end to end.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def storm_plan(nodes: Sequence[str], duration_s: float, seed: int,
               background_rate_per_hour: float = 4.0,
               intensity: float = 0.9,
               storm_duration_s: float = 1800.0):
    """Background random chaos plus one crash-loop storm per node.

    The storms are staggered deterministically across the campaign so
    at most one node is storming at a time — the fleet always has
    healthy targets to evacuate toward, which is the regime where
    acting on a prediction can actually help.
    """
    from ..resilience.chaos import FaultKind, FaultPlan, FaultSpec

    base = FaultPlan.random(
        nodes, duration_s, rate_per_hour=background_rate_per_hour,
        seed=seed, intensity=intensity)
    storms = []
    span = max(0.0, duration_s - storm_duration_s)
    for i, node in enumerate(sorted(nodes)):
        start = span * (i + 1) / (len(nodes) + 1)
        storms.append(FaultSpec(
            kind=FaultKind.CRASH_LOOP, node=node, start_s=float(start),
            duration_s=storm_duration_s, magnitude=intensity))
    return FaultPlan(tuple(base.specs) + tuple(storms))


def run_prediction_ab(predictor, n_nodes: int = 5,
                      duration_s: float = 7200.0, seed: int = 42,
                      rate_per_hour: float = 4.0,
                      intensity: float = 0.9,
                      base_rate_per_hour: float = 12.0,
                      step_s: float = 60.0,
                      storm_duration_s: float = 1800.0,
                      plan: Optional[Dict[str, object]] = None,
                      ) -> Dict[str, object]:
    """Run both arms under one pinned plan; returns the A/B payload.

    ``predictor`` is the trained multi-horizon predictor the risk-aware
    arm installs on every node (its serving path is read-only, so one
    instance is safely shared across nodes and repeated runs).
    ``plan`` replays an explicit serialized fault plan; without it a
    storm plan (``rate_per_hour`` of background chaos plus one
    ``storm_duration_s`` crash loop per node) is drawn —
    deterministically — from ``seed``.
    """
    from ..resilience.chaos import FaultPlan
    from .scheduler import FilterScheduler, RISK_AWARE_WEIGHERS
    from .simulation import run_rack_experiment

    if plan is None:
        node_names = [f"node{i}" for i in range(n_nodes)]
        plan = storm_plan(
            node_names, duration_s, seed,
            background_rate_per_hour=rate_per_hour,
            intensity=intensity,
            storm_duration_s=storm_duration_s).as_dict()

    arm_setups = {
        "baseline": (None, None),
        "risk_aware": (FilterScheduler(weighers=RISK_AWARE_WEIGHERS),
                       predictor),
    }
    arms: Dict[str, Dict[str, object]] = {}
    for arm in ("baseline", "risk_aware"):
        scheduler, arm_predictor = arm_setups[arm]
        experiment = run_rack_experiment(
            n_nodes=n_nodes, duration_s=duration_s, seed=seed,
            proactive_migration=True,
            base_rate_per_hour=base_rate_per_hour, step_s=step_s,
            # Every arm rebuilds the plan from its dict form so one
            # arm's chaos engine cannot leak state into the next.
            fault_plan=FaultPlan.from_dict(plan),
            scheduler=scheduler, predictor=arm_predictor)
        cloud = experiment.cloud
        arms[arm] = {
            "availability": cloud.fleet_availability(),
            "sla_violations": cloud.violations_total(),
            "mttr_s": cloud.mttr_s(),
            "evacuations": cloud.stats.evacuations,
            "node_crashes": cloud.stats.node_crashes,
            "failovers": cloud.stats.failovers,
            "admitted": experiment.stats.admitted,
            "completed": cloud.stats.completed,
        }
    baseline, risk_aware = arms["baseline"], arms["risk_aware"]
    return {
        "config": {
            "n_nodes": n_nodes, "duration_s": duration_s, "seed": seed,
            "rate_per_hour": rate_per_hour, "intensity": intensity,
            "base_rate_per_hour": base_rate_per_hour, "step_s": step_s,
            "storm_duration_s": storm_duration_s,
        },
        "plan_faults": len(plan["specs"]),  # type: ignore[arg-type]
        "arms": arms,
        "deltas": {
            "availability": (risk_aware["availability"]
                             - baseline["availability"]),
            "sla_violations": (risk_aware["sla_violations"]
                               - baseline["sla_violations"]),
        },
    }
