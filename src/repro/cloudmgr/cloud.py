"""Cloud controller: rack-level orchestration (the OpenStack stand-in).

Ties the layer together: a rack of :class:`~repro.cloudmgr.node.ComputeNode`
instances, the filter/weigh scheduler, telemetry, SLA tracking, node
failure prediction and the migration manager.  The control loop each step:

1. advance every node (hypervisor ticks, availability accounting);
2. collect telemetry (node health, per-VM utilization);
3. assess each node's failure risk; with proactive mode on, evacuate
   at-risk nodes before they fall over;
4. detect crashed nodes, account VM downtime, and bring nodes back after
   the recovery delay (reactive path);
5. accrue SLA uptime/downtime per VM.

Proactive vs reactive is exactly the comparison of ablation A4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.clock import SimClock
from ..core.exceptions import ConfigurationError
from ..hypervisor.vm import VirtualMachine, VMState
from .failure_prediction import (
    RiskAssessment,
    ThresholdFailurePredictor,
)
from .migration import MigrationManager
from .node import ComputeNode
from .scheduler import FilterScheduler, Placement
from .sla import SLA, SLATracker
from .telemetry import NodeSample, TelemetryService, VMSample


@dataclass
class CloudStats:
    """Aggregate counters of one controller run."""

    steps: int = 0
    launched: int = 0
    completed: int = 0
    node_crashes: int = 0
    evacuations: int = 0
    energy_j: float = 0.0


class CloudController:
    """Manages a rack of UniServer nodes."""

    def __init__(self, clock: SimClock, nodes: Sequence[ComputeNode],
                 scheduler: Optional[FilterScheduler] = None,
                 predictor=None,
                 proactive_migration: bool = True,
                 node_recovery_s: float = 300.0,
                 vm_restart_penalty_s: float = 30.0) -> None:
        if not nodes:
            raise ConfigurationError("the rack needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("node names must be unique")
        self.clock = clock
        self.nodes: Dict[str, ComputeNode] = {n.name: n for n in nodes}
        self.scheduler = scheduler or FilterScheduler()
        self.predictor = predictor or ThresholdFailurePredictor()
        self.proactive_migration = proactive_migration
        self.node_recovery_s = node_recovery_s
        #: Service blackout charged per masked VM crash: the hypervisor
        #: restarts the guest transparently, but the guest still reboots.
        self.vm_restart_penalty_s = vm_restart_penalty_s
        self._seen_restarts: Dict[str, int] = {}
        self.telemetry = TelemetryService()
        self.tracker = SLATracker()
        self.migrations = MigrationManager(
            scheduler=self.scheduler, tracker=self.tracker,
        )
        self.stats = CloudStats()
        #: Every placement decision, in order — the scheduling trace that
        #: the determinism tests compare bit-for-bit across runs.
        self.placement_log: List[Placement] = []
        self._vm_homes: Dict[str, str] = {}
        self._down_since: Dict[str, float] = {}
        self._last_energy: Dict[str, float] = {
            n.name: 0.0 for n in nodes
        }

    # -- placement --------------------------------------------------------------

    def node_list(self) -> List[ComputeNode]:
        """All registered compute nodes."""
        return list(self.nodes.values())

    def launch(self, vm: VirtualMachine, sla: SLA) -> Placement:
        """Admit a VM under an SLA: schedule, place, start tracking."""
        from ..hypervisor.qos import requirement_from_sla

        placement = self.scheduler.schedule(self.node_list(), vm, sla)
        node = self.nodes[placement.node]
        node.hypervisor.create_vm(vm)
        node.qos.register(vm.name, requirement_from_sla(sla))
        self.tracker.register(vm.name, sla)
        self._vm_homes[vm.name] = placement.node
        self.stats.launched += 1
        self.placement_log.append(placement)
        node.runtime.metrics.inc("cloudmgr.scheduler.placements")
        return placement

    def locate(self, vm_name: str) -> ComputeNode:
        """The node currently hosting a VM."""
        for node in self.nodes.values():
            try:
                node.hypervisor.vm(vm_name)
                return node
            except KeyError:
                continue
        raise KeyError(f"VM {vm_name!r} is not placed on any node")

    # -- the control loop -----------------------------------------------------------

    def _collect_telemetry(self, node: ComputeNode) -> None:
        metrics = node.metrics()
        recent_ce = node.hypervisor.stats.correctable_errors
        self.telemetry.record_node(NodeSample(
            timestamp=self.clock.now, node=node.name,
            utilization=metrics.utilization, power_w=metrics.power_w,
            reliability=metrics.reliability,
            correctable_errors=recent_ce,
            temperature_c=node.platform.chip.thermal.temperature_c,
        ))
        for vm in node.hypervisor.active_vms():
            dt = max(node.hypervisor.config.tick_s, 1e-9)
            self.telemetry.record_vm(VMSample(
                timestamp=self.clock.now, vm_name=vm.name, node=node.name,
                cpu_utilization=vm.workload.profile.activity_factor,
                memory_mb=vm.memory_usage_mb(),
                progress_rate=vm.progress / max(self.clock.now, dt),
            ))

    def _handle_risk(self, node: ComputeNode) -> None:
        if node.hypervisor.crashed or not node.hypervisor.active_vms():
            return
        assessment: RiskAssessment = self.predictor.assess(
            node, self.telemetry)
        if assessment.at_risk and self.proactive_migration:
            others = [n for n in self.node_list()
                      if n.name != node.name and not n.hypervisor.crashed]
            moved = self.migrations.evacuate(
                node, others, self.tracker, proactive=True)
            if moved:
                self.stats.evacuations += 1
                node.runtime.metrics.inc("cloudmgr.migration.evacuations")
                for record in moved:
                    self._vm_homes[record.vm_name] = record.destination
                    self.nodes[record.destination].runtime.metrics.inc(
                        "cloudmgr.migration.vms_received")

    def _handle_crashes(self, node: ComputeNode, dt_s: float) -> None:
        if node.hypervisor.crashed:
            if node.name not in self._down_since:
                self._down_since[node.name] = self.clock.now
                self.stats.node_crashes += 1
                node.runtime.metrics.inc("cloudmgr.node.crashes")
            for vm in node.hypervisor.vms:
                self.tracker.account(vm.name, dt_s, up=False)
            if (self.clock.now - self._down_since[node.name]
                    >= self.node_recovery_s):
                node.recover()
                del self._down_since[node.name]
                node.runtime.metrics.inc("cloudmgr.node.recoveries")

    def step(self, dt_s: float = 1.0) -> None:
        """One control-loop iteration over the whole rack."""
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        self.stats.steps += 1
        for node in self.node_list():
            node.step(dt_s)
            energy = node.hypervisor.stats.energy_j
            self.stats.energy_j += energy - self._last_energy[node.name]
            self._last_energy[node.name] = energy
            self._collect_telemetry(node)
            self._handle_crashes(node, dt_s)
            if not node.hypervisor.crashed:
                self._handle_risk(node)
                for vm in node.hypervisor.vms:
                    if vm.name not in self.tracker.tracked_vms():
                        continue
                    if vm.state is VMState.COMPLETED:
                        # A finished VM is a success, not downtime.
                        self.tracker.account(vm.name, dt_s, up=True)
                        self.stats.completed += 1
                        node.hypervisor.destroy_vm(vm.name)
                        node.qos.unregister(vm.name)
                        self._vm_homes.pop(vm.name, None)
                        continue
                    up = vm.state in (VMState.RUNNING, VMState.MIGRATING)
                    self.tracker.account(vm.name, dt_s, up=up)
                    new_restarts = vm.restarts - self._seen_restarts.get(
                        vm.name, 0)
                    if new_restarts > 0:
                        self.tracker.account(
                            vm.name,
                            new_restarts * self.vm_restart_penalty_s,
                            up=False)
                        self._seen_restarts[vm.name] = vm.restarts

    def run(self, duration_s: float, dt_s: float = 1.0) -> None:
        """Run the control loop for a stretch of simulated time."""
        steps = int(duration_s / dt_s)
        for _ in range(steps):
            self.step(dt_s)
            self.clock.advance_by(dt_s)

    # -- summaries --------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, dict]:
        """Per-node cross-layer metrics registries, node-name sorted.

        Each value is one node's full registry dump — hardware fault
        counts, daemon activity, hypervisor operations and cloudmgr
        scheduling series side by side.  Deterministic under a fixed
        seed, so two same-seed runs snapshot bit-for-bit identically.
        """
        return {
            name: self.nodes[name].metrics_snapshot()
            for name in sorted(self.nodes)
        }

    def fleet_availability(self) -> float:
        """Mean achieved availability across tracked VMs."""
        summary = self.tracker.availability_summary()
        if not summary:
            return 1.0
        return sum(summary.values()) / len(summary)

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"cloud: {len(self.nodes)} nodes, "
                 f"{len(self.tracker.tracked_vms())} tracked VMs"]
        for node in self.node_list():
            lines.append("  " + node.metrics().describe())
        return "\n".join(lines)
