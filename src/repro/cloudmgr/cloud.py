"""Cloud controller: rack-level orchestration (the OpenStack stand-in).

Ties the layer together: a rack of :class:`~repro.cloudmgr.node.ComputeNode`
instances, the filter/weigh scheduler, telemetry, SLA tracking, node
failure prediction and the migration manager.  The control loop each step:

1. reconcile injected control-plane faults (when a chaos engine is
   attached) and advance every node;
2. ingest heartbeats into the :class:`~repro.resilience.health.NodeHealthView`
   — the controller's *only* source of node state;
3. reconcile beliefs: declare nodes SUSPECT/DOWN from missed heartbeats,
   fail workloads over off long-dead nodes, attempt recoveries through
   the per-node circuit breaker;
4. act on heartbeat-shipped risk verdicts; with proactive mode on,
   evacuate at-risk nodes (retried with backoff on mid-flight aborts);
5. accrue SLA uptime/downtime per VM and reap completed VMs.

Decision/actuation/measurement separation (the contract the chaos tests
enforce): every *decision* — placement, evacuation target, DOWN
declaration, failover — reads only the heartbeat-fed ``NodeHealthView``
beliefs.  Ground-truth node objects are touched to *actuate* decisions
(issue a create/migrate/reboot, any of which may fail) and to *measure*
outcomes (SLA accounting, MTTR episodes, completed-VM reaping), the
measurement loop being the experiment's oracle rather than part of the
controller's knowledge.

Proactive vs reactive is exactly the comparison of ablation A4; the
graceful-degradation knobs (suspicion ladder, retry policy, breaker,
failover) are the A/B of ``benchmarks/bench_chaos_resilience.py``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.clock import SimClock, step_count
from ..core.exceptions import ConfigurationError, SchedulingError
from ..hypervisor.vm import VirtualMachine, VMState
from ..resilience.chaos import ChaosEngine
from ..resilience.health import NodeHealthView, NodeStatus, NodeView
from ..resilience.policies import (
    BreakerState,
    CircuitBreaker,
    DegradationConfig,
)
from .migration import MigrationManager
from .node import ComputeNode
from .scheduler import FilterScheduler, Placement
from .sla import SLA, SLATracker
from .telemetry import TelemetryService


@dataclass
class ControllerStats:
    """Aggregate counters of one controller run."""

    steps: int = 0
    launched: int = 0
    completed: int = 0
    node_crashes: int = 0
    evacuations: int = 0
    energy_j: float = 0.0
    #: Degradation-machinery counters.
    recoveries: int = 0
    recovery_attempts: int = 0
    failed_recoveries: int = 0
    failovers: int = 0
    failed_failovers: int = 0
    migration_retries: int = 0
    breaker_trips: int = 0
    #: Recovery-then-recrash events within the flap window.
    flaps: int = 0
    heartbeats_received: int = 0
    heartbeats_missed: int = 0
    #: Closed VM service-restoration episodes (seconds each): from the
    #: first step a VM's service is down to the step it serves again.
    repair_times_s: List[float] = field(default_factory=list)


#: Backwards-compatible alias (pre-resilience name).
CloudStats = ControllerStats


@dataclass
class _RetryState:
    """Backoff bookkeeping for one node's pending evacuation retries."""

    attempt: int
    first_at: float
    next_at: float


class CloudController:
    """Manages a rack of UniServer nodes through heartbeat beliefs."""

    def __init__(self, clock: SimClock, nodes: Sequence[ComputeNode],
                 scheduler: Optional[FilterScheduler] = None,
                 predictor=None,
                 proactive_migration: bool = True,
                 node_recovery_s: float = 300.0,
                 vm_restart_penalty_s: float = 30.0,
                 degradation: Optional[DegradationConfig] = None,
                 chaos: Optional[ChaosEngine] = None,
                 control_seed: int = 0) -> None:
        if not nodes:
            raise ConfigurationError("the rack needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("node names must be unique")
        self.clock = clock
        self.nodes: Dict[str, ComputeNode] = {n.name: n for n in nodes}
        self.scheduler = scheduler or FilterScheduler()
        #: Optional override for every node's local risk predictor (the
        #: controller itself never assesses risk — nodes self-report).
        self.predictor = predictor
        self.proactive_migration = proactive_migration
        self.node_recovery_s = node_recovery_s
        #: Service blackout charged per masked VM crash: the hypervisor
        #: restarts the guest transparently, but the guest still reboots.
        self.vm_restart_penalty_s = vm_restart_penalty_s
        self.degradation = degradation or DegradationConfig.on()
        self.chaos = chaos
        self.health = NodeHealthView(
            suspect_after_missed=self.degradation.suspect_after_missed,
            down_after_missed=self.degradation.down_after_missed,
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        for node in nodes:
            self.health.register(node.name)
            self._breakers[node.name] = CircuitBreaker(
                failure_threshold=self.degradation.breaker_threshold,
                cooldown_s=self.degradation.breaker_cooldown_s,
            )
            # Arm the governor's stale-telemetry conservative fallback.
            node.governor.stale_fallback_s = \
                self.degradation.stale_info_fallback_s
            if predictor is not None:
                node.risk_predictor = predictor
        #: Controller-side jitter stream (retry backoff decorrelation).
        self._rng = np.random.default_rng(control_seed)
        self._seen_restarts: Dict[str, int] = {}
        self.telemetry = TelemetryService()
        self.tracker = SLATracker()
        self.migrations = MigrationManager(
            scheduler=self.scheduler, tracker=self.tracker,
        )
        if chaos is not None:
            self.migrations.failure_hook = (
                lambda source, destination:
                chaos.migration_should_fail(
                    source, destination, self.clock.now))
        self.stats = ControllerStats()
        #: Every placement decision, in order — the scheduling trace that
        #: the determinism tests compare bit-for-bit across runs.
        self.placement_log: List[Placement] = []
        self._vm_homes: Dict[str, str] = {}
        self._down_since: Dict[str, float] = {}
        self._next_recovery_at: Dict[str, float] = {}
        self._recovery_failed: set = set()
        self._vm_down_since: Dict[str, float] = {}
        self._probation_until: Dict[str, float] = {}
        self._evac_retry: Dict[str, _RetryState] = {}
        self._last_energy: Dict[str, float] = {
            n.name: 0.0 for n in nodes
        }
        # Bootstrap beliefs: one heartbeat round at construction time,
        # so admission can schedule before the first control step.
        self._ingest_heartbeats()

    # -- persistence ------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable controller state, nodes included.

        Dict-valued tables are saved in insertion order — iteration
        order is behaviour-affecting (reconcile order, energy
        accounting), so none of them may be sorted on the way out.
        """
        return {
            "nodes": {name: node.state_dict()
                      for name, node in self.nodes.items()},
            "health": self.health.state_dict(),
            "breakers": {name: breaker.state_dict()
                         for name, breaker in self._breakers.items()},
            "rng": self._rng.bit_generator.state,
            "seen_restarts": dict(self._seen_restarts),
            "telemetry": self.telemetry.state_dict(),
            "tracker": self.tracker.state_dict(),
            "migrations": self.migrations.state_dict(),
            "stats": asdict(self.stats),
            "placement_log": [asdict(p) for p in self.placement_log],
            "vm_homes": dict(self._vm_homes),
            "down_since": dict(self._down_since),
            "next_recovery_at": dict(self._next_recovery_at),
            "recovery_failed": sorted(self._recovery_failed),
            "vm_down_since": dict(self._vm_down_since),
            "probation_until": dict(self._probation_until),
            "evac_retry": {name: asdict(state)
                           for name, state in self._evac_retry.items()},
            "last_energy": dict(self._last_energy),
            "chaos": (self.chaos.state_dict()
                      if self.chaos is not None else None),
        }

    def load_state_dict(self, state: Dict[str, object],
                        vm_factory: Callable[[str], VirtualMachine]) -> None:
        """Restore the controller saved by :meth:`state_dict`.

        ``vm_factory`` rebuilds named VM shells for the per-node
        hypervisor restores.
        """
        for name, node_state in state["nodes"].items():  # type: ignore[union-attr]
            self.nodes[str(name)].load_state_dict(node_state, vm_factory)
        self.health.load_state_dict(state["health"])  # type: ignore[arg-type]
        for name, breaker_state in state["breakers"].items():  # type: ignore[union-attr]
            self._breakers[str(name)].load_state_dict(breaker_state)
        self._rng.bit_generator.state = state["rng"]
        self._seen_restarts = {str(k): int(v) for k, v
                               in state["seen_restarts"].items()}  # type: ignore[union-attr]
        self.telemetry.load_state_dict(state["telemetry"])  # type: ignore[arg-type]
        self.tracker.load_state_dict(state["tracker"])  # type: ignore[arg-type]
        self.migrations.load_state_dict(state["migrations"])  # type: ignore[arg-type]
        stats = dict(state["stats"])  # type: ignore[call-overload]
        stats["repair_times_s"] = [float(t)
                                   for t in stats["repair_times_s"]]
        self.stats = ControllerStats(**stats)
        self.placement_log = [Placement(**p)
                              for p in state["placement_log"]]  # type: ignore[union-attr]
        self._vm_homes = {str(k): str(v) for k, v
                          in state["vm_homes"].items()}  # type: ignore[union-attr]
        self._down_since = {str(k): float(v) for k, v
                            in state["down_since"].items()}  # type: ignore[union-attr]
        self._next_recovery_at = {
            str(k): float(v) for k, v
            in state["next_recovery_at"].items()}  # type: ignore[union-attr]
        self._recovery_failed = {str(n)
                                 for n in state["recovery_failed"]}  # type: ignore[union-attr]
        self._vm_down_since = {str(k): float(v) for k, v
                               in state["vm_down_since"].items()}  # type: ignore[union-attr]
        self._probation_until = {str(k): float(v) for k, v
                                 in state["probation_until"].items()}  # type: ignore[union-attr]
        self._evac_retry = {
            str(name): _RetryState(**retry) for name, retry
            in state["evac_retry"].items()}  # type: ignore[union-attr]
        self._last_energy = {str(k): float(v) for k, v
                             in state["last_energy"].items()}  # type: ignore[union-attr]
        if self.chaos is not None and state.get("chaos") is not None:
            self.chaos.load_state_dict(state["chaos"])  # type: ignore[arg-type]

    # -- placement --------------------------------------------------------------

    def node_list(self) -> List[ComputeNode]:
        """All registered compute nodes."""
        return list(self.nodes.values())

    def launch(self, vm: VirtualMachine, sla: SLA) -> Placement:
        """Admit a VM under an SLA: schedule, place, start tracking.

        Scheduling runs over the heartbeat beliefs; the placement is then
        actuated against the real node, and an actuation failure (the
        belief was stale or corrupted) surfaces as a scheduling error.
        """
        placement = self.scheduler.schedule(
            self.health.schedulable_views(), vm, sla)
        return self.place(vm, sla, placement)

    def place(self, vm: VirtualMachine, sla: SLA,
              placement: Placement) -> Placement:
        """Actuate an already-made placement decision on this controller.

        The decision half of :meth:`launch`; split out so a fleet-level
        router can schedule over every zone's views and hand the chosen
        zone only the actuation.
        """
        from ..hypervisor.qos import requirement_from_sla

        node = self.nodes[placement.node]
        try:
            node.hypervisor.create_vm(vm)
        except Exception as exc:
            raise SchedulingError(
                f"placement of {vm.name!r} on {node.name!r} failed: {exc}"
            ) from exc
        node.qos.register(vm.name, requirement_from_sla(sla))
        self.health.view(placement.node).reserve(
            vm.vcpus, vm.guest_os_mb + vm.workload.demand.memory_mb)
        self.tracker.register(vm.name, sla)
        self._vm_homes[vm.name] = placement.node
        self.stats.launched += 1
        self.placement_log.append(placement)
        node.runtime.metrics.inc("cloudmgr.scheduler.placements")
        return placement

    def locate(self, vm_name: str) -> ComputeNode:
        """The node currently hosting a VM."""
        for node in self.nodes.values():
            try:
                node.hypervisor.vm(vm_name)
                return node
            except KeyError:
                continue
        raise KeyError(f"VM {vm_name!r} is not placed on any node")

    def forget_vm(self, vm_name: str) -> None:
        """Drop all per-VM bookkeeping for a departed/destroyed VM."""
        self._vm_homes.pop(vm_name, None)
        self._seen_restarts.pop(vm_name, None)
        self._vm_down_since.pop(vm_name, None)

    # -- the control loop -----------------------------------------------------------

    def _ingest_heartbeats(self) -> None:
        """One heartbeat round: update beliefs, feed controller telemetry."""
        now = self.clock.now
        for node in self.node_list():
            beat = node.heartbeat()
            if beat is not None and self.chaos is not None:
                beat = self.chaos.filter_heartbeat(node, beat, now)
            if beat is None:
                self.stats.heartbeats_missed += 1
                self.health.note_missed(node.name)
                continue
            self.stats.heartbeats_received += 1
            self.health.observe(beat)
            self.telemetry.record_node(beat.sample)
            for vm_sample in beat.vm_samples:
                self.telemetry.record_vm(vm_sample)

    def _note_breaker_failure(self, node: ComputeNode,
                              breaker: CircuitBreaker) -> None:
        """Record a recovery failure; quarantine on a fresh trip."""
        trips_before = breaker.trips
        if breaker.record_failure(self.clock.now) is BreakerState.OPEN:
            self.health.quarantine(node.name)
            if breaker.trips > trips_before:
                self.stats.breaker_trips += 1
                node.runtime.metrics.inc("resilience.breaker.trips")

    def _reconcile_node(self, view: NodeView) -> None:
        """Drive one node's crash/recovery machinery from beliefs."""
        now = self.clock.now
        name = view.name
        node = self.nodes[name]
        breaker = self._breakers[name]
        if view.state in (NodeStatus.HEALTHY, NodeStatus.SUSPECT):
            # Believed up (a heartbeat arrived): close any down episode
            # and, after a clean flap window, reward the breaker.
            self._down_since.pop(name, None)
            self._next_recovery_at.pop(name, None)
            self._recovery_failed.discard(name)
            if view.state is NodeStatus.HEALTHY \
                    and name in self._probation_until \
                    and now >= self._probation_until[name]:
                breaker.record_success()
                del self._probation_until[name]
            return

        # DOWN or QUARANTINED.
        if name not in self._down_since:
            # Best estimate of the failure instant is the last evidence
            # of life, not the (ladder-delayed) declaration time.
            seen = view.last_seen_s
            self._down_since[name] = seen if seen is not None else now
            self._next_recovery_at[name] = (
                self._down_since[name] + self.node_recovery_s)
            self.stats.node_crashes += 1
            node.runtime.metrics.inc("cloudmgr.node.crashes")
            if name in self._probation_until:
                # The recovery did not stick: a flap, which the breaker
                # counts as a failure of the whole recovery operation.
                self.stats.flaps += 1
                node.runtime.metrics.inc("resilience.flaps")
                del self._probation_until[name]
                self._note_breaker_failure(node, breaker)
        down_for = now - self._down_since[name]

        # Degradation rung 5, the escalation: fail workloads over only
        # once recovery has demonstrably not worked — an attempt failed,
        # or the breaker quarantined the node.  (Failing over on silence
        # alone would cold-restart VMs off merely partitioned nodes.)
        failover_after = self.degradation.failover_after_s
        if failover_after is not None and down_for >= failover_after \
                and (name in self._recovery_failed
                     or view.state is NodeStatus.QUARANTINED):
            self._failover_vms(node)

        if now >= self._next_recovery_at[name] and breaker.allows(now):
            if view.state is NodeStatus.QUARANTINED:
                # The cooldown elapsed: this attempt is the breaker's
                # HALF_OPEN probe.
                self.health.release(name)
            self.stats.recovery_attempts += 1
            node.runtime.metrics.inc("cloudmgr.node.recovery_attempts")
            if node.recover():
                self.stats.recoveries += 1
                node.runtime.metrics.inc("cloudmgr.node.recoveries")
                # Belief stays DOWN until a heartbeat confirms; the
                # breaker is rewarded only after a flap-free window.
                self._probation_until[name] = (
                    now + self.degradation.flap_window_s)
            else:
                self.stats.failed_recoveries += 1
                node.runtime.metrics.inc("cloudmgr.node.failed_recoveries")
                self._recovery_failed.add(name)
                # Any earlier recovery's probation is void now — leaving
                # it would let a stale expiry reward the breaker right
                # after this failure quarantined the node.
                self._probation_until.pop(name, None)
                self._note_breaker_failure(node, breaker)
            # Either way, wait a full recovery period before retrying.
            self._next_recovery_at[name] = now + self.node_recovery_s

    def _failover_vms(self, source: ComputeNode) -> None:
        """Cold-restart a dead node's workloads on believed-healthy nodes.

        The degradation ladder's rung 5: rather than letting service
        wait out a stuck or crash-looping host recovery, VMs are failed
        over — restarted from scratch elsewhere, losing progress but
        restoring service instead of riding further recovery attempts.
        """
        for vm in list(source.hypervisor.vms):
            if vm.name not in self.tracker.tracked_vms():
                continue
            sla = self.tracker.sla_for(vm.name)
            # A node still on post-recovery probation is unproven — do
            # not fail over onto what may be the next crash loop.
            targets = [v for v in self.health.schedulable_views()
                       if v.name != source.name
                       and v.name not in self._probation_until]
            try:
                placement = self.scheduler.schedule(targets, vm, sla)
            except SchedulingError:
                self.stats.failed_failovers += 1
                continue
            destination = self.nodes[placement.node]
            if not destination.can_host(vm):
                # Actuation bounced: the belief was stale.
                self.stats.failed_failovers += 1
                continue
            source.hypervisor.detach_vm(vm.name)
            requirement = source.qos.requirement_for(vm.name)
            source.qos.unregister(vm.name)
            if vm.is_active:
                vm.fail()
            if vm.state is VMState.FAILED:
                vm.restart()
            vm.state = VMState.PENDING
            destination.hypervisor.create_vm(vm)
            if requirement is not None:
                destination.qos.register(vm.name, requirement)
            self.health.view(destination.name).reserve(
                vm.vcpus, vm.guest_os_mb + vm.workload.demand.memory_mb)
            self._vm_homes[vm.name] = destination.name
            self.stats.failovers += 1
            source.runtime.metrics.inc("resilience.failovers")
            destination.runtime.metrics.inc(
                "cloudmgr.migration.vms_received")

    def _handle_risk(self) -> None:
        """Proactive evacuation from heartbeat-shipped risk verdicts.

        A node whose Predictor daemon is down ships no verdict — the
        controller simply cannot act proactively for it (degradation
        rung: prediction lost, reactive path still covers crashes).
        """
        now = self.clock.now
        urgent: List[NodeView] = []
        for view in self.health.schedulable_views():
            beat = view.last
            if beat is None or beat.risk is None or not beat.risk.at_risk:
                continue
            if not beat.active_vms:
                continue
            urgent.append(view)
        # Nearest-horizon risk first: a node predicted to fail within
        # 15 minutes is drained before one flagged at the 4 h horizon.
        # Nodes without a horizon report fall back to the scalar verdict
        # (higher risk = treated as nearer); name breaks ties so the
        # order — and thus every downstream placement — is deterministic.
        def evacuation_priority(view: NodeView):
            beat = view.last
            report = beat.horizon_report
            if report is not None:
                horizon_s, neg_probability = report.urgency()
            else:
                horizon_s, neg_probability = float("inf"), -beat.risk.risk
            return (horizon_s, neg_probability, view.name)

        for view in sorted(urgent, key=evacuation_priority):
            pending = self._evac_retry.get(view.name)
            if pending is not None and now < pending.next_at:
                continue
            if pending is not None:
                self.stats.migration_retries += 1
            self._attempt_evacuation(view.name)

    def _attempt_evacuation(self, name: str) -> None:
        """One evacuation attempt; schedules a backoff retry on aborts."""
        now = self.clock.now
        node = self.nodes[name]
        peers = [v for v in self.health.schedulable_views()
                 if v.name != name]
        # Risk-aware targeting: never evacuate onto a node whose own
        # heartbeat says it is at risk — that is migration ping-pong.
        # If *every* peer is flagged, fall back to the full set rather
        # than strand the VMs on the node predicted to fail first.
        targets = [v for v in peers
                   if v.last is None or v.last.risk is None
                   or not v.last.risk.at_risk]
        if not targets:
            targets = peers
        attempted_from = len(self.migrations.records)
        moved = self.migrations.evacuate(
            node, targets, self.tracker, proactive=True,
            resolve=lambda destination: self.nodes[destination])
        failed = [r for r in self.migrations.records[attempted_from:]
                  if not r.succeeded]
        if moved:
            self.stats.evacuations += 1
            node.runtime.metrics.inc("cloudmgr.migration.evacuations")
            for record in moved:
                self._vm_homes[record.vm_name] = record.destination
                self.nodes[record.destination].runtime.metrics.inc(
                    "cloudmgr.migration.vms_received")
        if not failed:
            self._evac_retry.pop(name, None)
            return
        node.runtime.metrics.inc(
            "resilience.migration.aborts", len(failed))
        retry = self.degradation.retry
        state = self._evac_retry.get(name) or _RetryState(
            attempt=0, first_at=now, next_at=now)
        attempt = state.attempt + 1
        if retry.should_retry(attempt, state.first_at, now):
            self._evac_retry[name] = _RetryState(
                attempt=attempt, first_at=state.first_at,
                next_at=now + retry.delay_s(attempt, self._rng))
        else:
            # Budget exhausted: stop hammering the control path.
            self._evac_retry.pop(name, None)

    def _account_service(self, dt_s: float) -> None:
        """SLA/MTTR accounting and completed-VM reaping.

        This is the *measurement oracle*: it reads ground truth on
        purpose, because achieved availability is a property of the
        world, not of the controller's beliefs.  Nothing computed here
        feeds back into scheduling decisions.
        """
        now = self.clock.now
        for node in self.node_list():
            if node.hypervisor.crashed:
                for vm in node.hypervisor.vms:
                    if vm.name not in self.tracker.tracked_vms():
                        continue
                    self.tracker.account(vm.name, dt_s, up=False)
                    self._vm_down_since.setdefault(vm.name, now)
                continue
            for vm in node.hypervisor.vms:
                if vm.name not in self.tracker.tracked_vms():
                    continue
                if vm.state is VMState.COMPLETED:
                    # A finished VM is a success, not downtime.
                    self.tracker.account(vm.name, dt_s, up=True)
                    self.stats.completed += 1
                    node.hypervisor.destroy_vm(vm.name)
                    node.qos.unregister(vm.name)
                    self.forget_vm(vm.name)
                    continue
                up = vm.state in (VMState.RUNNING, VMState.MIGRATING)
                self.tracker.account(vm.name, dt_s, up=up)
                if up and vm.name in self._vm_down_since:
                    # Service restored: close the repair episode.
                    self.stats.repair_times_s.append(
                        now - self._vm_down_since.pop(vm.name))
                new_restarts = vm.restarts - self._seen_restarts.get(
                    vm.name, 0)
                if new_restarts > 0:
                    self.tracker.account(
                        vm.name,
                        new_restarts * self.vm_restart_penalty_s,
                        up=False)
                    self._seen_restarts[vm.name] = vm.restarts

    def step(self, dt_s: float = 1.0) -> None:
        """One control-loop iteration over the whole rack."""
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        self.stats.steps += 1
        if self.chaos is not None:
            self.chaos.apply(self.node_list(), self.clock.now)
        for node in self.node_list():
            node.step(dt_s)
            energy = node.hypervisor.stats.energy_j
            self.stats.energy_j += energy - self._last_energy[node.name]
            self._last_energy[node.name] = energy
        self._ingest_heartbeats()
        for view in self.health.views():
            self._reconcile_node(view)
        if self.proactive_migration:
            self._handle_risk()
        self._account_service(dt_s)

    def run(self, duration_s: float, dt_s: float = 1.0) -> None:
        """Run the control loop for a stretch of simulated time."""
        for _ in range(step_count(duration_s, dt_s)):
            self.step(dt_s)
            self.clock.advance_by(dt_s)

    # -- summaries --------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, dict]:
        """Per-node cross-layer metrics registries, node-name sorted.

        Each value is one node's full registry dump — hardware fault
        counts, daemon activity, hypervisor operations, cloudmgr
        scheduling and resilience series side by side.  Deterministic
        under a fixed seed, so two same-seed runs snapshot bit-for-bit
        identically.
        """
        return {
            name: self.nodes[name].metrics_snapshot()
            for name in sorted(self.nodes)
        }

    def availability_summary(self) -> Dict[str, float]:
        """Achieved availability per VM (tracker passthrough, giving
        zoned and monolithic controllers one report-facing surface)."""
        return self.tracker.availability_summary()

    def violations_total(self) -> int:
        """Summed SLA violations across tracked VMs."""
        return self.tracker.violations_total()

    def fleet_availability(self) -> float:
        """Mean achieved availability across tracked VMs."""
        summary = self.availability_summary()
        if not summary:
            return 1.0
        return sum(summary.values()) / len(summary)

    def repair_episodes(self) -> List[float]:
        """Closed repair episodes plus any still-open ones measured up
        to the current instant, so a run that ends mid-outage does not
        under-report."""
        episodes = list(self.stats.repair_times_s)
        episodes.extend(self.clock.now - since
                        for since in self._vm_down_since.values())
        return episodes

    def mttr_s(self) -> Optional[float]:
        """Mean VM service-restoration time (None without any outage)."""
        episodes = self.repair_episodes()
        if not episodes:
            return None
        return sum(episodes) / len(episodes)

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"cloud: {len(self.nodes)} nodes, "
                 f"{len(self.tracker.tracked_vms())} tracked VMs"]
        for node in self.node_list():
            lines.append("  " + node.metrics().describe())
        lines.append("beliefs:")
        for view in self.health.views():
            lines.append("  " + view.describe())
        return "\n".join(lines)
