"""OpenStack-like resource management layer (paper Section 4.B).

Rack-level orchestration with UniServer's additions: a node reliability
metric next to availability/utilization/energy, fine-grained VM
telemetry, reliability-aware filter/weigh scheduling, integrated node
failure prediction and proactive live migration.
"""

from .cloud import CloudController, CloudStats, ControllerStats
from .failure_prediction import (
    DomainRisk,
    HARVEST_FEATURES,
    HORIZONS,
    HorizonRisk,
    HorizonRiskReport,
    LearnedFailurePredictor,
    MultiHorizonPredictor,
    NODE_FEATURES,
    RiskAssessment,
    ThresholdFailurePredictor,
    node_features,
    predictor_from_state,
    predictor_state,
    sample_features,
    score_harvest,
    train_from_observations,
)
from .migration import MigrationCostModel, MigrationManager, MigrationRecord
from .node import ComputeNode, NodeMetrics, build_rack
from .prediction_ab import run_prediction_ab, storm_plan
from .scheduler import (
    DEFAULT_FILTERS,
    DEFAULT_WEIGHERS,
    FilterScheduler,
    Placement,
    RISK_AWARE_WEIGHERS,
    RoundRobinScheduler,
    TIER_AWARE_WEIGHERS,
    WeigherSpec,
    balance_weigher,
    capacity_filter,
    energy_weigher,
    health_filter,
    reliability_weigher,
    risk_aware_weigher,
    sla_performance_filter,
    tier_capacity_weigher,
    sla_reliability_filter,
)
from .sla import (
    BRONZE,
    DEFAULT_TIERS,
    GOLD,
    SILVER,
    SLA,
    SLARecord,
    SLATracker,
)
from .telemetry import (
    NodeSample,
    RollingWindow,
    TelemetryService,
    VMSample,
)

from .simulation import (
    RackExperiment,
    SimulationStats,
    TIER_MAP,
    TraceDrivenSimulation,
    run_rack_experiment,
    run_trace_experiment,
)

__all__ = [
    "RackExperiment", "SimulationStats", "TIER_MAP",
    "TraceDrivenSimulation", "run_rack_experiment", "run_trace_experiment",
    "CloudController", "CloudStats", "ControllerStats",
    "DomainRisk", "HARVEST_FEATURES", "HORIZONS", "HorizonRisk",
    "HorizonRiskReport", "LearnedFailurePredictor",
    "MultiHorizonPredictor", "NODE_FEATURES", "RiskAssessment",
    "ThresholdFailurePredictor", "node_features", "predictor_from_state",
    "predictor_state", "sample_features", "score_harvest",
    "train_from_observations",
    "MigrationCostModel", "MigrationManager", "MigrationRecord",
    "ComputeNode", "NodeMetrics", "build_rack", "run_prediction_ab",
    "storm_plan",
    "DEFAULT_FILTERS", "DEFAULT_WEIGHERS", "FilterScheduler", "Placement",
    "RISK_AWARE_WEIGHERS", "RoundRobinScheduler", "WeigherSpec",
    "TIER_AWARE_WEIGHERS", "tier_capacity_weigher",
    "balance_weigher", "capacity_filter", "energy_weigher",
    "health_filter", "reliability_weigher", "risk_aware_weigher",
    "sla_performance_filter", "sla_reliability_filter",
    "BRONZE", "DEFAULT_TIERS", "GOLD", "SILVER", "SLA", "SLARecord",
    "SLATracker",
    "NodeSample", "RollingWindow", "TelemetryService", "VMSample",
]
