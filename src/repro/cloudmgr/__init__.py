"""OpenStack-like resource management layer (paper Section 4.B).

Rack-level orchestration with UniServer's additions: a node reliability
metric next to availability/utilization/energy, fine-grained VM
telemetry, reliability-aware filter/weigh scheduling, integrated node
failure prediction and proactive live migration.
"""

from .cloud import CloudController, CloudStats, ControllerStats
from .failure_prediction import (
    LearnedFailurePredictor,
    NODE_FEATURES,
    RiskAssessment,
    ThresholdFailurePredictor,
    node_features,
)
from .migration import MigrationCostModel, MigrationManager, MigrationRecord
from .node import ComputeNode, NodeMetrics, build_rack
from .scheduler import (
    DEFAULT_FILTERS,
    DEFAULT_WEIGHERS,
    FilterScheduler,
    Placement,
    RoundRobinScheduler,
    WeigherSpec,
    balance_weigher,
    capacity_filter,
    energy_weigher,
    health_filter,
    reliability_weigher,
    sla_performance_filter,
    sla_reliability_filter,
)
from .sla import (
    BRONZE,
    DEFAULT_TIERS,
    GOLD,
    SILVER,
    SLA,
    SLARecord,
    SLATracker,
)
from .telemetry import (
    NodeSample,
    RollingWindow,
    TelemetryService,
    VMSample,
)

from .simulation import (
    RackExperiment,
    SimulationStats,
    TIER_MAP,
    TraceDrivenSimulation,
    run_rack_experiment,
    run_trace_experiment,
)

__all__ = [
    "RackExperiment", "SimulationStats", "TIER_MAP",
    "TraceDrivenSimulation", "run_rack_experiment", "run_trace_experiment",
    "CloudController", "CloudStats", "ControllerStats",
    "LearnedFailurePredictor", "NODE_FEATURES", "RiskAssessment",
    "ThresholdFailurePredictor", "node_features",
    "MigrationCostModel", "MigrationManager", "MigrationRecord",
    "ComputeNode", "NodeMetrics", "build_rack",
    "DEFAULT_FILTERS", "DEFAULT_WEIGHERS", "FilterScheduler", "Placement",
    "RoundRobinScheduler", "WeigherSpec", "balance_weigher",
    "capacity_filter", "energy_weigher", "health_filter",
    "reliability_weigher", "sla_performance_filter",
    "sla_reliability_filter",
    "BRONZE", "DEFAULT_TIERS", "GOLD", "SILVER", "SLA", "SLARecord",
    "SLATracker",
    "NodeSample", "RollingWindow", "TelemetryService", "VMSample",
]
