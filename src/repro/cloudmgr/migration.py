"""Live and proactive VM migration.

Paper Section 5.B: the integrated fault-tolerance component must
"proactively migrate the running workloads on the healthy nodes, which is
critical to sustain high-availability especially for high value and
user-facing workloads".

Live migration follows the classical pre-copy cost model: downtime and
total migration time scale with the VM's resident memory and the page
dirty rate; the VM loses a slice of progress while paused.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.exceptions import ConfigurationError, MigrationError
from ..hypervisor.vm import VirtualMachine, VMState
from .node import ComputeNode
from .scheduler import FilterScheduler, Placement
from .sla import SLA, SLATracker


@dataclass(frozen=True)
class MigrationCostModel:
    """Pre-copy live-migration costs."""

    #: Effective migration bandwidth (MB/s) between nodes.
    bandwidth_mb_s: float = 1000.0
    #: Fraction of memory re-dirtied per pre-copy round.
    dirty_fraction: float = 0.15
    #: Pre-copy rounds before the stop-and-copy phase.
    precopy_rounds: int = 3

    def __post_init__(self) -> None:
        if self.bandwidth_mb_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not 0 <= self.dirty_fraction < 1:
            raise ConfigurationError("dirty fraction must be in [0, 1)")
        if self.precopy_rounds < 0:
            raise ConfigurationError("precopy rounds must be >= 0")

    def total_time_s(self, memory_mb: float) -> float:
        """Wall time of the whole migration."""
        if memory_mb < 0:
            raise ConfigurationError("memory must be non-negative")
        transferred = memory_mb
        remaining = memory_mb
        for _ in range(self.precopy_rounds):
            remaining = remaining * self.dirty_fraction
            transferred += remaining
        return transferred / self.bandwidth_mb_s

    def downtime_s(self, memory_mb: float) -> float:
        """Stop-and-copy blackout: the final dirty set's transfer time."""
        remaining = memory_mb * self.dirty_fraction ** self.precopy_rounds
        return remaining / self.bandwidth_mb_s


@dataclass(frozen=True)
class MigrationRecord:
    """One completed (or failed) migration."""

    vm_name: str
    source: str
    destination: str
    memory_mb: float
    total_time_s: float
    downtime_s: float
    proactive: bool
    #: False for a mid-flight abort: the VM stayed on the source but
    #: the pre-copy blackout was still paid.
    succeeded: bool = True


class MigrationManager:
    """Executes live migrations and proactive evacuations."""

    def __init__(self, scheduler: Optional[FilterScheduler] = None,
                 cost_model: Optional[MigrationCostModel] = None,
                 tracker: Optional[SLATracker] = None) -> None:
        self.scheduler = scheduler or FilterScheduler()
        self.cost_model = cost_model or MigrationCostModel()
        self.tracker = tracker
        self.records: List[MigrationRecord] = []
        #: Chaos interception point: called with (source, destination
        #: name) right before the cut-over; returning True aborts the
        #: migration mid-flight (the VM stays put, the blackout is paid).
        self.failure_hook: Optional[
            Callable[[ComputeNode, str], bool]] = None

    def state_dict(self) -> Dict[str, object]:
        """Serializable migration history."""
        return {"records": [asdict(r) for r in self.records]}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the history saved by :meth:`state_dict`."""
        self.records = [MigrationRecord(**r)
                        for r in state["records"]]  # type: ignore[union-attr]

    def migrate(self, vm_name: str, source: ComputeNode,
                destination: ComputeNode, sla: SLA,
                proactive: bool = False) -> MigrationRecord:
        """Live-migrate one VM between two nodes."""
        if source.name == destination.name:
            raise MigrationError("source and destination are the same node")
        vm = source.hypervisor.vm(vm_name)
        if not vm.is_active:
            raise MigrationError(
                f"VM {vm_name!r} is not active (state {vm.state.value})"
            )
        if not destination.can_host(vm):
            raise MigrationError(
                f"destination {destination.name!r} cannot host {vm_name!r}"
            )
        memory_mb = vm.memory_usage_mb()
        if self.failure_hook is not None \
                and self.failure_hook(source, destination.name):
            record = MigrationRecord(
                vm_name=vm_name, source=source.name,
                destination=destination.name, memory_mb=memory_mb,
                total_time_s=self.cost_model.total_time_s(memory_mb),
                downtime_s=self.cost_model.downtime_s(memory_mb),
                proactive=proactive, succeeded=False,
            )
            self.records.append(record)
            if self.tracker is not None:
                # The aborted pre-copy still cost the blackout window.
                self.tracker.account(vm_name, record.downtime_s, up=False)
            raise MigrationError(
                f"migration of {vm_name!r} to {destination.name!r} "
                "aborted mid-flight")
        was_running = vm.state is VMState.RUNNING
        vm.state = VMState.MIGRATING
        detached = source.hypervisor.detach_vm(vm_name)
        detached.state = VMState.PENDING
        destination.hypervisor.create_vm(detached)
        if not was_running:
            detached.pause()
        # The VM's QoS guarantee travels with it.
        if hasattr(source, "qos") and hasattr(destination, "qos"):
            requirement = source.qos.requirement_for(vm_name)
            source.qos.unregister(vm_name)
            if requirement is not None:
                destination.qos.register(vm_name, requirement)

        record = MigrationRecord(
            vm_name=vm_name, source=source.name,
            destination=destination.name, memory_mb=memory_mb,
            total_time_s=self.cost_model.total_time_s(memory_mb),
            downtime_s=self.cost_model.downtime_s(memory_mb),
            proactive=proactive,
        )
        self.records.append(record)
        if self.tracker is not None:
            self.tracker.note_migration(vm_name)
            self.tracker.account(vm_name, record.downtime_s, up=False)
        return record

    def evacuate(self, source: ComputeNode, others: Sequence,
                 tracker: SLATracker, proactive: bool = True,
                 resolve: Optional[Callable[[str], ComputeNode]] = None,
                 ) -> List[MigrationRecord]:
        """Move every active VM off a (predicted-failing) node.

        VMs migrate in descending SLA priority — "high value and
        user-facing workloads" first.  VMs with no feasible destination
        stay put (and ride the node down if the prediction was right);
        a migration that aborts mid-flight likewise leaves its VM in
        place, recorded as a failed attempt for the caller's retry
        policy.

        ``others`` may be real nodes or the controller's ``NodeView``
        beliefs (they duck-type the scheduling surface); with views,
        pass ``resolve`` to map the chosen node name back to the real
        node the migration is actually executed against.
        """
        vms = sorted(
            source.hypervisor.active_vms(),
            key=lambda vm: tracker.sla_for(vm.name).priority,
            reverse=True,
        )
        moved: List[MigrationRecord] = []
        for vm in vms:
            sla = tracker.sla_for(vm.name)
            candidates = [n for n in others if n.name != source.name]
            try:
                placement = self.scheduler.schedule(candidates, vm, sla)
            except Exception:
                continue
            destination = (resolve(placement.node) if resolve is not None
                           else next(n for n in candidates
                                     if n.name == placement.node))
            try:
                moved.append(self.migrate(
                    vm.name, source, destination, sla, proactive=proactive,
                ))
            except MigrationError:
                continue
        return moved

    def proactive_migrations(self) -> int:
        """Number of proactive migrations executed."""
        return sum(1 for r in self.records if r.proactive)

    def success_rate(self) -> float:
        """Fraction of attempted migrations that completed (1.0 if none)."""
        if not self.records:
            return 1.0
        return sum(1 for r in self.records if r.succeeded) \
            / len(self.records)

    def total_downtime_s(self) -> float:
        """Summed migration blackout time (seconds)."""
        return sum(r.downtime_s for r in self.records)
