"""Service-level agreements and their tracking.

Paper Section 2: "The optimization of operations at the EOP in UniServer
is guided by the system requirements of the end-user for each VM, which
are typically communicated to the Cloud provider through Service Level
Agreements (SLAs)."  An SLA bounds how aggressively the platform may relax
margins under a VM: a gold-tier VM stays at nominal, a bronze-tier VM
tolerates the deepest characterised EOPs.

:class:`SLATracker` does the bookkeeping the scheduler and the TCO tool
consume: per-VM uptime, downtime, violations and achieved availability.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class SLA:
    """One service-level agreement tier.

    Parameters
    ----------
    availability_target:
        Required fraction of time the VM is up (e.g. 0.999).
    failure_budget:
        Per-run hardware failure probability the VM tolerates; the
        hypervisor only adopts EOPs within this budget for the node.
    min_frequency_fraction:
        Performance floor: the scheduler will not place the VM on a node
        whose cores run below this fraction of nominal frequency.
    priority:
        Higher priorities win contended placements and migrate first.
    """

    name: str
    availability_target: float
    failure_budget: float
    min_frequency_fraction: float = 0.5
    priority: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target <= 1.0:
            raise ConfigurationError("availability target must be in (0, 1]")
        if not 0.0 < self.failure_budget <= 1.0:
            raise ConfigurationError("failure budget must be in (0, 1]")
        if not 0.0 < self.min_frequency_fraction <= 1.0:
            raise ConfigurationError(
                "min_frequency_fraction must be in (0, 1]"
            )


#: Conservative tier: user-facing, high-value workloads.  Nominal only.
GOLD = SLA("gold", availability_target=0.9999, failure_budget=1e-7,
           min_frequency_fraction=0.95, priority=2)

#: Balanced tier: modest EOPs allowed.
SILVER = SLA("silver", availability_target=0.999, failure_budget=1e-5,
             min_frequency_fraction=0.75, priority=1)

#: Aggressive tier: batch/background work chasing the deepest savings.
BRONZE = SLA("bronze", availability_target=0.99, failure_budget=1e-3,
             min_frequency_fraction=0.5, priority=0)

DEFAULT_TIERS = (GOLD, SILVER, BRONZE)


@dataclass
class SLARecord:
    """Accumulated service history for one VM."""

    sla: SLA
    uptime_s: float = 0.0
    downtime_s: float = 0.0
    violations: int = 0
    migrations: int = 0

    @property
    def availability(self) -> float:
        """Achieved availability (uptime over total time)."""
        total = self.uptime_s + self.downtime_s
        return self.uptime_s / total if total else 1.0

    @property
    def meets_target(self) -> bool:
        """Whether achieved availability meets the SLA target."""
        return self.availability >= self.sla.availability_target


class SLATracker:
    """Tracks SLA compliance across a fleet of VMs."""

    def __init__(self) -> None:
        self._records: Dict[str, SLARecord] = {}

    def state_dict(self) -> Dict[str, object]:
        """Serializable tracker state (SLA tiers are saved by value)."""
        return {
            "records": {
                name: {
                    "sla": asdict(record.sla),
                    "uptime_s": record.uptime_s,
                    "downtime_s": record.downtime_s,
                    "violations": record.violations,
                    "migrations": record.migrations,
                }
                for name, record in self._records.items()
            }
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the tracker saved by :meth:`state_dict`."""
        self._records = {}
        for name, rec in state["records"].items():  # type: ignore[union-attr]
            self._records[str(name)] = SLARecord(
                sla=SLA(**rec["sla"]),
                uptime_s=float(rec["uptime_s"]),
                downtime_s=float(rec["downtime_s"]),
                violations=int(rec["violations"]),
                migrations=int(rec["migrations"]),
            )

    def register(self, vm_name: str, sla: SLA) -> None:
        """Start tracking a VM under a tier."""
        if vm_name in self._records:
            raise ConfigurationError(f"VM {vm_name!r} already tracked")
        self._records[vm_name] = SLARecord(sla=sla)

    def record(self, vm_name: str) -> SLARecord:
        """The service record of a tracked VM."""
        if vm_name not in self._records:
            raise KeyError(f"VM {vm_name!r} is not tracked")
        return self._records[vm_name]

    def sla_for(self, vm_name: str) -> SLA:
        """The SLA tier a VM is tracked under."""
        return self.record(vm_name).sla

    def account(self, vm_name: str, dt_s: float, up: bool) -> None:
        """Accrue ``dt_s`` of service time (up or down) for a VM."""
        if dt_s < 0:
            raise ConfigurationError("dt must be non-negative")
        record = self.record(vm_name)
        if up:
            record.uptime_s += dt_s
        else:
            record.downtime_s += dt_s
            if not record.meets_target:
                record.violations += 1

    def note_migration(self, vm_name: str) -> None:
        """Count one migration against a VM's record."""
        self.record(vm_name).migrations += 1

    def transfer_out(self, vm_name: str) -> SLARecord:
        """Detach and return a VM's record (cross-zone move, source side).

        The accumulated history travels with the VM so availability and
        violation accounting stay continuous across the move.
        """
        record = self.record(vm_name)
        del self._records[vm_name]
        return record

    def transfer_in(self, vm_name: str, record: SLARecord) -> None:
        """Adopt a record detached by :meth:`transfer_out`."""
        if vm_name in self._records:
            raise ConfigurationError(f"VM {vm_name!r} already tracked")
        self._records[vm_name] = record

    def tracked_vms(self) -> List[str]:
        """Names of all tracked VMs, sorted."""
        return sorted(self._records)

    def violations_total(self) -> int:
        """Summed SLA violations across the fleet."""
        return sum(r.violations for r in self._records.values())

    def availability_summary(self) -> Dict[str, float]:
        """Achieved availability per VM."""
        return {name: r.availability for name, r in self._records.items()}

    def fleet_meets_targets(self) -> bool:
        """Whether every tracked VM meets its target."""
        return all(r.meets_target for r in self._records.values())
