"""VM scheduling policies (OpenStack filter/weigh style).

Paper Section 4.B: the extended OpenStack develops "new scheduling
policies" exploiting fine-grained monitoring and the added node
reliability metric, "focus[ing] on incurring minimal overhead and being
non-intrusive in real-world scenarios where OpenStack would manage
streams of incoming and terminating VMs".

The :class:`FilterScheduler` follows the classical two-phase design:
filters discard infeasible nodes (capacity, SLA compatibility, health),
then weighers rank the survivors.  UniServer's reliability-aware weigher
set trades energy efficiency against node reliability per the VM's SLA
tier; a :class:`RoundRobinScheduler` baseline exists for the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError, SchedulingError
from ..hypervisor.vm import VirtualMachine
from .node import ComputeNode
from .sla import SLA

Filter = Callable[[ComputeNode, VirtualMachine, SLA], bool]
Weigher = Callable[[ComputeNode, VirtualMachine, SLA], float]


# -- filters ---------------------------------------------------------------

def capacity_filter(node: ComputeNode, vm: VirtualMachine, sla: SLA) -> bool:
    """Node must have vCPU and memory headroom for the VM."""
    return node.can_host(vm)


def health_filter(node: ComputeNode, vm: VirtualMachine, sla: SLA) -> bool:
    """Node must be up."""
    return not node.hypervisor.crashed


def sla_performance_filter(node: ComputeNode, vm: VirtualMachine,
                           sla: SLA) -> bool:
    """Node cores must satisfy the SLA's frequency floor."""
    return node.frequency_fraction() >= sla.min_frequency_fraction


def sla_reliability_filter(node: ComputeNode, vm: VirtualMachine,
                           sla: SLA) -> bool:
    """Node failure budget must fit the SLA.

    Gold-tier VMs refuse nodes *currently running* extended operating
    points under a budget looser than the SLA's own.  A node running
    entirely at nominal — never adopted, or demoted back by its EOP
    governor — is safe for any tier regardless of its configured budget:
    it is not spending any margin right now.
    """
    governor = getattr(node, "governor", None)
    if governor is not None:
        adopted = governor.adopted_count()
    else:
        adopted = node.hypervisor.stats.margin_applications
    if adopted == 0:
        return True
    return node.hypervisor.config.failure_budget <= sla.failure_budget


DEFAULT_FILTERS: Tuple[Filter, ...] = (
    health_filter, capacity_filter, sla_performance_filter,
    sla_reliability_filter,
)


# -- weighers ---------------------------------------------------------------

def energy_weigher(node: ComputeNode, vm: VirtualMachine, sla: SLA) -> float:
    """Prefer nodes that buy more work per watt (lower power is better)."""
    metrics = node.metrics()
    if metrics.power_w <= 0:
        return 1.0
    return 1.0 / metrics.power_w


def reliability_weigher(node: ComputeNode, vm: VirtualMachine,
                        sla: SLA) -> float:
    """Prefer reliable nodes, weighted up for high-priority SLAs."""
    return node.reliability() * (1.0 + 0.5 * sla.priority)


def balance_weigher(node: ComputeNode, vm: VirtualMachine, sla: SLA) -> float:
    """Prefer less-utilized nodes (spread the fleet)."""
    return 1.0 - node.utilization()


def risk_aware_weigher(node: ComputeNode, vm: VirtualMachine,
                       sla: SLA) -> float:
    """Penalise candidates their own horizon reports predict will fail.

    Reads the node's last multi-horizon risk report (duck-typed: live
    nodes and heartbeat-fed :class:`~repro.resilience.health.NodeView`
    beliefs both answer ``risk_report()``).  Only horizons whose
    ``at_risk`` flag is up contribute hazard — the weigher acts on the
    same alarms actuation acts on, scaled by ``probability x
    confidence x nearness`` so a high-confidence 15-minute warning
    outweighs a shaky 4-hour one.  Below-threshold probabilities are
    deliberately ignored: scoring them would perturb every placement
    with low-grade noise, and in a fleet whose faults are mostly
    exogenous that noise costs more than the signal is worth.  With no
    alarm anywhere the weigher is constant, and min-max normalisation
    makes a constant weigher ranking-neutral.  A node without a report
    (Predictor down, threshold-only fleet) scores a neutral 0.5: no
    evidence is not the same as a clean bill.
    """
    report_fn = getattr(node, "risk_report", None)
    report = report_fn() if report_fn is not None else None
    if report is None:
        return 0.5
    hazard = 0.0
    for horizon in report.horizons:
        if not horizon.at_risk:
            continue
        nearness = min(1.0, 900.0 / horizon.horizon_s)
        hazard = max(hazard,
                     horizon.probability * horizon.confidence * nearness)
    return 1.0 - min(1.0, hazard)


@dataclass
class RackAntiAffinity:
    """Opt-in weigher: spread placements across fault-domain racks.

    Nodes named ``node{i}`` fall into contiguous racks of
    ``nodes_per_rack``; any other name lands in a shared catch-all
    rack.  The weigher scores a candidate by how few VMs its whole
    rack currently hosts, so placements drain toward the emptiest
    rack and a single rack failure (PDU, ToR, cooling) takes out as
    few VMs as possible.  Not in :data:`DEFAULT_WEIGHERS` — append
    ``spec()`` to a scheduler's weighers to arm it.
    """

    nodes: Sequence[ComputeNode]
    nodes_per_rack: int = 8

    def __post_init__(self) -> None:
        if self.nodes_per_rack < 1:
            raise ConfigurationError("nodes_per_rack must be >= 1")

    def rack_of(self, node_name: str) -> int:
        """The rack index for a node name (-1 = unparseable catch-all)."""
        suffix = node_name[4:] if node_name.startswith("node") else ""
        if not suffix.isdigit() or str(int(suffix)) != suffix:
            return -1
        return int(suffix) // self.nodes_per_rack

    def weigher(self, node: ComputeNode, vm: VirtualMachine,
                sla: SLA) -> float:
        rack = self.rack_of(node.name)
        load = sum(len(peer.hypervisor.vms) for peer in self.nodes
                   if self.rack_of(peer.name) == rack)
        return 1.0 / (1.0 + load)

    def spec(self, weight: float = 1.0) -> "WeigherSpec":
        """This weigher packaged for a scheduler's weigher list."""
        return WeigherSpec(self.weigher, weight)


def tier_capacity_weigher(node: ComputeNode, vm: VirtualMachine,
                          sla: SLA) -> float:
    """Prefer nodes whose per-tier free memory fits the VM's declared mix.

    A VM with a ``criticality_mix`` ({tier: fraction of its memory})
    scores each candidate by how well the node's free capacity in each
    requested tier covers that slice — a node with plenty of relaxed
    memory but a starved normal tier scores poorly for a VM declaring a
    critical slice, steering criticality-heavy VMs toward nodes that can
    actually honour their tiers instead of spilling on arrival.  VMs
    without a mix (and nodes without tier accounting) score a neutral
    0.5, which min-max normalisation makes ranking-neutral.
    """
    mix = getattr(vm, "criticality_mix", None)
    tier_free_fn = getattr(node, "tier_free_mb", None)
    if not mix or tier_free_fn is None:
        return 0.5
    free_mb = tier_free_fn()
    total_need = vm.guest_os_mb + vm.workload.demand.memory_mb
    total_fraction = sum(mix.values())
    score = 0.0
    for tier, fraction in mix.items():
        weight = fraction / total_fraction
        need_mb = fraction * total_need
        if need_mb <= 0:
            score += weight
            continue
        score += weight * min(1.0, free_mb.get(tier, 0.0) / need_mb)
    return score


@dataclass(frozen=True)
class WeigherSpec:
    """A weigher and its multiplier in the total score."""

    weigher: Weigher
    weight: float = 1.0


DEFAULT_WEIGHERS: Tuple[WeigherSpec, ...] = (
    WeigherSpec(reliability_weigher, 2.0),
    WeigherSpec(energy_weigher, 1.0),
    WeigherSpec(balance_weigher, 1.0),
)

#: The default set plus the horizon-report weigher — the scheduler arm
#: of the risk-aware migration A/B (``bench_failure_prediction``).
#: Opt-in rather than default so existing ablations keep their baseline.
RISK_AWARE_WEIGHERS: Tuple[WeigherSpec, ...] = DEFAULT_WEIGHERS + (
    WeigherSpec(risk_aware_weigher, 1.5),
)

#: The default set plus per-tier capacity weighing — the scheduler arm
#: of heterogeneous-reliability placement.  Opt-in for the same reason
#: as the risk-aware set: existing ablations keep their baseline.
TIER_AWARE_WEIGHERS: Tuple[WeigherSpec, ...] = DEFAULT_WEIGHERS + (
    WeigherSpec(tier_capacity_weigher, 1.5),
)


@dataclass(frozen=True)
class Placement:
    """A scheduling decision."""

    vm_name: str
    node: str
    score: float


class FilterScheduler:
    """Two-phase filter/weigh scheduler with normalised scoring."""

    def __init__(self, filters: Sequence[Filter] = DEFAULT_FILTERS,
                 weighers: Sequence[WeigherSpec] = DEFAULT_WEIGHERS) -> None:
        if not filters:
            raise ConfigurationError("scheduler needs at least one filter")
        if not weighers:
            raise ConfigurationError("scheduler needs at least one weigher")
        self.filters = tuple(filters)
        self.weighers = tuple(weighers)

    def feasible_nodes(self, nodes: Sequence[ComputeNode],
                       vm: VirtualMachine, sla: SLA) -> List[ComputeNode]:
        """Nodes passing every filter."""
        survivors = list(nodes)
        for node_filter in self.filters:
            survivors = [n for n in survivors if node_filter(n, vm, sla)]
            if not survivors:
                break
        return survivors

    def _score(self, candidates: Sequence[ComputeNode], vm: VirtualMachine,
               sla: SLA) -> Dict[str, float]:
        """Min-max-normalised weighted scores, per OpenStack convention."""
        totals = {node.name: 0.0 for node in candidates}
        for spec in self.weighers:
            raw = {n.name: spec.weigher(n, vm, sla) for n in candidates}
            low, high = min(raw.values()), max(raw.values())
            span = high - low
            for name, value in raw.items():
                normalised = 0.5 if span <= 0 else (value - low) / span
                totals[name] += spec.weight * normalised
        return totals

    def schedule(self, nodes: Sequence[ComputeNode], vm: VirtualMachine,
                 sla: SLA) -> Placement:
        """Pick the best node or raise :class:`SchedulingError`."""
        candidates = self.feasible_nodes(nodes, vm, sla)
        if not candidates:
            raise SchedulingError(
                f"no feasible node for VM {vm.name!r} (tier {sla.name})"
            )
        scores = self._score(candidates, vm, sla)
        best = max(candidates, key=lambda n: (scores[n.name], n.name))
        return Placement(vm_name=vm.name, node=best.name,
                         score=scores[best.name])


class RoundRobinScheduler:
    """Baseline: rotate over whatever nodes have capacity."""

    def __init__(self) -> None:
        self._cursor = 0

    def schedule(self, nodes: Sequence[ComputeNode], vm: VirtualMachine,
                 sla: SLA) -> Placement:
        """Pick a node with capacity, rotating the cursor."""
        if not nodes:
            raise SchedulingError("no nodes registered")
        n = len(nodes)
        for i in range(n):
            node = nodes[(self._cursor + i) % n]
            if not node.hypervisor.crashed and node.can_host(vm):
                self._cursor = (self._cursor + i + 1) % n
                return Placement(vm_name=vm.name, node=node.name, score=0.0)
        raise SchedulingError(
            f"no node with capacity for VM {vm.name!r}"
        )
