"""Node-failure prediction integrated with the resource manager.

Paper Section 5.B: "UniServer's approach is to extend OpenStack framework
and have an integrated fault tolerance component, by adapting existing or
developing new techniques to efficiently predict the system level
failures and proactively migrate the running workloads on the healthy
nodes."

Three predictors are provided:

* :class:`ThresholdFailurePredictor` — unsupervised, in the spirit of the
  log-analysis detectors the paper surveys [19]–[25]: a risk score from
  recent error rates, reliability trend and refresh/voltage aggression.
* :class:`LearnedFailurePredictor` — supervised logistic model trained on
  (node features → failed-within-horizon) labels collected from history,
  reusing :class:`~repro.daemons.predictor.LogisticModel`.
* :class:`MultiHorizonPredictor` — the full Section 5.B shape: one
  supervised model per prediction horizon (15 min / 1 h / 4 h), trained
  on telemetry harvested from sweep campaigns
  (:mod:`repro.sweep.harvest`), emitting a confidence-scored
  :class:`HorizonRiskReport` per node and per DRAM domain that
  heartbeats ship to the controller.

Every predictor round-trips through ``state_dict``/``load_state_dict``
(the PR 3 crash-safe invariant), so a trained on-node model survives
SIGKILL + resume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S
from ..core.exceptions import ConfigurationError, PredictionError
from ..daemons.predictor import LogisticModel
from ..hardware.faults import FaultClass
from .node import ComputeNode
from .telemetry import NodeSample, TelemetryService

NODE_FEATURES = (
    "ce_rate",              # recent correctable errors per sample
    "reliability",          # UniServer reliability metric
    "voltage_margin_used",  # how deep below nominal the cores sit
    "refresh_relaxation",   # log2 of the worst refresh relaxation factor
    "utilization",
)

#: The prediction horizons, nearest first: (name, seconds).
HORIZONS: Tuple[Tuple[str, float], ...] = (
    ("15m", 900.0),
    ("1h", 3600.0),
    ("4h", 14400.0),
)

#: Features harvestable from a retained :class:`NodeSample` — the
#: telemetry-only feature set the multi-horizon models train and score
#: on (sweep campaigns retain samples, not live platform registers).
HARVEST_FEATURES = (
    "ce_count",          # cumulative corrected-error counter
    "reliability",
    "utilization",
    "power_norm",        # power_w / 100
    "temperature_norm",  # (T - 50) / 50
)


def node_features(node: ComputeNode,
                  telemetry: TelemetryService) -> np.ndarray:
    """Feature row describing a node's current risk posture."""
    nominal_v = node.platform.chip.spec.nominal.voltage_v
    active = node.platform.chip.active_cores()
    if active:
        margins = [
            1.0 - node.platform.core_point(c.core_id).voltage_v / nominal_v
            for c in active
        ]
        margin_used = max(margins)
    else:
        # A fully parked chip spends no voltage margin at all; treating
        # "no active cores" as margin 1.0 made the threshold predictor
        # flag a healthy idle node as maximally at-risk.
        margin_used = 0.0
    relaxations = [
        d.refresh_interval_s / NOMINAL_REFRESH_INTERVAL_S
        for d in node.platform.memory.domains()
    ]
    # No DRAM domains means no refresh relaxation; max() on the empty
    # list raised ValueError here.
    refresh_log2 = (float(np.log2(max(relaxations)))
                    if relaxations else 0.0)
    return np.array([
        telemetry.recent_error_rate(node.name),
        node.reliability(),
        margin_used,
        refresh_log2,
        node.utilization(),
    ])


def sample_features(sample: NodeSample) -> np.ndarray:
    """The :data:`HARVEST_FEATURES` row of one retained node sample.

    Shared by the harvest hook (training time) and
    :class:`MultiHorizonPredictor` (serving time), so the model scores
    exactly the representation it was fitted on.
    """
    return np.array([
        float(sample.correctable_errors),
        float(sample.reliability),
        float(sample.utilization),
        float(sample.power_w) / 100.0,
        (float(sample.temperature_c) - 50.0) / 50.0,
    ])


@dataclass(frozen=True)
class RiskAssessment:
    """A predictor's verdict on one node."""

    node: str
    risk: float
    at_risk: bool
    reason: str = ""


@dataclass(frozen=True)
class HorizonRisk:
    """One horizon's slice of a node's risk report."""

    horizon: str
    horizon_s: float
    probability: float
    confidence: float
    at_risk: bool
    #: Feature names contributing most to the verdict, strongest first.
    contributors: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (all leaves JSON primitives)."""
        return {
            "horizon": self.horizon,
            "horizon_s": self.horizon_s,
            "probability": self.probability,
            "confidence": self.confidence,
            "at_risk": self.at_risk,
            "contributors": list(self.contributors),
        }

    @staticmethod
    def from_dict(state: Mapping[str, object]) -> "HorizonRisk":
        """Rebuild a slice saved by :meth:`as_dict`."""
        return HorizonRisk(
            horizon=str(state["horizon"]),
            horizon_s=float(state["horizon_s"]),  # type: ignore[arg-type]
            probability=float(state["probability"]),  # type: ignore[arg-type]
            confidence=float(state["confidence"]),  # type: ignore[arg-type]
            at_risk=bool(state["at_risk"]),
            contributors=tuple(str(c) for c in state["contributors"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class DomainRisk:
    """Failure risk of one DRAM domain (retention-stress hazard)."""

    domain: str
    probability: float
    at_risk: bool

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form."""
        return {"domain": self.domain, "probability": self.probability,
                "at_risk": self.at_risk}

    @staticmethod
    def from_dict(state: Mapping[str, object]) -> "DomainRisk":
        """Rebuild a domain risk saved by :meth:`as_dict`."""
        return DomainRisk(
            domain=str(state["domain"]),
            probability=float(state["probability"]),  # type: ignore[arg-type]
            at_risk=bool(state["at_risk"]),
        )


@dataclass(frozen=True)
class HorizonRiskReport:
    """A node's full multi-horizon risk report, as heartbeats ship it."""

    node: str
    horizons: Tuple[HorizonRisk, ...]
    domains: Tuple[DomainRisk, ...] = ()

    def horizon(self, name: str) -> HorizonRisk:
        """One horizon's slice by name."""
        for slice_ in self.horizons:
            if slice_.horizon == name:
                return slice_
        raise KeyError(f"no horizon named {name!r} in report")

    def nearest_at_risk(self) -> Optional[HorizonRisk]:
        """The at-risk horizon with the shortest lead, if any."""
        flagged = [h for h in self.horizons if h.at_risk]
        if not flagged:
            return None
        return min(flagged, key=lambda h: h.horizon_s)

    def urgency(self) -> Tuple[float, float]:
        """Sort key for evacuation ordering: nearest at-risk horizon
        first, then higher probability first.  Nodes with no at-risk
        horizon sort last (infinite lead)."""
        nearest = self.nearest_at_risk()
        if nearest is not None:
            return (nearest.horizon_s, -nearest.probability)
        worst = max((h.probability for h in self.horizons), default=0.0)
        return (math.inf, -worst)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (all leaves JSON primitives)."""
        return {
            "node": self.node,
            "horizons": [h.as_dict() for h in self.horizons],
            "domains": [d.as_dict() for d in self.domains],
        }

    @staticmethod
    def from_dict(state: Mapping[str, object]) -> "HorizonRiskReport":
        """Rebuild a report saved by :meth:`as_dict`."""
        return HorizonRiskReport(
            node=str(state["node"]),
            horizons=tuple(HorizonRisk.from_dict(h)
                           for h in state["horizons"]),  # type: ignore[union-attr]
            domains=tuple(DomainRisk.from_dict(d)
                          for d in state["domains"]),  # type: ignore[union-attr]
        )


def domain_risks(node: ComputeNode, threshold: float,
                 window_s: float = 3600.0) -> Tuple[DomainRisk, ...]:
    """Per-DRAM-domain hazard from refresh aggression and fault history.

    A domain is hazardous when its refresh interval sits deep beyond
    nominal *and* the ledger shows recent uncorrectable/corrected
    faults attributed to it (faults carry ``component=domain.name``).
    """
    now = node.clock.now
    since = now - window_s
    ledger = node.platform.faults
    risks = []
    for domain in node.platform.memory.domains():
        relaxation = domain.refresh_interval_s / NOMINAL_REFRESH_INTERVAL_S
        relax_log2 = math.log2(relaxation) if relaxation > 0 else 0.0
        ue = ledger.count(fault_class=FaultClass.UNCORRECTABLE,
                          component=domain.name, since=since)
        sdc = ledger.count(fault_class=FaultClass.SILENT_DATA_CORRUPTION,
                           component=domain.name, since=since)
        ce = ledger.count(fault_class=FaultClass.CORRECTABLE,
                          component=domain.name, since=since)
        probability = min(1.0, 0.1 * max(0.0, relax_log2 - 5.0)
                          + 0.2 * (ue + sdc) + 0.01 * ce)
        risks.append(DomainRisk(domain=domain.name,
                                probability=probability,
                                at_risk=probability >= threshold))
    return tuple(sorted(risks, key=lambda r: r.domain))


def _hazard_terms(features: np.ndarray) -> List[Tuple[str, float, str]]:
    """The threshold predictor's additive hazard terms.

    Returns ``(feature_name, term, description)`` triples for the terms
    that fired; shared by :meth:`ThresholdFailurePredictor.assess` and
    the heuristic fallback of untrained multi-horizon slices.
    """
    ce_rate, reliability, margin_used, refresh_log2, _util = features
    terms: List[Tuple[str, float, str]] = []
    if ce_rate > 0:
        terms.append(("ce_rate", min(0.5, 0.08 * ce_rate),
                      f"ce_rate={ce_rate:.2f}"))
    if reliability < 0.9:
        terms.append(("reliability", 0.9 - reliability,
                      f"reliability={reliability:.2f}"))
    if margin_used > 0.15:
        terms.append(("voltage_margin_used", (margin_used - 0.15) * 2.0,
                      f"margin={margin_used:.2f}"))
    if refresh_log2 > 5:  # beyond 32x nominal refresh
        terms.append(("refresh_relaxation", 0.1 * (refresh_log2 - 5),
                      f"refresh=2^{refresh_log2:.1f}"))
    return terms


class ThresholdFailurePredictor:
    """Unsupervised risk scoring from error rates and margin aggression.

    The score composes additive hazard terms; ``threshold`` divides
    healthy from at-risk.  Deliberately simple: this is the baseline the
    learned predictors are compared against in the migration ablation.
    """

    KIND = "threshold"

    #: Heuristic confidence per horizon of the degenerate report: one
    #: instantaneous score says progressively less about longer leads.
    HORIZON_CONFIDENCE = {"15m": 0.6, "1h": 0.45, "4h": 0.3}

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0 < threshold < 1:
            raise ConfigurationError("threshold must be in (0, 1)")
        self.threshold = threshold

    def assess(self, node: ComputeNode,
               telemetry: TelemetryService) -> RiskAssessment:
        """Risk verdict for one node."""
        features = node_features(node, telemetry)
        terms = _hazard_terms(features)
        risk = min(1.0, sum(term for _, term, _ in terms))
        return RiskAssessment(
            node=node.name, risk=risk, at_risk=risk >= self.threshold,
            reason=", ".join(desc for _, _, desc in terms) or "healthy",
        )

    def report(self, node: ComputeNode, telemetry: TelemetryService,
               assessment: Optional[RiskAssessment] = None,
               ) -> HorizonRiskReport:
        """A degenerate horizon report from the single hazard score.

        The same instantaneous score is replicated across horizons with
        confidence decaying as the lead grows — the honest shape of a
        detector that knows nothing about time-to-failure.
        """
        features = node_features(node, telemetry)
        terms = _hazard_terms(features)
        risk = min(1.0, sum(term for _, term, _ in terms))
        contributors = tuple(
            name for name, _, _ in
            sorted(terms, key=lambda t: (-t[1], t[0]))[:2])
        horizons = tuple(
            HorizonRisk(
                horizon=name, horizon_s=h_s, probability=risk,
                confidence=self.HORIZON_CONFIDENCE.get(name, 0.3),
                at_risk=risk >= self.threshold,
                contributors=contributors)
            for name, h_s in HORIZONS
        )
        return HorizonRiskReport(
            node=node.name, horizons=horizons,
            domains=domain_risks(node, self.threshold))

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable predictor state."""
        return {"threshold": self.threshold}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self.threshold = float(state["threshold"])  # type: ignore[arg-type]


@dataclass
class LabelledNodeObservation:
    """One training example for the learned predictor."""

    features: np.ndarray
    failed_within_horizon: bool


class LearnedFailurePredictor:
    """Supervised node-failure predictor on collected history."""

    KIND = "learned"

    def __init__(self, threshold: float = 0.5,
                 model: Optional[LogisticModel] = None) -> None:
        if not 0 < threshold < 1:
            raise ConfigurationError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.model = model or LogisticModel(epochs=300)
        self._observations: List[LabelledNodeObservation] = []

    def observe(self, node: ComputeNode, telemetry: TelemetryService,
                failed_within_horizon: bool) -> None:
        """Record one labelled snapshot for later training."""
        self._observations.append(LabelledNodeObservation(
            features=node_features(node, telemetry),
            failed_within_horizon=failed_within_horizon,
        ))

    @property
    def n_observations(self) -> int:
        """Number of labelled snapshots collected."""
        return len(self._observations)

    def train(self) -> None:
        """Fit the model on the collected observations."""
        if len(self._observations) < 10:
            raise PredictionError(
                "need at least 10 observations to train the node predictor"
            )
        features = np.vstack([o.features for o in self._observations])
        labels = np.array([
            1.0 if o.failed_within_horizon else 0.0
            for o in self._observations
        ])
        self.model.fit(features, labels)

    def assess(self, node: ComputeNode,
               telemetry: TelemetryService) -> RiskAssessment:
        """Risk verdict for one node."""
        if not self.model.is_trained:
            raise PredictionError("train the node predictor first")
        features = node_features(node, telemetry)
        risk = float(self.model.predict_proba(features)[0])
        return RiskAssessment(
            node=node.name, risk=risk, at_risk=risk >= self.threshold,
            reason=f"learned risk {risk:.3f}",
        )

    def report(self, node: ComputeNode, telemetry: TelemetryService,
               assessment: Optional[RiskAssessment] = None,
               ) -> HorizonRiskReport:
        """A degenerate horizon report from the single-horizon model."""
        if assessment is None:
            assessment = self.assess(node, telemetry)
        obs_term = self.n_observations / (self.n_observations + 50.0)
        features = node_features(node, telemetry)
        contributions = self.model.contributions(features)
        order = sorted(range(len(NODE_FEATURES)),
                       key=lambda i: (-abs(contributions[i]),
                                      NODE_FEATURES[i]))
        contributors = tuple(NODE_FEATURES[i] for i in order[:2])
        decay = {"15m": 1.0, "1h": 0.75, "4h": 0.5}
        horizons = tuple(
            HorizonRisk(
                horizon=name, horizon_s=h_s,
                probability=assessment.risk,
                confidence=obs_term * decay.get(name, 0.5),
                at_risk=assessment.at_risk,
                contributors=contributors)
            for name, h_s in HORIZONS
        )
        return HorizonRiskReport(
            node=node.name, horizons=horizons,
            domains=domain_risks(node, self.threshold))

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable predictor state: model plus observations.

        Round-trips everything :meth:`train` needs, so a predictor
        restored mid-campaign can keep observing and retrain.
        """
        return {
            "threshold": self.threshold,
            "model": self.model.state_dict(),
            "observations": [
                [[float(x) for x in o.features], o.failed_within_horizon]
                for o in self._observations
            ],
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self.threshold = float(state["threshold"])  # type: ignore[arg-type]
        self.model.load_state_dict(state["model"])  # type: ignore[arg-type]
        self._observations = [
            LabelledNodeObservation(
                features=np.array([float(x) for x in features]),
                failed_within_horizon=bool(failed))
            for features, failed in state["observations"]  # type: ignore[union-attr]
        ]


#: Label sentinel for a censored observation (window ran past the end
#: of the campaign, so the true outcome is unknowable).
_CENSORED = -1


class MultiHorizonPredictor:
    """Confidence-scored multi-horizon health predictor.

    One :class:`LogisticModel` per horizon, trained on
    :data:`HARVEST_FEATURES` rows labelled against the ground-truth
    fault ledger (see :mod:`repro.sweep.harvest`).  A horizon whose
    model is still untrained falls back to the threshold hazard terms at
    low confidence, so the predictor never raises mid-campaign — the
    degradation rung is "less confident", not "dead".
    """

    KIND = "multi_horizon"

    #: Confidence of an untrained horizon's heuristic fallback.
    FALLBACK_CONFIDENCE = 0.25

    #: The nearest horizon's lead, anchoring the threshold scaling.
    NEAREST_HORIZON_S = HORIZONS[0][1]

    def __init__(self, threshold: float = 0.5,
                 min_observations: int = 10) -> None:
        if not 0 < threshold < 1:
            raise ConfigurationError("threshold must be in (0, 1)")
        if min_observations < 2:
            raise ConfigurationError("min_observations must be >= 2")
        self.threshold = threshold
        self.min_observations = min_observations
        self._models: Dict[str, LogisticModel] = {
            name: LogisticModel(epochs=300) for name, _ in HORIZONS
        }
        self._features: List[np.ndarray] = []
        self._labels: Dict[str, List[int]] = {
            name: [] for name, _ in HORIZONS
        }

    # -- training ----------------------------------------------------------

    @property
    def n_observations(self) -> int:
        """Number of labelled feature rows collected."""
        return len(self._features)

    def observe(self, features: np.ndarray,
                failed_within: Mapping[str, Optional[bool]]) -> None:
        """Record one labelled feature row (one label per horizon).

        A horizon mapped to ``None`` (or absent) is *censored* for this
        row — the campaign ended before its window closed, so the true
        label is unknowable.  Censored rows are excluded from that
        horizon's training set but still train the other horizons.
        """
        self._features.append(np.asarray(features, dtype=float))
        for name, _ in HORIZONS:
            label = failed_within.get(name)
            self._labels[name].append(
                _CENSORED if label is None else int(bool(label)))

    def ingest(self, observations: Sequence[Mapping[str, object]]) -> None:
        """Fold harvested observations (see :mod:`repro.sweep.harvest`) in.

        Each observation is a mapping with ``features`` (a
        :data:`HARVEST_FEATURES` row) and ``labels`` (horizon name →
        failed-within-horizon bool, or None where censored).
        """
        for obs in observations:
            self.observe(
                np.array([float(x) for x in obs["features"]]),  # type: ignore[union-attr]
                {str(k): (None if v is None else bool(v))
                 for k, v in obs["labels"].items()})  # type: ignore[union-attr]

    def train(self) -> Dict[str, bool]:
        """Fit every horizon model that has enough of both classes.

        Returns horizon name → whether its model is (now) trained; a
        horizon without both label classes after dropping its censored
        rows keeps its fallback.
        """
        if len(self._features) < self.min_observations:
            raise PredictionError(
                f"need at least {self.min_observations} observations to "
                f"train the multi-horizon predictor "
                f"(have {len(self._features)})")
        features = np.vstack(self._features)
        outcome = {}
        for name, _ in HORIZONS:
            labels = np.array(self._labels[name], dtype=float)
            mask = labels != _CENSORED
            kept = labels[mask]
            if (kept.size < self.min_observations
                    or len(np.unique(kept)) < 2):
                outcome[name] = self._models[name].is_trained
                continue
            self._models[name].fit(features[mask], kept)
            outcome[name] = True
        return outcome

    def trained_horizons(self) -> Tuple[str, ...]:
        """Names of horizons whose models are trained."""
        return tuple(name for name, _ in HORIZONS
                     if self._models[name].is_trained)

    # -- scoring -----------------------------------------------------------

    def probabilities(self, features: np.ndarray,
                      ) -> Dict[str, Tuple[float, float]]:
        """Per-horizon ``(probability, confidence)`` for one feature row.

        Trained horizons score through their logistic model; confidence
        grows with training-set size and decision sharpness.  Untrained
        horizons fall back to the threshold hazard terms over the
        sample features at :data:`FALLBACK_CONFIDENCE`.
        """
        features = np.asarray(features, dtype=float)
        n = self.n_observations
        obs_term = n / (n + 50.0)
        out: Dict[str, Tuple[float, float]] = {}
        for name, _ in HORIZONS:
            model = self._models[name]
            if model.is_trained:
                p = float(model.predict_proba(features)[0])
                confidence = obs_term * (0.5 + abs(p - 0.5))
            else:
                p, confidence = self._fallback(features)
            out[name] = (p, confidence)
        return out

    def horizon_threshold(self, horizon_s: float) -> float:
        """The at-risk probability threshold for one horizon.

        The base threshold applies to the nearest horizon; farther
        horizons demand progressively higher probability before they
        flag.  In a fault-dense fleet "some crash within 4 h" is close
        to certain for every node, so actuating a distant horizon at
        the base threshold would evacuate the whole rack continuously —
        acting *early* is only justified by near-certainty.
        """
        nearness = min(1.0, self.NEAREST_HORIZON_S / horizon_s)
        return 1.0 - (1.0 - self.threshold) * nearness

    def _fallback(self, features: np.ndarray) -> Tuple[float, float]:
        """Heuristic hazard over a :data:`HARVEST_FEATURES` row."""
        ce, reliability, _util, _power, temperature_norm = features
        hazard = 0.0
        if ce > 0:
            hazard += min(0.5, 0.08 * ce)
        if reliability < 0.9:
            hazard += 0.9 - reliability
        if temperature_norm > 0.6:  # beyond 80 C
            hazard += 0.2 * (temperature_norm - 0.6)
        return min(1.0, hazard), self.FALLBACK_CONFIDENCE

    def _contributors(self, name: str,
                      features: np.ndarray) -> Tuple[str, ...]:
        """Top contributing features of one horizon's verdict."""
        model = self._models[name]
        if not model.is_trained:
            ce, reliability, _u, _p, temperature_norm = features
            scores = {"ce_count": min(0.5, 0.08 * ce) if ce > 0 else 0.0,
                      "reliability": max(0.0, 0.9 - reliability),
                      "temperature_norm": max(
                          0.0, 0.2 * (temperature_norm - 0.6))}
            ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
            return tuple(k for k, v in ranked[:2] if v > 0)
        contributions = model.contributions(features)
        order = sorted(range(len(HARVEST_FEATURES)),
                       key=lambda i: (-abs(contributions[i]),
                                      HARVEST_FEATURES[i]))
        return tuple(HARVEST_FEATURES[i] for i in order[:2])

    def _current_sample(self, node: ComputeNode,
                        telemetry: TelemetryService) -> NodeSample:
        """The newest retained sample (synthesized if none yet)."""
        history = telemetry.node_history(node.name)
        if history:
            return history[-1]
        metrics = node.metrics()
        return NodeSample(
            timestamp=node.clock.now, node=node.name,
            utilization=metrics.utilization, power_w=metrics.power_w,
            reliability=metrics.reliability,
            correctable_errors=node.hypervisor.stats.correctable_errors,
            temperature_c=node.platform.chip.thermal.temperature_c,
        )

    def report(self, node: ComputeNode, telemetry: TelemetryService,
               assessment: Optional[RiskAssessment] = None,
               ) -> HorizonRiskReport:
        """The full per-node, per-DRAM-domain horizon report."""
        features = sample_features(self._current_sample(node, telemetry))
        scored = self.probabilities(features)
        horizons = tuple(
            HorizonRisk(
                horizon=name, horizon_s=h_s,
                probability=scored[name][0],
                confidence=scored[name][1],
                at_risk=scored[name][0] >= self.horizon_threshold(h_s),
                contributors=self._contributors(name, features))
            for name, h_s in HORIZONS
        )
        return HorizonRiskReport(
            node=node.name, horizons=horizons,
            domains=domain_risks(node, self.threshold))

    def assess(self, node: ComputeNode,
               telemetry: TelemetryService) -> RiskAssessment:
        """Risk verdict for one node (nearest at-risk horizon rules)."""
        report = self.report(node, telemetry)
        nearest = report.nearest_at_risk()
        if nearest is not None:
            return RiskAssessment(
                node=node.name, risk=nearest.probability, at_risk=True,
                reason=(f"horizon {nearest.horizon}: "
                        f"p={nearest.probability:.3f} "
                        f"conf={nearest.confidence:.2f}"),
            )
        worst = max(report.horizons, key=lambda h: h.probability)
        return RiskAssessment(
            node=node.name, risk=worst.probability, at_risk=False,
            reason=(f"healthy (worst horizon {worst.horizon}: "
                    f"p={worst.probability:.3f})"),
        )

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable predictor state: every model plus observations."""
        return {
            "threshold": self.threshold,
            "min_observations": self.min_observations,
            "models": {name: self._models[name].state_dict()
                       for name, _ in HORIZONS},
            "features": [[float(x) for x in row]
                         for row in self._features],
            "labels": {name: list(self._labels[name])
                       for name, _ in HORIZONS},
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self.threshold = float(state["threshold"])  # type: ignore[arg-type]
        self.min_observations = int(state["min_observations"])  # type: ignore[arg-type]
        for name, _ in HORIZONS:
            self._models[name].load_state_dict(
                state["models"][name])  # type: ignore[index]
        self._features = [np.array([float(x) for x in row])
                          for row in state["features"]]  # type: ignore[union-attr]
        self._labels = {name: [int(v) for v in state["labels"][name]]  # type: ignore[index]
                        for name, _ in HORIZONS}


def train_from_observations(observations: Sequence[Mapping[str, object]],
                            threshold: float = 0.5,
                            ) -> MultiHorizonPredictor:
    """A :class:`MultiHorizonPredictor` trained on harvested labels."""
    predictor = MultiHorizonPredictor(threshold=threshold)
    predictor.ingest(observations)
    predictor.train()
    return predictor


def score_harvest(predictor: MultiHorizonPredictor,
                  observations: Sequence[Mapping[str, object]],
                  ) -> Dict[str, object]:
    """Score a predictor against ledger-labelled observations.

    Per horizon: the confusion counts, precision/recall, and the mean
    lead time (seconds of warning before the fault) over *failure
    events* — an event is one ledger fault, detected when any labelled
    observation ahead of it predicted positive; its lead is the
    earliest such warning.  Predictions are thresholded at the same
    per-horizon at-risk threshold actuation uses
    (:meth:`MultiHorizonPredictor.horizon_threshold`), so the scores
    describe the deployed alarm, not a detached operating point.
    Censored labels (None) are skipped.  The payload is canonical-JSON
    serializable and deterministic in the observation order.
    """
    horizons_out: Dict[str, Dict[str, object]] = {}
    for name, h_s in HORIZONS:
        at_risk_threshold = predictor.horizon_threshold(h_s)
        tp = fp = fn = tn = 0
        censored = 0
        events = set()
        detected: Dict[Tuple[str, float], float] = {}
        for obs in observations:
            label = obs["labels"][name]  # type: ignore[index]
            if label is None:
                censored += 1
                continue
            features = np.array([float(x) for x in obs["features"]])  # type: ignore[union-attr]
            probability, _ = predictor.probabilities(features)[name]
            predicted = probability >= at_risk_threshold
            actual = bool(label)
            if actual and predicted:
                tp += 1
            elif actual:
                fn += 1
            elif predicted:
                fp += 1
            else:
                tn += 1
            if actual and obs.get("lead_s") is not None:
                lead = float(obs["lead_s"])  # type: ignore[arg-type]
                event = (str(obs["node"]),
                         round(float(obs["timestamp"]) + lead, 6))  # type: ignore[arg-type]
                events.add(event)
                if predicted:
                    # Earliest warning = largest lead seen for the event.
                    detected[event] = max(detected.get(event, 0.0), lead)
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        mean_lead = (sum(detected.values()) / len(detected)
                     if detected else None)
        horizons_out[name] = {
            "horizon_s": h_s,
            "at_risk_threshold": at_risk_threshold,
            "tp": tp, "fp": fp, "fn": fn, "tn": tn,
            "censored": censored,
            "precision": precision, "recall": recall,
            "events": len(events), "detected": len(detected),
            "mean_lead_s": mean_lead,
        }
    return {
        "threshold": predictor.threshold,
        "n_observations": len(observations),
        "trained_horizons": list(predictor.trained_horizons()),
        "horizons": horizons_out,
    }


#: Predictor kinds rebuildable from a persisted state envelope.
_PREDICTOR_KINDS = {
    "threshold": lambda: ThresholdFailurePredictor(),
    "learned": lambda: LearnedFailurePredictor(),
    "multi_horizon": lambda: MultiHorizonPredictor(),
}


def predictor_state(predictor) -> Optional[Dict[str, object]]:
    """A ``(kind, state)`` envelope for any persistable risk predictor.

    ``None`` for an absent predictor (the node will lazily default to
    the threshold predictor, exactly as before the snapshot).
    """
    if predictor is None or not hasattr(predictor, "state_dict"):
        return None
    kind = getattr(predictor, "KIND", None)
    if kind not in _PREDICTOR_KINDS:
        return None
    return {"kind": kind, "state": predictor.state_dict()}


def predictor_from_state(envelope: Optional[Mapping[str, object]]):
    """Rebuild a risk predictor saved by :func:`predictor_state`."""
    if envelope is None:
        return None
    kind = str(envelope["kind"])
    if kind not in _PREDICTOR_KINDS:
        raise ConfigurationError(f"unknown risk-predictor kind {kind!r}")
    predictor = _PREDICTOR_KINDS[kind]()
    predictor.load_state_dict(envelope["state"])  # type: ignore[arg-type]
    return predictor
