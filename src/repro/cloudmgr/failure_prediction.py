"""Node-failure prediction integrated with the resource manager.

Paper Section 5.B: "UniServer's approach is to extend OpenStack framework
and have an integrated fault tolerance component, by adapting existing or
developing new techniques to efficiently predict the system level
failures and proactively migrate the running workloads on the healthy
nodes."

Two predictors are provided:

* :class:`ThresholdFailurePredictor` — unsupervised, in the spirit of the
  log-analysis detectors the paper surveys [19]–[25]: a risk score from
  recent error rates, reliability trend and refresh/voltage aggression.
* :class:`LearnedFailurePredictor` — supervised logistic model trained on
  (node features → failed-within-horizon) labels collected from history,
  reusing :class:`~repro.daemons.predictor.LogisticModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S
from ..core.exceptions import ConfigurationError, PredictionError
from ..daemons.predictor import LogisticModel
from .node import ComputeNode
from .telemetry import TelemetryService

NODE_FEATURES = (
    "ce_rate",              # recent correctable errors per sample
    "reliability",          # UniServer reliability metric
    "voltage_margin_used",  # how deep below nominal the cores sit
    "refresh_relaxation",   # log2 of the worst refresh relaxation factor
    "utilization",
)


def node_features(node: ComputeNode,
                  telemetry: TelemetryService) -> np.ndarray:
    """Feature row describing a node's current risk posture."""
    nominal_v = node.platform.chip.spec.nominal.voltage_v
    active = node.platform.chip.active_cores()
    if active:
        margins = [
            1.0 - node.platform.core_point(c.core_id).voltage_v / nominal_v
            for c in active
        ]
        margin_used = max(margins)
    else:
        margin_used = 1.0
    relaxations = [
        d.refresh_interval_s / NOMINAL_REFRESH_INTERVAL_S
        for d in node.platform.memory.domains()
    ]
    return np.array([
        telemetry.recent_error_rate(node.name),
        node.reliability(),
        margin_used,
        float(np.log2(max(relaxations))),
        node.utilization(),
    ])


@dataclass(frozen=True)
class RiskAssessment:
    """A predictor's verdict on one node."""

    node: str
    risk: float
    at_risk: bool
    reason: str = ""


class ThresholdFailurePredictor:
    """Unsupervised risk scoring from error rates and margin aggression.

    The score composes multiplicative hazard terms; ``threshold`` divides
    healthy from at-risk.  Deliberately simple: this is the baseline the
    learned predictor is compared against in the migration ablation.
    """

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0 < threshold < 1:
            raise ConfigurationError("threshold must be in (0, 1)")
        self.threshold = threshold

    def assess(self, node: ComputeNode,
               telemetry: TelemetryService) -> RiskAssessment:
        """Risk verdict for one node."""
        features = node_features(node, telemetry)
        ce_rate, reliability, margin_used, refresh_log2, _util = features
        risk = 0.0
        reasons = []
        if ce_rate > 0:
            risk += min(0.5, 0.08 * ce_rate)
            reasons.append(f"ce_rate={ce_rate:.2f}")
        if reliability < 0.9:
            risk += (0.9 - reliability)
            reasons.append(f"reliability={reliability:.2f}")
        if margin_used > 0.15:
            risk += (margin_used - 0.15) * 2.0
            reasons.append(f"margin={margin_used:.2f}")
        if refresh_log2 > 5:  # beyond 32x nominal refresh
            risk += 0.1 * (refresh_log2 - 5)
            reasons.append(f"refresh=2^{refresh_log2:.1f}")
        risk = min(1.0, risk)
        return RiskAssessment(
            node=node.name, risk=risk, at_risk=risk >= self.threshold,
            reason=", ".join(reasons) or "healthy",
        )


@dataclass
class LabelledNodeObservation:
    """One training example for the learned predictor."""

    features: np.ndarray
    failed_within_horizon: bool


class LearnedFailurePredictor:
    """Supervised node-failure predictor on collected history."""

    def __init__(self, threshold: float = 0.5,
                 model: Optional[LogisticModel] = None) -> None:
        if not 0 < threshold < 1:
            raise ConfigurationError("threshold must be in (0, 1)")
        self.threshold = threshold
        self.model = model or LogisticModel(epochs=300)
        self._observations: List[LabelledNodeObservation] = []

    def observe(self, node: ComputeNode, telemetry: TelemetryService,
                failed_within_horizon: bool) -> None:
        """Record one labelled snapshot for later training."""
        self._observations.append(LabelledNodeObservation(
            features=node_features(node, telemetry),
            failed_within_horizon=failed_within_horizon,
        ))

    @property
    def n_observations(self) -> int:
        """Number of labelled snapshots collected."""
        return len(self._observations)

    def train(self) -> None:
        """Fit the model on the collected observations."""
        if len(self._observations) < 10:
            raise PredictionError(
                "need at least 10 observations to train the node predictor"
            )
        features = np.vstack([o.features for o in self._observations])
        labels = np.array([
            1.0 if o.failed_within_horizon else 0.0
            for o in self._observations
        ])
        self.model.fit(features, labels)

    def assess(self, node: ComputeNode,
               telemetry: TelemetryService) -> RiskAssessment:
        """Risk verdict for one node."""
        if not self.model.is_trained:
            raise PredictionError("train the node predictor first")
        features = node_features(node, telemetry)
        risk = float(self.model.predict_proba(features)[0])
        return RiskAssessment(
            node=node.name, risk=risk, at_risk=risk >= self.threshold,
            reason=f"learned risk {risk:.3f}",
        )
