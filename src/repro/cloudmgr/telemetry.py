"""Fine-grained VM and node monitoring.

Paper Section 4.B: "Our extended version of OpenStack includes support
for monitoring VMs and determining their dynamically changing
characteristics and virtual resource utilization at a finer granularity
than the existing state-of-the-art."

The telemetry service keeps rolling windows of per-VM and per-node
samples; its anomaly detector (EWMA ± k·sigma bands, in the spirit of the
unsupervised detectors the paper cites [20][21]) flags the behavioural
shifts the failure predictor consumes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class VMSample:
    """Per-VM utilization sample."""

    timestamp: float
    vm_name: str
    node: str
    cpu_utilization: float
    memory_mb: float
    progress_rate: float     # fraction of workload completed per second


@dataclass(frozen=True)
class NodeSample:
    """Per-node health sample."""

    timestamp: float
    node: str
    utilization: float
    power_w: float
    reliability: float
    correctable_errors: int
    temperature_c: float = 50.0


class RollingWindow:
    """Bounded sample window with EWMA-based anomaly detection."""

    def __init__(self, maxlen: int = 120, alpha: float = 0.2) -> None:
        if maxlen < 2:
            raise ConfigurationError("window needs maxlen >= 2")
        if not 0 < alpha <= 1:
            raise ConfigurationError("alpha must be in (0, 1]")
        self._values: Deque[float] = deque(maxlen=maxlen)
        self._alpha = alpha
        self._ewma: Optional[float] = None
        self._ewmvar = 0.0

    def push(self, value: float) -> None:
        """Append a sample and update the EWMA state."""
        self._values.append(value)
        if self._ewma is None:
            self._ewma = value
            self._ewmvar = 0.0
        else:
            delta = value - self._ewma
            self._ewma += self._alpha * delta
            self._ewmvar = (1 - self._alpha) * (
                self._ewmvar + self._alpha * delta * delta
            )

    def __len__(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        """Current EWMA mean."""
        return self._ewma if self._ewma is not None else 0.0

    @property
    def std(self) -> float:
        """Current EWMA standard deviation."""
        return math.sqrt(max(0.0, self._ewmvar))

    def latest(self) -> Optional[float]:
        """Most recent sample, or None when empty."""
        return self._values[-1] if self._values else None

    def is_anomalous(self, value: float, k_sigma: float = 3.0,
                     min_samples: int = 10,
                     rel_floor: float = 1e-6) -> bool:
        """Whether ``value`` sits outside the EWMA ± k·sigma band.

        The band never collapses below ``rel_floor`` of the EWMA
        magnitude: a perfectly constant series has zero variance, and
        without the relative floor any ulp-level jitter on it would be
        flagged as anomalous.
        """
        if len(self._values) < min_samples or self._ewma is None:
            return False
        band = max(self.std * k_sigma,
                   rel_floor * abs(self._ewma), 1e-9)
        return abs(value - self._ewma) > band

    def state_dict(self) -> Dict[str, object]:
        """Serializable window state."""
        return {
            "values": list(self._values),
            "ewma": self._ewma,
            "ewmvar": self._ewmvar,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the window saved by :meth:`state_dict`."""
        self._values.clear()
        self._values.extend(float(v) for v in state["values"])  # type: ignore[union-attr]
        ewma = state["ewma"]
        self._ewma = None if ewma is None else float(ewma)  # type: ignore[arg-type]
        self._ewmvar = float(state["ewmvar"])  # type: ignore[arg-type]


class TelemetryService:
    """Collects and indexes VM/node samples for the control plane.

    Per-series sample history is *bounded*: each VM/node keeps at most
    ``retention`` samples (defaulting to the rolling-window length), so
    neither resident memory nor :meth:`state_dict` size grows with
    campaign duration.  The anomaly log is likewise capped at a multiple
    of the retention so a pathological series cannot grow it without
    bound either.
    """

    def __init__(self, window: int = 120,
                 retention: Optional[int] = None) -> None:
        if retention is not None and retention < 1:
            raise ConfigurationError("retention must be >= 1")
        self._window = window
        self._retention = retention if retention is not None else window
        self._anomaly_cap = max(1024, 8 * self._retention)
        self._vm_samples: Dict[str, Deque[VMSample]] = {}
        self._node_samples: Dict[str, Deque[NodeSample]] = {}
        self._vm_windows: Dict[Tuple[str, str], RollingWindow] = {}
        self._node_windows: Dict[Tuple[str, str], RollingWindow] = {}
        self.anomalies: Deque[str] = deque(maxlen=self._anomaly_cap)

    @property
    def retention(self) -> int:
        """Maximum samples retained per VM/node series."""
        return self._retention

    # -- ingestion -----------------------------------------------------------

    def _window_for(self, table: Dict, key: Tuple[str, str]) -> RollingWindow:
        if key not in table:
            table[key] = RollingWindow(maxlen=self._window)
        return table[key]

    def _series_for(self, table: Dict, key: str) -> Deque:
        if key not in table:
            table[key] = deque(maxlen=self._retention)
        return table[key]

    def record_vm(self, sample: VMSample) -> None:
        """Ingest one per-VM sample (and check for anomalies)."""
        self._series_for(self._vm_samples, sample.vm_name).append(sample)
        for metric, value in (
            ("cpu", sample.cpu_utilization),
            ("mem", sample.memory_mb),
            ("rate", sample.progress_rate),
        ):
            window = self._window_for(
                self._vm_windows, (sample.vm_name, metric))
            if window.is_anomalous(value):
                self.anomalies.append(
                    f"t={sample.timestamp:.1f} vm={sample.vm_name} "
                    f"metric={metric} value={value:.4g}"
                )
            window.push(value)

    def record_node(self, sample: NodeSample) -> None:
        """Ingest one per-node sample (and check for anomalies)."""
        self._series_for(self._node_samples, sample.node).append(sample)
        for metric, value in (
            ("util", sample.utilization),
            ("power", sample.power_w),
            ("reliability", sample.reliability),
            ("ce", float(sample.correctable_errors)),
        ):
            window = self._window_for(self._node_windows,
                                      (sample.node, metric))
            if window.is_anomalous(value):
                self.anomalies.append(
                    f"t={sample.timestamp:.1f} node={sample.node} "
                    f"metric={metric} value={value:.4g}"
                )
            window.push(value)

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable service state.

        Window tables are keyed by ``(name, metric)`` tuples, which JSON
        objects cannot hold — they are flattened to ``[key..., state]``
        rows, preserving insertion order.
        """
        return {
            "vm_samples": {name: [asdict(s) for s in samples]
                           for name, samples in self._vm_samples.items()},
            "node_samples": {name: [asdict(s) for s in samples]
                             for name, samples in self._node_samples.items()},
            "vm_windows": [[name, metric, window.state_dict()]
                           for (name, metric), window
                           in self._vm_windows.items()],
            "node_windows": [[name, metric, window.state_dict()]
                             for (name, metric), window
                             in self._node_windows.items()],
            "anomalies": list(self.anomalies),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the service saved by :meth:`state_dict`.

        Series longer than the current retention cap (e.g. a snapshot
        written by an uncapped service) keep their newest samples.
        """
        self._vm_samples = {
            str(name): deque((VMSample(**s) for s in samples),
                             maxlen=self._retention)
            for name, samples in state["vm_samples"].items()}  # type: ignore[union-attr]
        self._node_samples = {
            str(name): deque((NodeSample(**s) for s in samples),
                             maxlen=self._retention)
            for name, samples in state["node_samples"].items()}  # type: ignore[union-attr]
        self._vm_windows = {}
        for name, metric, window_state in state["vm_windows"]:  # type: ignore[misc]
            window = RollingWindow(maxlen=self._window)
            window.load_state_dict(window_state)
            self._vm_windows[(str(name), str(metric))] = window
        self._node_windows = {}
        for name, metric, window_state in state["node_windows"]:  # type: ignore[misc]
            window = RollingWindow(maxlen=self._window)
            window.load_state_dict(window_state)
            self._node_windows[(str(name), str(metric))] = window
        self.anomalies = deque((str(a) for a in state["anomalies"]),  # type: ignore[union-attr]
                               maxlen=self._anomaly_cap)

    # -- queries ------------------------------------------------------------

    def vm_history(self, vm_name: str) -> List[VMSample]:
        """All samples recorded for a VM."""
        return list(self._vm_samples.get(vm_name, []))

    def node_history(self, node: str) -> List[NodeSample]:
        """All samples recorded for a node."""
        return list(self._node_samples.get(node, []))

    def node_trend(self, node: str, metric: str) -> Optional[RollingWindow]:
        """The rolling window of one node metric, if any."""
        return self._node_windows.get((node, metric))

    def recent_error_rate(self, node: str, samples: int = 10) -> float:
        """Mean correctable-error count over the last ``samples`` samples."""
        history = self._node_samples.get(node)
        if not history:
            return 0.0
        recent = list(history)[-samples:]
        return sum(s.correctable_errors for s in recent) / len(recent)
