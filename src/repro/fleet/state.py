"""Fleet configuration and struct-of-arrays fleet state.

The scalar stack models one node as a graph of Python objects; at a
thousand nodes the per-step attribute churn dominates the run.  The
fleet layer flips the layout: one :class:`FleetState` holds every
per-node quantity as a numpy array (struct-of-arrays), and the batch
models in :mod:`repro.fleet.vectors` advance a whole shard per call.

Two invariants make the layout safe to shard:

* every dynamic array is indexed by node (shape ``(n,)``, or
  ``(n, lanes)`` with reductions only along axis 1), so stepping a
  contiguous slice of nodes touches no other node's state; and
* the static per-component arrays (core Vmin spread, DRAM retention
  weakness) are pure functions of the per-node counter keys, which
  derive from the same ``SeedSequence`` spawn discipline the scalar
  rack uses — a rebuilt shard always regenerates them bit-identically.

``state_dict``/``load_state_dict`` round-trip only the dynamic arrays;
statics are regenerated from :class:`FleetConfig` on rebuild, mirroring
the rebuild-from-config-then-overlay protocol of
:class:`~repro.persistence.campaign.PersistentCampaign`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class FleetConfig:
    """Shape and physics of a homogeneous vectorized fleet.

    The hardware constants mirror the scalar models —
    :class:`~repro.hardware.power.CorePowerModel` (CV²fα dynamic power,
    exponential voltage/temperature leakage),
    :class:`~repro.hardware.thermal.ThermalModel` (exact-exponential RC
    step, temperature-halved DRAM retention) and the margin/droop
    sampling of the PDN layer — reduced to the per-step hot path.
    """

    n_nodes: int = 64
    seed: int = 0
    step_s: float = 60.0
    cores_per_node: int = 8
    vcpus_per_core: int = 2
    dimms_per_node: int = 4
    #: Supply/margin model (volts).
    nominal_v: float = 1.00
    margin_v: float = 0.12
    vmin_mean_v: float = 0.78
    vmin_sigma_v: float = 0.015
    vmin_jitter_v: float = 0.004
    droop_base_v: float = 0.045
    droop_sigma: float = 0.30
    #: CMOS power model (per core) and platform floor.
    frequency_hz: float = 2.4e9
    c_eff_f: float = 1.1e-9
    leak_per_core_w: float = 1.8
    leak_v_exp: float = 3.0
    leak_t_exp: float = 0.02
    leak_t_ref_c: float = 50.0
    idle_platform_w: float = 28.0
    #: Thermal RC.
    ambient_c: float = 25.0
    r_th_c_per_w: float = 0.45
    tau_s: float = 120.0
    #: Fault-domain topology (node -> rack -> PDU / cooling zone).
    #: Contiguous by construction — rack ``r`` owns nodes
    #: ``[r * nodes_per_rack, (r+1) * nodes_per_rack)`` — so domains
    #: compose with contiguous shard views.  The last rack/PDU/zone may
    #: be partial when the counts do not divide evenly.
    nodes_per_rack: int = 8
    racks_per_pdu: int = 2
    racks_per_cooling_zone: int = 2
    #: Correlated-fault physics: a PDU brownout sags the rail by up to
    #: ``brownout_depth_v`` (scaled by spec magnitude) and each affected
    #: node crash-rolls per step against ``magnitude *
    #: brownout_crash_scale``; a cooling failure ramps the zone's
    #: effective ambient by up to ``cooling_ramp_c``.
    brownout_depth_v: float = 0.06
    brownout_crash_scale: float = 0.02
    cooling_ramp_c: float = 20.0
    #: DRAM refresh / retention model (per DIMM).
    dram_base_w_per_dimm: float = 0.9
    dram_refresh_w_per_dimm: float = 0.35
    refresh_nominal_s: float = 0.064
    refresh_relaxed_s: float = 0.256
    retention_ref_c: float = 40.0
    retention_halving_c: float = 10.0
    retention_weak_sigma: float = 0.8
    retention_fail_scale: float = 1e-3
    #: Heterogeneous-reliability DIMM tiers.  The first
    #: ``strong_dimms_per_node`` DIMM lanes are pinned at nominal
    #: refresh even under adopted margins, the next
    #: ``normal_dimms_per_node`` lanes relax only to
    #: ``refresh_normal_s``, and the remainder relax all the way to
    #: ``refresh_relaxed_s``.  Both counts default to zero, which keeps
    #: the legacy uniform fleet — every tier-aware kernel branch is
    #: gated on :attr:`tiered` so untiered runs stay byte-identical.
    strong_dimms_per_node: int = 0
    normal_dimms_per_node: int = 0
    refresh_normal_s: float = 0.128
    #: Per-node margin governor (the zone-level EOP stance).
    adopt_margins: bool = True
    error_budget_per_window: int = 4
    review_every_steps: int = 10
    probation_steps: int = 30

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("the fleet needs at least one node")
        if self.step_s <= 0:
            raise ConfigurationError("step must be positive")
        if self.cores_per_node < 1 or self.dimms_per_node < 1:
            raise ConfigurationError(
                "nodes need at least one core and one DIMM")
        if self.vcpus_per_core < 1:
            raise ConfigurationError("vcpus_per_core must be >= 1")
        if self.review_every_steps < 1:
            raise ConfigurationError("review_every_steps must be >= 1")
        if self.refresh_relaxed_s < self.refresh_nominal_s:
            raise ConfigurationError(
                "relaxed refresh cannot be shorter than nominal")
        if (self.nodes_per_rack < 1 or self.racks_per_pdu < 1
                or self.racks_per_cooling_zone < 1):
            raise ConfigurationError(
                "fault-domain topology counts must be >= 1")
        if self.brownout_depth_v < 0 or self.cooling_ramp_c < 0:
            raise ConfigurationError(
                "brownout depth and cooling ramp must be >= 0")
        if not 0 <= self.brownout_crash_scale <= 1:
            raise ConfigurationError(
                "brownout_crash_scale must be in [0, 1]")
        if self.strong_dimms_per_node < 0 or self.normal_dimms_per_node < 0:
            raise ConfigurationError("tier DIMM counts must be >= 0")
        if (self.strong_dimms_per_node + self.normal_dimms_per_node
                > self.dimms_per_node):
            raise ConfigurationError(
                "strong + normal DIMMs cannot exceed dimms_per_node")
        if not (self.refresh_nominal_s <= self.refresh_normal_s
                <= self.refresh_relaxed_s):
            raise ConfigurationError(
                "refresh_normal_s must sit between nominal and relaxed")

    @property
    def vcpus_per_node(self) -> int:
        """vCPU capacity of one node."""
        return self.cores_per_node * self.vcpus_per_core

    @property
    def tiered(self) -> bool:
        """Whether any DIMM lane is pinned to a non-relaxed tier."""
        return self.strong_dimms_per_node + self.normal_dimms_per_node > 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for snapshots and reports."""
        return asdict(self)

    @staticmethod
    def from_dict(state: Dict[str, object]) -> "FleetConfig":
        """Rebuild a config saved by :meth:`as_dict`."""
        return FleetConfig(**state)  # type: ignore[arg-type]


#: Dynamic per-node arrays: (attribute, dtype).  Everything here is
#: saved by ``state_dict`` and shipped between shard workers; the
#: statics (keys, per-core Vmin, per-DIMM retention weakness) are
#: regenerated from config instead.
DYNAMIC_FIELDS: Tuple[Tuple[str, object], ...] = (
    ("used_vcpus", np.int64),
    ("temperature_c", np.float64),
    ("power_w", np.float64),
    ("energy_j", np.float64),
    ("margin_on", np.bool_),
    ("window_violations", np.int64),
    ("probation_until_step", np.int64),
    ("violations_total", np.int64),
    ("retention_errors_total", np.int64),
    ("demotions", np.int64),
    ("adoptions", np.int64),
    ("down_until_step", np.int64),
    ("quarantined", np.bool_),
    ("crashes_total", np.int64),
    ("domain_demotions", np.int64),
    ("refresh_energy_strong_j", np.float64),
    ("refresh_energy_normal_j", np.float64),
    ("refresh_energy_relaxed_j", np.float64),
    ("retention_errors_normal", np.int64),
    ("retention_errors_relaxed", np.int64),
)


class FleetState:
    """Struct-of-arrays state for ``n`` homogeneous nodes.

    Built by :func:`repro.fleet.vectors.build_fleet_state`; sliced into
    shard views with :meth:`view` (views share memory with the parent
    arrays, so stepping a view advances the global state in place).
    """

    def __init__(self, config: FleetConfig, keys: np.ndarray,
                 vmin_core_v: np.ndarray,
                 retention_weak: np.ndarray) -> None:
        n = keys.shape[0]
        self.config = config
        self.n = n
        self.keys = keys
        self.vmin_core_v = vmin_core_v
        self.retention_weak = retention_weak
        self.used_vcpus = np.zeros(n, dtype=np.int64)
        self.temperature_c = np.full(n, config.ambient_c,
                                     dtype=np.float64)
        self.power_w = np.zeros(n, dtype=np.float64)
        self.energy_j = np.zeros(n, dtype=np.float64)
        self.margin_on = np.full(n, config.adopt_margins, dtype=np.bool_)
        self.window_violations = np.zeros(n, dtype=np.int64)
        self.probation_until_step = np.zeros(n, dtype=np.int64)
        self.violations_total = np.zeros(n, dtype=np.int64)
        self.retention_errors_total = np.zeros(n, dtype=np.int64)
        self.demotions = np.zeros(n, dtype=np.int64)
        self.adoptions = np.zeros(n, dtype=np.int64)
        #: Chaos/supervision state: a node is DOWN while
        #: ``step < down_until_step`` (post-crash outage), and
        #: permanently once ``quarantined`` (its shard worker exhausted
        #: its restart budget).
        self.down_until_step = np.zeros(n, dtype=np.int64)
        self.quarantined = np.zeros(n, dtype=np.bool_)
        self.crashes_total = np.zeros(n, dtype=np.int64)
        #: Precautionary demotions by the correlated-demotion guard
        #: (whole fault domain demoted at a window start).
        self.domain_demotions = np.zeros(n, dtype=np.int64)
        #: Per-tier accounting, populated only by tiered configs
        #: (``config.tiered``); flat zeros otherwise.  Kept 1-D per
        #: node — snapshot resume rebuilds dynamic fields with
        #: ``np.zeros(n, dtype)``.
        self.refresh_energy_strong_j = np.zeros(n, dtype=np.float64)
        self.refresh_energy_normal_j = np.zeros(n, dtype=np.float64)
        self.refresh_energy_relaxed_j = np.zeros(n, dtype=np.float64)
        self.retention_errors_normal = np.zeros(n, dtype=np.int64)
        self.retention_errors_relaxed = np.zeros(n, dtype=np.int64)

    def view(self, lo: int, hi: int) -> "FleetState":
        """A shard view over nodes ``[lo, hi)`` sharing this state's
        memory — mutations through the view land in the parent arrays."""
        if not 0 <= lo < hi <= self.n:
            raise ConfigurationError(
                f"shard bounds [{lo}, {hi}) outside fleet of {self.n}")
        shard = FleetState.__new__(FleetState)
        shard.config = self.config
        shard.n = hi - lo
        shard.keys = self.keys[lo:hi]
        shard.vmin_core_v = self.vmin_core_v[lo:hi]
        shard.retention_weak = self.retention_weak[lo:hi]
        for name, _ in DYNAMIC_FIELDS:
            setattr(shard, name, getattr(self, name)[lo:hi])
        return shard

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Dynamic arrays as JSON-serializable lists."""
        state: Dict[str, object] = {"n_nodes": self.n}
        for name, _ in DYNAMIC_FIELDS:
            state[name] = getattr(self, name).tolist()
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Overlay dynamic arrays saved by :meth:`state_dict`."""
        if int(state["n_nodes"]) != self.n:  # type: ignore[arg-type]
            raise ConfigurationError(
                f"state is for {state['n_nodes']} nodes, "
                f"this fleet has {self.n}")
        for name, dtype in DYNAMIC_FIELDS:
            array = getattr(self, name)
            if name in state:
                array[:] = np.asarray(state[name], dtype=dtype)
            else:
                # Snapshot predates this field (e.g. the per-tier
                # counters); its run never populated it.
                array[:] = 0


def shard_bounds(n_nodes: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` node ranges for each shard.

    Sizes differ by at most one (the first ``n % shards`` shards get the
    extra node), matching ``np.array_split`` semantics.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if shards > n_nodes:
        raise ConfigurationError(
            f"cannot split {n_nodes} node(s) into {shards} shard(s)")
    base, extra = divmod(n_nodes, shards)
    bounds = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds
