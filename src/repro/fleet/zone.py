"""Zone controllers and the thin fleet scheduler above them.

The monolithic :class:`~repro.cloudmgr.cloud.CloudController` owns every
node in one object; at fleet scale that is both a single point of
control and a single Python hot loop.  This module splits it:

* a :class:`ZoneController` **is** a ``CloudController`` scoped to one
  shard of nodes — it owns their heartbeats, health beliefs, SLA
  tracking, recovery ladder and local failover, unchanged;
* a :class:`FleetScheduler` routes placements and cross-zone
  migrations over the zones' published views, merges their summaries,
  and never touches a node object directly.

**Determinism contract** (pinned by ``tests/test_fleet_zone.py``): a
rack split into zones produces a report byte-identical to the monolith.
Two mechanisms make that hold:

* :meth:`FleetScheduler.step` runs the monolith's control loop
  *phase-major*, not zone-major — every node steps, then every
  heartbeat lands, then beliefs reconcile in global name order, then
  risk handling, then accounting — so cross-zone actions interleave
  exactly as the monolith's did.  Zones are contiguous node-index
  ranges, so zone-major iteration inside a phase equals the monolith's
  insertion-order iteration.
* Placement and failover scheduling run over the *union* of every
  zone's schedulable views with the shared
  :class:`~repro.cloudmgr.scheduler.FilterScheduler`, so the candidate
  set — and therefore the choice — matches the monolith's.

Known divergence: each zone draws evacuation-retry backoff jitter from
its own stream where the monolith used one; the streams only advance
when migrations abort mid-flight, so clean runs are unaffected.
"""

from __future__ import annotations

from dataclasses import asdict, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cloudmgr.cloud import CloudController, ControllerStats, _RetryState
from ..cloudmgr.node import ComputeNode, build_rack
from ..cloudmgr.scheduler import FilterScheduler, Placement
from ..cloudmgr.simulation import (
    RackExperiment,
    TraceDrivenSimulation,
    run_trace_experiment,
)
from ..core.clock import SimClock, step_count
from ..core.exceptions import ConfigurationError, SchedulingError
from ..hypervisor.vm import VirtualMachine, VMState
from ..resilience.health import NodeView
from .state import shard_bounds

#: ControllerStats counters merged by summation (``steps`` is the same
#: in every zone and merged by max; ``repair_times_s`` concatenates).
_SUMMED_STATS = tuple(
    f.name for f in fields(ControllerStats)
    if f.name not in ("steps", "repair_times_s"))


class ZoneController(CloudController):
    """One zone of the fleet: a CloudController over a node shard.

    Standalone it behaves exactly like its parent.  Under a
    :class:`FleetScheduler` (``self.fleet`` set), failover and
    evacuation delegate upward so targets span every zone.
    """

    def __init__(self, *args, zone: str = "zone0", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.zone = zone
        #: Backref set by FleetScheduler; None when standalone.
        self.fleet: Optional["FleetScheduler"] = None

    def zone_summary(self) -> Dict[str, object]:
        """The zone's published summary view (the routing surface)."""
        views = self.health.schedulable_views()
        return {
            "zone": self.zone,
            "nodes": len(self.nodes),
            "schedulable": len(views),
            "free_vcpus": int(sum(v.free_vcpus() for v in views)),
            "tracked_vms": len(self.tracker.tracked_vms()),
            "steps": self.stats.steps,
            "launched": self.stats.launched,
            "failovers": self.stats.failovers,
            "evacuations": self.stats.evacuations,
        }

    def _failover_vms(self, source: ComputeNode) -> None:
        if self.fleet is not None:
            self.fleet._failover_vms(self, source)
        else:
            super()._failover_vms(source)

    def _attempt_evacuation(self, name: str) -> None:
        if self.fleet is not None:
            self.fleet._attempt_evacuation(self, name)
        else:
            super()._attempt_evacuation(name)


class FleetScheduler:
    """Thin placement/migration router over a set of zones.

    Presents the same surface :class:`TraceDrivenSimulation` and the
    report layer use on a monolithic controller (``launch``, ``locate``,
    ``forget_vm``, ``step``, ``node_list``, ``stats``,
    ``metrics_snapshot`` …), while every node-owning concern lives in
    the zones.
    """

    def __init__(self, zones: Sequence[ZoneController],
                 scheduler: Optional[FilterScheduler] = None,
                 max_migrations_per_rack_step: Optional[int] = None,
                 nodes_per_rack: int = 8) -> None:
        if not zones:
            raise ConfigurationError("the fleet needs at least one zone")
        if max_migrations_per_rack_step is not None \
                and max_migrations_per_rack_step < 1:
            raise ConfigurationError(
                "max_migrations_per_rack_step must be >= 1")
        if nodes_per_rack < 1:
            raise ConfigurationError("nodes_per_rack must be >= 1")
        zone_names = [z.zone for z in zones]
        if len(set(zone_names)) != len(zone_names):
            raise ConfigurationError("zone names must be unique")
        clock = zones[0].clock
        if any(z.clock is not clock for z in zones):
            raise ConfigurationError("zones must share one clock")
        self.zones: List[ZoneController] = list(zones)
        self.scheduler = scheduler or zones[0].scheduler
        self.clock = clock
        self.chaos = zones[0].chaos
        self.proactive_migration = zones[0].proactive_migration
        self._zone_by_node: Dict[str, ZoneController] = {}
        for zone in self.zones:
            zone.fleet = self
            for name in zone.nodes:
                if name in self._zone_by_node:
                    raise ConfigurationError(
                        f"node {name!r} appears in two zones")
                self._zone_by_node[name] = zone
        #: The fleet-wide placement trace, in admission order (the
        #: per-zone logs only see their own share).
        self.placement_log: List[Placement] = []
        #: Zone-evacuation backpressure (None = off, the identity-
        #: contract default): a rack that already received this many
        #: evacuated VMs within the current step stops being offered
        #: as a target, so a wave of simultaneous evacuations spreads
        #: across racks instead of dogpiling the first healthy one.
        self.max_migrations_per_rack_step = max_migrations_per_rack_step
        self.nodes_per_rack = nodes_per_rack
        self._rack_inflow: Dict[int, int] = {}
        #: Evacuations that found no target only because of the cap.
        self.backpressure_deferrals = 0

    # -- topology ---------------------------------------------------------

    @property
    def nodes(self) -> Dict[str, ComputeNode]:
        """Merged name->node map, zone-major (= node-index) order."""
        merged: Dict[str, ComputeNode] = {}
        for zone in self.zones:
            merged.update(zone.nodes)
        return merged

    def node_list(self) -> List[ComputeNode]:
        """All nodes, zone-major (= monolith insertion) order."""
        return [node for zone in self.zones
                for node in zone.node_list()]

    def zone_of(self, node_name: str) -> ZoneController:
        """The zone owning a node."""
        try:
            return self._zone_by_node[node_name]
        except KeyError:
            raise KeyError(f"node {node_name!r} is not in any zone") \
                from None

    def zone_summaries(self) -> Dict[str, Dict[str, object]]:
        """Every zone's published summary view, zone-name sorted."""
        return {zone.zone: zone.zone_summary()
                for zone in sorted(self.zones, key=lambda z: z.zone)}

    # -- placement --------------------------------------------------------

    def _global_schedulable(self, exclude: str = "",
                            honor_probation: bool = False) -> List[NodeView]:
        """Union of every zone's schedulable views.

        The same candidate set the monolith would offer its scheduler;
        ``honor_probation`` additionally drops nodes still on
        post-recovery probation (the failover rule).
        """
        views: List[NodeView] = []
        for zone in self.zones:
            for view in zone.health.schedulable_views():
                if view.name == exclude:
                    continue
                if honor_probation and view.name in zone._probation_until:
                    continue
                views.append(view)
        return views

    def launch(self, vm: VirtualMachine, sla) -> Placement:
        """Admit a VM: schedule fleet-wide, place in the owning zone."""
        placement = self.scheduler.schedule(
            self._global_schedulable(), vm, sla)
        zone = self._zone_by_node[placement.node]
        zone.place(vm, sla, placement)
        self.placement_log.append(placement)
        return placement

    def locate(self, vm_name: str) -> ComputeNode:
        """The node currently hosting a VM, fleet-wide."""
        for zone in self.zones:
            try:
                return zone.locate(vm_name)
            except KeyError:
                continue
        raise KeyError(f"VM {vm_name!r} is not placed on any node")

    def forget_vm(self, vm_name: str) -> None:
        """Drop per-VM bookkeeping in whichever zone holds it."""
        for zone in self.zones:
            zone.forget_vm(vm_name)

    # -- cross-zone moves -------------------------------------------------

    def _transfer_vm(self, vm_name: str, source: ZoneController,
                     destination: ZoneController) -> None:
        """Move a VM's control-plane records between zones.

        The hosting zone must own the SLA record and restart/outage
        bookkeeping, or its measurement loop would silently skip the
        arrival (and the source zone would keep billing a ghost).
        """
        destination.tracker.transfer_in(
            vm_name, source.tracker.transfer_out(vm_name))
        if vm_name in source._seen_restarts:
            destination._seen_restarts[vm_name] = \
                source._seen_restarts.pop(vm_name)
        if vm_name in source._vm_down_since:
            destination._vm_down_since[vm_name] = \
                source._vm_down_since.pop(vm_name)
        source._vm_homes.pop(vm_name, None)

    def _failover_vms(self, zone: ZoneController,
                      source: ComputeNode) -> None:
        """Monolith failover with fleet-wide targets (see parent)."""
        for vm in list(source.hypervisor.vms):
            if vm.name not in zone.tracker.tracked_vms():
                continue
            sla = zone.tracker.sla_for(vm.name)
            targets = self._global_schedulable(
                exclude=source.name, honor_probation=True)
            try:
                placement = self.scheduler.schedule(targets, vm, sla)
            except SchedulingError:
                zone.stats.failed_failovers += 1
                continue
            dest_zone = self._zone_by_node[placement.node]
            destination = dest_zone.nodes[placement.node]
            if not destination.can_host(vm):
                zone.stats.failed_failovers += 1
                continue
            source.hypervisor.detach_vm(vm.name)
            requirement = source.qos.requirement_for(vm.name)
            source.qos.unregister(vm.name)
            if vm.is_active:
                vm.fail()
            if vm.state is VMState.FAILED:
                vm.restart()
            vm.state = VMState.PENDING
            destination.hypervisor.create_vm(vm)
            if requirement is not None:
                destination.qos.register(vm.name, requirement)
            dest_zone.health.view(destination.name).reserve(
                vm.vcpus, vm.guest_os_mb + vm.workload.demand.memory_mb)
            if dest_zone is not zone:
                self._transfer_vm(vm.name, zone, dest_zone)
            dest_zone._vm_homes[vm.name] = destination.name
            zone.stats.failovers += 1
            source.runtime.metrics.inc("resilience.failovers")
            destination.runtime.metrics.inc(
                "cloudmgr.migration.vms_received")

    def _rack_of(self, node_name: str) -> int:
        """Contiguous rack index from ``node{i}`` (-1 = catch-all)."""
        suffix = node_name[4:] if node_name.startswith("node") else ""
        if not suffix.isdigit() or str(int(suffix)) != suffix:
            return -1
        return int(suffix) // self.nodes_per_rack

    def _attempt_evacuation(self, zone: ZoneController,
                            name: str) -> None:
        """Monolith evacuation with fleet-wide targets (see parent)."""
        now = self.clock.now
        node = zone.nodes[name]
        targets = self._global_schedulable(exclude=name)
        cap = self.max_migrations_per_rack_step
        if cap is not None and targets:
            open_targets = [
                view for view in targets
                if self._rack_inflow.get(self._rack_of(view.name), 0) < cap]
            if not open_targets:
                self.backpressure_deferrals += 1
            targets = open_targets
        attempted_from = len(zone.migrations.records)
        moved = zone.migrations.evacuate(
            node, targets, zone.tracker, proactive=True,
            resolve=lambda destination:
                self._zone_by_node[destination].nodes[destination])
        failed = [r for r in zone.migrations.records[attempted_from:]
                  if not r.succeeded]
        if moved:
            zone.stats.evacuations += 1
            node.runtime.metrics.inc("cloudmgr.migration.evacuations")
            for record in moved:
                rack = self._rack_of(record.destination)
                self._rack_inflow[rack] = self._rack_inflow.get(rack, 0) + 1
                dest_zone = self._zone_by_node[record.destination]
                if dest_zone is not zone:
                    self._transfer_vm(record.vm_name, zone, dest_zone)
                dest_zone._vm_homes[record.vm_name] = record.destination
                dest_zone.nodes[record.destination].runtime.metrics.inc(
                    "cloudmgr.migration.vms_received")
        if not failed:
            zone._evac_retry.pop(name, None)
            return
        node.runtime.metrics.inc(
            "resilience.migration.aborts", len(failed))
        retry = zone.degradation.retry
        state = zone._evac_retry.get(name) or _RetryState(
            attempt=0, first_at=now, next_at=now)
        attempt = state.attempt + 1
        if retry.should_retry(attempt, state.first_at, now):
            zone._evac_retry[name] = _RetryState(
                attempt=attempt, first_at=state.first_at,
                next_at=now + retry.delay_s(attempt, zone._rng))
        else:
            zone._evac_retry.pop(name, None)

    def _handle_risk(self) -> None:
        """Risk-driven evacuation over all zones, global name order."""
        now = self.clock.now
        pairs: List[Tuple[ZoneController, NodeView]] = sorted(
            ((zone, view) for zone in self.zones
             for view in zone.health.schedulable_views()),
            key=lambda pair: pair[1].name)
        for zone, view in pairs:
            beat = view.last
            if beat is None or beat.risk is None \
                    or not beat.risk.at_risk:
                continue
            if not beat.active_vms:
                continue
            pending = zone._evac_retry.get(view.name)
            if pending is not None and now < pending.next_at:
                continue
            if pending is not None:
                zone.stats.migration_retries += 1
            self._attempt_evacuation(zone, view.name)

    # -- the control loop -------------------------------------------------

    def step(self, dt_s: float = 1.0) -> None:
        """One control-loop iteration, phase-major across zones.

        Each phase sweeps every zone before the next begins; inside a
        phase, zones run in order and zones are contiguous node-index
        ranges — so the global node sequence each phase sees equals the
        monolith's, and the reports match byte-for-byte.
        """
        if dt_s <= 0:
            raise ConfigurationError("dt must be positive")
        self._rack_inflow.clear()
        for zone in self.zones:
            zone.stats.steps += 1
        if self.chaos is not None:
            self.chaos.apply(self.node_list(), self.clock.now)
        for zone in self.zones:
            for node in zone.node_list():
                node.step(dt_s)
                energy = node.hypervisor.stats.energy_j
                zone.stats.energy_j += energy \
                    - zone._last_energy[node.name]
                zone._last_energy[node.name] = energy
        for zone in self.zones:
            zone._ingest_heartbeats()
        reconcile: List[Tuple[ZoneController, NodeView]] = sorted(
            ((zone, view) for zone in self.zones
             for view in zone.health.views()),
            key=lambda pair: pair[1].name)
        for zone, view in reconcile:
            zone._reconcile_node(view)
        if self.proactive_migration:
            self._handle_risk()
        for zone in self.zones:
            zone._account_service(dt_s)

    def run(self, duration_s: float, dt_s: float = 1.0) -> None:
        """Run the control loop for a stretch of simulated time."""
        for _ in range(step_count(duration_s, dt_s)):
            self.step(dt_s)
            self.clock.advance_by(dt_s)

    # -- summaries --------------------------------------------------------

    @property
    def stats(self) -> ControllerStats:
        """Merged controller counters across zones.

        Counter fields sum; ``steps`` is identical per zone (merged by
        max); repair episodes concatenate zone-major.  ``energy_j``
        merges in zone-sum order, which may differ from the monolith's
        interleaved accumulation in the last ulp — reports therefore
        derive energy from the per-node hypervisor meters instead.
        """
        merged = ControllerStats()
        merged.steps = max(z.stats.steps for z in self.zones)
        for name in _SUMMED_STATS:
            setattr(merged, name,
                    sum(getattr(z.stats, name) for z in self.zones))
        merged.repair_times_s = [
            t for z in self.zones for t in z.stats.repair_times_s]
        return merged

    def metrics_snapshot(self) -> Dict[str, dict]:
        """Per-node metrics registries, globally node-name sorted."""
        merged = {}
        for zone in self.zones:
            merged.update(zone.metrics_snapshot())
        return {name: merged[name] for name in sorted(merged)}

    def availability_summary(self) -> Dict[str, float]:
        """Achieved availability per VM, merged across zone trackers."""
        merged: Dict[str, float] = {}
        for zone in self.zones:
            merged.update(zone.tracker.availability_summary())
        return merged

    def violations_total(self) -> int:
        """Summed SLA violations across zones."""
        return sum(z.tracker.violations_total() for z in self.zones)

    def repair_episodes(self) -> List[float]:
        """Closed plus still-open VM repair episodes, fleet-wide."""
        episodes: List[float] = []
        for zone in self.zones:
            episodes.extend(zone.repair_episodes())
        return episodes

    def fleet_availability(self) -> float:
        """Mean achieved availability across tracked VMs."""
        summary = self.availability_summary()
        if not summary:
            return 1.0
        return sum(summary.values()) / len(summary)

    def mttr_s(self) -> Optional[float]:
        """Mean VM service-restoration time (None without outages)."""
        episodes = self.repair_episodes()
        if not episodes:
            return None
        return sum(episodes) / len(episodes)

    def describe(self) -> str:
        """Human-readable multi-line summary, one block per zone."""
        lines = [f"fleet: {len(self.zones)} zones, "
                 f"{sum(len(z.nodes) for z in self.zones)} nodes"]
        for zone in self.zones:
            summary = zone.zone_summary()
            lines.append(
                f"  {summary['zone']}: {summary['nodes']} nodes, "
                f"{summary['schedulable']} schedulable, "
                f"{summary['tracked_vms']} tracked VMs")
        return "\n".join(lines)

    # -- persistence ------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable fleet state: zones plus the global trace."""
        return {
            "zones": {zone.zone: zone.state_dict()
                      for zone in self.zones},
            "placement_log": [asdict(p) for p in self.placement_log],
        }

    def load_state_dict(self, state: Dict[str, object],
                        vm_factory: Callable[[str], VirtualMachine],
                        ) -> None:
        """Restore the fleet saved by :meth:`state_dict`."""
        zone_states = state["zones"]
        for zone in self.zones:
            zone.load_state_dict(zone_states[zone.zone], vm_factory)  # type: ignore[index]
        self.placement_log = [
            Placement(**p) for p in state["placement_log"]]  # type: ignore[union-attr]


# -- builders -------------------------------------------------------------


def build_zoned_rack(n_nodes: int, shards: int, clock: SimClock,
                     seed: int = 0, *,
                     characterize: bool = False,
                     eop_policy=None,
                     proactive_migration: bool = True,
                     degradation=None,
                     chaos=None) -> FleetScheduler:
    """A rack split into ``shards`` contiguous zones under one router.

    Nodes come from the same :func:`~repro.cloudmgr.node.build_rack`
    call a monolith would make (identical SeedSequence spawns), the
    zones share one scheduler, one clock and one chaos engine — the
    preconditions of the zoned/monolith identity contract.
    """
    nodes = build_rack(n_nodes, clock=clock, seed=seed,
                       characterize=characterize, eop_policy=eop_policy)
    scheduler = FilterScheduler()
    zones = []
    for index, (lo, hi) in enumerate(shard_bounds(n_nodes, shards)):
        zones.append(ZoneController(
            clock, nodes[lo:hi], scheduler=scheduler,
            proactive_migration=proactive_migration,
            degradation=degradation, chaos=chaos, control_seed=seed,
            zone=f"zone{index}"))
    return FleetScheduler(zones, scheduler=scheduler)


def run_zoned_rack_experiment(n_nodes: int = 4, shards: int = 1,
                              duration_s: float = 3600.0, seed: int = 0,
                              characterize: bool = False,
                              eop_policy=None,
                              proactive_migration: bool = True,
                              base_rate_per_hour: float = 12.0,
                              step_s: float = 60.0,
                              degradation=None,
                              fault_plan=None,
                              chaos_seed=None,
                              chaos_rate_per_hour: float = 6.0,
                              chaos_intensity: float = 0.5) -> RackExperiment:
    """The zoned twin of :func:`~repro.cloudmgr.simulation.run_rack_experiment`.

    Same seed discipline, same trace, same per-node stack — only the
    control plane is sharded.  With ``shards=1`` this is a monolith in
    a one-zone coat; with more, the identity tests hold it to the same
    report bytes.

    ``chaos_seed`` (ignored when an explicit ``fault_plan`` is given)
    builds the *same* seeded fleet fault plan the vectorized campaign
    uses (:func:`~repro.fleet.chaos.fleet_fault_plan`) — node names
    line up (``node{i}``), so one plan drives both the object-walking
    :class:`~repro.resilience.chaos.ChaosEngine` here and the mask
    kernels of :class:`~repro.fleet.chaos.FleetChaos`.
    """
    from ..resilience.chaos import ChaosEngine
    from .chaos import fleet_fault_plan

    if n_nodes < 1:
        raise ConfigurationError("the rack needs at least one node")
    clock = SimClock()
    if fault_plan is None and chaos_seed is not None:
        fault_plan = fleet_fault_plan(
            n_nodes, duration_s, seed=chaos_seed,
            rate_per_hour=chaos_rate_per_hour,
            intensity=chaos_intensity)
    chaos = ChaosEngine(fault_plan) if fault_plan is not None else None
    fleet = build_zoned_rack(
        n_nodes, shards, clock, seed=seed, characterize=characterize,
        eop_policy=eop_policy, proactive_migration=proactive_migration,
        degradation=degradation, chaos=chaos)
    stats = run_trace_experiment(
        fleet, duration_s, trace_seed=seed,
        base_rate_per_hour=base_rate_per_hour, step_s=step_s)
    return RackExperiment(cloud=fleet, stats=stats)


__all__ = [
    "FleetScheduler",
    "ZoneController",
    "build_zoned_rack",
    "run_zoned_rack_experiment",
    "TraceDrivenSimulation",
]
