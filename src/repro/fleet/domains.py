"""Fault-domain topology: node -> rack -> PDU / cooling zone.

Correlated faults travel along shared infrastructure, not the node
index: a PDU brownout sags every node on the rail at once (the shared
exposure weaponized by the Scrooge-attack line in PAPERS.md), a chiller
failure bakes a whole cooling zone, a ToR/cable cut partitions a rack.
:class:`FaultDomainTopology` is the deterministic mapping that lets the
fleet's chaos and defense layers reason about those blast radii.

The layout is a pure function of :class:`~repro.fleet.state.FleetConfig`
(``nodes_per_rack``, ``racks_per_pdu``, ``racks_per_cooling_zone``), so
every shard worker, replay, and resume regenerates bit-identical domain
arrays — topology never needs to travel in a snapshot.  Domains are
contiguous over node indices by construction (rack ``r`` owns nodes
``[r * nodes_per_rack, (r+1) * nodes_per_rack)``), which composes with
the fleet's contiguous shard views: a domain mask sliced to a shard is
still elementwise over the shard's nodes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.exceptions import ConfigurationError
from .state import FleetConfig


def rack_name(index: int) -> str:
    """The rack naming convention for fault-plan specs."""
    return f"rack{index}"


def pdu_name(index: int) -> str:
    """The PDU naming convention for fault-plan specs."""
    return f"pdu{index}"


def cooling_zone_name(index: int) -> str:
    """The cooling-zone naming convention for fault-plan specs."""
    return f"cooling{index}"


def _domain_index(name: str, prefix: str, count: int) -> Optional[int]:
    """Strict ``{prefix}{i}`` parse; None for foreign/out-of-range."""
    if not name.startswith(prefix):
        return None
    suffix = name[len(prefix):]
    if not suffix.isdigit() or str(int(suffix)) != suffix:
        return None
    index = int(suffix)
    return index if 0 <= index < count else None


class FaultDomainTopology:
    """The fleet's physical fault domains as per-node index arrays.

    ``rack_of[i]`` / ``pdu_of[i]`` / ``cooling_of[i]`` give node ``i``'s
    rack, PDU rail, and cooling zone.  All three are contiguous,
    monotone non-decreasing int64 arrays, so a domain is always a
    contiguous node range and a per-node domain mask is elementwise.
    """

    def __init__(self, n_nodes: int, nodes_per_rack: int,
                 racks_per_pdu: int, racks_per_cooling_zone: int) -> None:
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        if (nodes_per_rack < 1 or racks_per_pdu < 1
                or racks_per_cooling_zone < 1):
            raise ConfigurationError(
                "fault-domain topology counts must be >= 1")
        self.n_nodes = n_nodes
        self.nodes_per_rack = nodes_per_rack
        self.racks_per_pdu = racks_per_pdu
        self.racks_per_cooling_zone = racks_per_cooling_zone
        nodes = np.arange(n_nodes, dtype=np.int64)
        self.rack_of = nodes // nodes_per_rack
        self.pdu_of = self.rack_of // racks_per_pdu
        self.cooling_of = self.rack_of // racks_per_cooling_zone
        self.n_racks = int(self.rack_of[-1]) + 1
        self.n_pdus = int(self.pdu_of[-1]) + 1
        self.n_cooling_zones = int(self.cooling_of[-1]) + 1

    @classmethod
    def from_config(cls, config: FleetConfig) -> "FaultDomainTopology":
        """The deterministic default layout for a fleet config."""
        return cls(config.n_nodes, config.nodes_per_rack,
                   config.racks_per_pdu, config.racks_per_cooling_zone)

    # -- name round-trips (fault-plan specs address domains by name) ------

    def rack_index(self, name: str) -> Optional[int]:
        """Rack index for a ``rack{i}`` name; None for foreign names."""
        return _domain_index(name, "rack", self.n_racks)

    def pdu_index(self, name: str) -> Optional[int]:
        """PDU index for a ``pdu{i}`` name; None for foreign names."""
        return _domain_index(name, "pdu", self.n_pdus)

    def cooling_zone_index(self, name: str) -> Optional[int]:
        """Zone index for a ``cooling{i}`` name; None otherwise."""
        return _domain_index(name, "cooling", self.n_cooling_zones)

    # -- per-node membership masks ---------------------------------------

    def rack_mask(self, index: int) -> np.ndarray:
        """Boolean per-node mask of rack ``index``'s members."""
        return self.rack_of == index

    def pdu_mask(self, index: int) -> np.ndarray:
        """Boolean per-node mask of PDU rail ``index``'s members."""
        return self.pdu_of == index

    def cooling_zone_mask(self, index: int) -> np.ndarray:
        """Boolean per-node mask of cooling zone ``index``'s members."""
        return self.cooling_of == index

    def as_dict(self) -> Dict[str, object]:
        """Summary block for reports (counts, not per-node arrays)."""
        return {
            "n_nodes": self.n_nodes,
            "nodes_per_rack": self.nodes_per_rack,
            "racks_per_pdu": self.racks_per_pdu,
            "racks_per_cooling_zone": self.racks_per_cooling_zone,
            "racks": self.n_racks,
            "pdus": self.n_pdus,
            "cooling_zones": self.n_cooling_zones,
        }


__all__ = [
    "FaultDomainTopology",
    "cooling_zone_name",
    "pdu_name",
    "rack_name",
]
