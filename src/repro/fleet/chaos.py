"""Vectorized fleet chaos: seeded fault plans compiled to mask kernels.

The resilience layer's :class:`~repro.resilience.chaos.ChaosEngine`
walks Python node objects, which the vectorized fleet deliberately does
not have.  This module bridges the two worlds: the *same* declarative,
seeded :class:`~repro.resilience.chaos.FaultPlan` taxonomy is compiled
down to per-node step-window numpy arrays, and the per-step fault
decisions become mask kernels with the exact slice-invariance contract
the physics kernels in :mod:`repro.fleet.vectors` already honour —
row ``i`` of any mask depends only on node ``i``'s plan entries and
counter key, never on which shard or process computes it.

Three fault kinds translate to the vector fleet:

* :attr:`~repro.resilience.chaos.FaultKind.NODE_CRASH` — crash storms;
  a crashed node loses its VMs (handled by the campaign's parent-side
  admission layer), is demoted to nominal margins, and stays DOWN for
  ``crash_down_steps`` steps.  Storm profiles mirror the
  undervolting-induced crash loops of the Scrooge-attack line in
  PAPERS.md.
* :attr:`~repro.resilience.chaos.FaultKind.TELEMETRY_DROPOUT` — the
  node keeps stepping but its telemetry sample is lost with the spec's
  probability while the window lasts (a per-``(node, step)``
  counter-based draw, so any executor reproduces the same mask).
* :attr:`~repro.resilience.chaos.FaultKind.EOP_GOVERNOR_WEDGE` — the
  node's margin governor wedges: no demotions, no probation reviews,
  and its violation window stops being reset while the window lasts.

Other kinds in a hand-written plan are ignored
(:meth:`FaultPlan.for_kinds` filters them out) — they model
control-plane machinery the vector fleet does not simulate.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..resilience.chaos import FaultKind, FaultPlan, FaultSpec
from .state import FleetConfig
from .vectors import counter_uniform, fleet_counter_keys

#: Fault kinds the vectorized fleet can express.
FLEET_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.NODE_CRASH,
    FaultKind.TELEMETRY_DROPOUT,
    FaultKind.EOP_GOVERNOR_WEDGE,
)

#: Counter channel for telemetry-dropout draws — a sibling of the
#: ``CH_*`` channels in :mod:`repro.fleet.vectors` (the chain is
#: positional, so it only needs to be unique among channels).
CH_FLEET_DROPOUT = 6

#: Relative weights and (min, max) window durations for the seeded
#: fleet plan generator.  NODE_CRASH is instantaneous.
_FLEET_MENU: Tuple[Tuple[FaultKind, float, Tuple[float, float]], ...] = (
    (FaultKind.NODE_CRASH, 1.5, (0.0, 0.0)),
    (FaultKind.TELEMETRY_DROPOUT, 1.5, (180.0, 900.0)),
    (FaultKind.EOP_GOVERNOR_WEDGE, 1.0, (300.0, 1200.0)),
)


def fleet_node_name(index: int) -> str:
    """The fleet node-name convention, shared with the scalar rack.

    :func:`repro.core.runtime.spawn_runtimes` names node ``i``
    ``node{i}``; fleet fault plans use the same names so one plan can
    drive the vector kernels and the zoned object stack alike.
    """
    return f"node{index}"


def fleet_node_index(name: str, n_nodes: int) -> Optional[int]:
    """Node index for a fleet node name; None for foreign names."""
    if not name.startswith("node"):
        return None
    try:
        index = int(name[len("node"):])
    except ValueError:
        return None
    return index if 0 <= index < n_nodes else None


def fleet_fault_plan(n_nodes: int, duration_s: float, seed: int = 0,
                     rate_per_hour: float = 6.0,
                     intensity: float = 0.5) -> FaultPlan:
    """Draw a reproducible fleet fault plan from a seeded generator.

    The vector twin of :meth:`FaultPlan.random`, restricted to the
    kinds in :data:`FLEET_FAULT_KINDS`.  ``rate_per_hour`` is the
    expected fault count per node-hour; ``intensity`` scales dropout
    magnitudes.  Node names follow :func:`fleet_node_name`, so the same
    plan drives the zoned object stack byte-for-byte reproducibly.
    """
    if n_nodes < 1:
        raise ConfigurationError("need at least one node")
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if rate_per_hour < 0:
        raise ConfigurationError("rate must be >= 0")
    if not 0 < intensity <= 1:
        raise ConfigurationError("intensity must be in (0, 1]")
    rng = np.random.default_rng(seed)
    kinds = [entry[0] for entry in _FLEET_MENU]
    weights = np.array([entry[1] for entry in _FLEET_MENU])
    weights = weights / weights.sum()
    windows = {entry[0]: entry[2] for entry in _FLEET_MENU}

    specs: List[FaultSpec] = []
    expected = rate_per_hour * duration_s / 3600.0
    for index in range(n_nodes):
        for _ in range(int(rng.poisson(expected))):
            kind = kinds[int(rng.choice(len(kinds), p=weights))]
            lo, hi = windows[kind]
            fault_duration = float(rng.uniform(lo, hi)) if hi > 0 else 0.0
            latest = max(0.0, duration_s
                         - min(fault_duration, duration_s / 2))
            start = float(rng.uniform(0.0, latest)) if latest > 0 else 0.0
            magnitude = float(np.clip(
                intensity * rng.uniform(0.6, 1.0), 0.05, 1.0))
            specs.append(FaultSpec(
                kind=kind, node=fleet_node_name(index), start_s=start,
                duration_s=fault_duration, magnitude=magnitude))
    return FaultPlan(specs)


def _pad_rows(rows: Sequence[List], fill, dtype) -> np.ndarray:
    """Stack ragged per-node lists into a ``(n, k)`` padded array."""
    width = max((len(row) for row in rows), default=0)
    out = np.full((len(rows), width), fill, dtype=dtype)
    for index, row in enumerate(rows):
        if row:
            out[index, :len(row)] = row
    return out


class FleetChaos:
    """A fault plan compiled to per-node step-window mask arrays.

    Construction is a pure function of ``(plan, config,
    crash_down_steps)``, and every mask method is elementwise over
    nodes, so a :meth:`view` sliced to a shard computes bit-identical
    rows to the full fleet — the same contract as
    :class:`~repro.fleet.vectors.FleetVectors`, which is what keeps
    scalar/shard/process byte-identity intact *under* chaos.

    Spec times (seconds) quantize to steps: an instantaneous fault
    fires at the step containing its start; a window covers every step
    it overlaps.
    """

    def __init__(self, plan: FaultPlan, config: FleetConfig,
                 crash_down_steps: int = 5,
                 keys: Optional[np.ndarray] = None) -> None:
        if crash_down_steps < 1:
            raise ConfigurationError("crash_down_steps must be >= 1")
        n = config.n_nodes
        step_s = config.step_s
        self.plan = plan.for_kinds(FLEET_FAULT_KINDS)
        self.config = config
        self.crash_down_steps = crash_down_steps
        self.keys = (keys if keys is not None
                     else fleet_counter_keys(n, config.seed))

        crashes: List[List[int]] = [[] for _ in range(n)]
        drops: List[List[Tuple[int, int, float]]] = [[] for _ in range(n)]
        wedges: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for spec in self.plan:
            index = fleet_node_index(spec.node, n)
            if index is None:
                continue
            start = int(spec.start_s // step_s)
            end = max(start + 1, int(math.ceil(
                (spec.start_s + spec.duration_s) / step_s)))
            if spec.kind is FaultKind.NODE_CRASH:
                crashes[index].append(start)
            elif spec.kind is FaultKind.TELEMETRY_DROPOUT:
                drops[index].append((start, end, spec.magnitude))
            elif spec.kind is FaultKind.EOP_GOVERNOR_WEDGE:
                wedges[index].append((start, end))

        self.crash_steps = _pad_rows(crashes, -1, np.int64)
        self.drop_start = _pad_rows(
            [[d[0] for d in row] for row in drops], 2**62, np.int64)
        self.drop_end = _pad_rows(
            [[d[1] for d in row] for row in drops], 0, np.int64)
        self.drop_magnitude = _pad_rows(
            [[d[2] for d in row] for row in drops], 0.0, np.float64)
        self.wedge_start = _pad_rows(
            [[w[0] for w in row] for row in wedges], 2**62, np.int64)
        self.wedge_end = _pad_rows(
            [[w[1] for w in row] for row in wedges], 0, np.int64)

    def __len__(self) -> int:
        return len(self.plan)

    @property
    def n(self) -> int:
        """Nodes covered by this (possibly sliced) chaos view."""
        return self.keys.shape[0]

    def view(self, lo: int, hi: int) -> "FleetChaos":
        """A shard view over nodes ``[lo, hi)``, sharing array memory."""
        if not 0 <= lo < hi <= self.n:
            raise ConfigurationError(
                f"chaos view [{lo}, {hi}) outside fleet of {self.n}")
        shard = FleetChaos.__new__(FleetChaos)
        shard.plan = self.plan
        shard.config = self.config
        shard.crash_down_steps = self.crash_down_steps
        for name in ("keys", "crash_steps", "drop_start", "drop_end",
                     "drop_magnitude", "wedge_start", "wedge_end"):
            setattr(shard, name, getattr(self, name)[lo:hi])
        return shard

    # -- per-step masks (all elementwise over nodes) ----------------------

    def crash_mask(self, t: int) -> np.ndarray:
        """Nodes whose crash fires exactly at step ``t``."""
        return np.any(self.crash_steps == t, axis=1)

    def down_mask(self, t: int) -> np.ndarray:
        """Nodes DOWN at step ``t`` (inside a post-crash outage)."""
        live = self.crash_steps >= 0
        return np.any(live & (self.crash_steps <= t)
                      & (t < self.crash_steps + self.crash_down_steps),
                      axis=1)

    def wedge_mask(self, t: int) -> np.ndarray:
        """Nodes whose margin governor is wedged at step ``t``."""
        return np.any((self.wedge_start <= t) & (t < self.wedge_end),
                      axis=1)

    def dropout_magnitude(self, t: int) -> np.ndarray:
        """Per-node drop probability at step ``t`` (max over windows)."""
        active = (self.drop_start <= t) & (t < self.drop_end)
        if self.drop_magnitude.shape[1] == 0:
            return np.zeros(self.n, dtype=np.float64)
        return np.max(np.where(active, self.drop_magnitude, 0.0), axis=1)

    def dropout_mask(self, t: int) -> np.ndarray:
        """Nodes whose telemetry sample is lost at step ``t``.

        A counter-based per-``(node, step)`` draw against the active
        window's magnitude — deterministic in any partition.
        """
        magnitude = self.dropout_magnitude(t)
        draw = counter_uniform(self.keys, np.uint64(t), CH_FLEET_DROPOUT)
        return (magnitude > 0.0) & (draw < magnitude)


__all__ = [
    "CH_FLEET_DROPOUT",
    "FLEET_FAULT_KINDS",
    "FleetChaos",
    "fleet_fault_plan",
    "fleet_node_index",
    "fleet_node_name",
]
