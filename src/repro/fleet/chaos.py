"""Vectorized fleet chaos: seeded fault plans compiled to mask kernels.

The resilience layer's :class:`~repro.resilience.chaos.ChaosEngine`
walks Python node objects, which the vectorized fleet deliberately does
not have.  This module bridges the two worlds: the *same* declarative,
seeded :class:`~repro.resilience.chaos.FaultPlan` taxonomy is compiled
down to per-node step-window numpy arrays, and the per-step fault
decisions become mask kernels with the exact slice-invariance contract
the physics kernels in :mod:`repro.fleet.vectors` already honour —
row ``i`` of any mask depends only on node ``i``'s plan entries and
counter key, never on which shard or process computes it.

Three fault kinds translate to the vector fleet:

* :attr:`~repro.resilience.chaos.FaultKind.NODE_CRASH` — crash storms;
  a crashed node loses its VMs (handled by the campaign's parent-side
  admission layer), is demoted to nominal margins, and stays DOWN for
  ``crash_down_steps`` steps.  Storm profiles mirror the
  undervolting-induced crash loops of the Scrooge-attack line in
  PAPERS.md.
* :attr:`~repro.resilience.chaos.FaultKind.TELEMETRY_DROPOUT` — the
  node keeps stepping but its telemetry sample is lost with the spec's
  probability while the window lasts (a per-``(node, step)``
  counter-based draw, so any executor reproduces the same mask).
* :attr:`~repro.resilience.chaos.FaultKind.EOP_GOVERNOR_WEDGE` — the
  node's margin governor wedges: no demotions, no probation reviews,
  and its violation window stops being reset while the window lasts.

Other kinds in a hand-written plan are ignored
(:meth:`FaultPlan.for_kinds` filters them out) — they model
control-plane machinery the vector fleet does not simulate.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..resilience.chaos import FaultKind, FaultPlan, FaultSpec
from .domains import (FaultDomainTopology, cooling_zone_name, pdu_name,
                      rack_name)
from .state import FleetConfig
from .vectors import counter_bits, counter_uniform, fleet_counter_keys

#: Per-node fault kinds the vectorized fleet can express.
FLEET_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.NODE_CRASH,
    FaultKind.TELEMETRY_DROPOUT,
    FaultKind.EOP_GOVERNOR_WEDGE,
)

#: Correlated fault kinds whose specs target a *domain* name
#: (``pdu{i}``/``cooling{i}``/``rack{i}``) instead of a node.
CORRELATED_FAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.PDU_BROWNOUT,
    FaultKind.COOLING_FAILURE,
    FaultKind.RACK_PARTITION,
)

#: Counter channels — siblings of the ``CH_*`` channels in
#: :mod:`repro.fleet.vectors` (the chain is positional, so they only
#: need to be unique among channels).  Dropout and brownout-crash draws
#: are keyed per node; the brownout rail jitter is keyed per *domain*
#: (every node on the rail hashes the same replicated domain key), so a
#: shared rail sags identically no matter which shard asks.
CH_FLEET_DROPOUT = 6
CH_PDU_BROWNOUT = 7
CH_BROWNOUT_CRASH = 8

#: Domain-key derivation salt (folded with the fleet seed and domain
#: index to give each PDU rail its own jitter stream).
_DOMAIN_KEY_SALT = 0xD0

#: Relative weights and (min, max) window durations for the seeded
#: fleet plan generator.  NODE_CRASH is instantaneous.
_FLEET_MENU: Tuple[Tuple[FaultKind, float, Tuple[float, float]], ...] = (
    (FaultKind.NODE_CRASH, 1.5, (0.0, 0.0)),
    (FaultKind.TELEMETRY_DROPOUT, 1.5, (180.0, 900.0)),
    (FaultKind.EOP_GOVERNOR_WEDGE, 1.0, (300.0, 1200.0)),
)


def fleet_node_name(index: int) -> str:
    """The fleet node-name convention, shared with the scalar rack.

    :func:`repro.core.runtime.spawn_runtimes` names node ``i``
    ``node{i}``; fleet fault plans use the same names so one plan can
    drive the vector kernels and the zoned object stack alike.
    """
    return f"node{index}"


def fleet_node_index(name: str, n_nodes: int) -> Optional[int]:
    """Node index for a fleet node name; None for foreign names.

    Strict inverse of :func:`fleet_node_name`: the suffix must be the
    canonical decimal form, so ``node007``, ``node 7``, ``node+7`` and
    indices ``>= n_nodes`` are all foreign (None), never silently
    remapped — one plan must address the same nodes in every world.
    """
    if not name.startswith("node"):
        return None
    suffix = name[len("node"):]
    if not suffix.isdigit() or str(int(suffix)) != suffix:
        return None
    index = int(suffix)
    return index if 0 <= index < n_nodes else None


def fleet_fault_plan(n_nodes: int, duration_s: float, seed: int = 0,
                     rate_per_hour: float = 6.0,
                     intensity: float = 0.5) -> FaultPlan:
    """Draw a reproducible fleet fault plan from a seeded generator.

    The vector twin of :meth:`FaultPlan.random`, restricted to the
    kinds in :data:`FLEET_FAULT_KINDS`.  ``rate_per_hour`` is the
    expected fault count per node-hour; ``intensity`` scales dropout
    magnitudes.  Node names follow :func:`fleet_node_name`, so the same
    plan drives the zoned object stack byte-for-byte reproducibly.
    """
    if n_nodes < 1:
        raise ConfigurationError("need at least one node")
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if rate_per_hour < 0:
        raise ConfigurationError("rate must be >= 0")
    if not 0 < intensity <= 1:
        raise ConfigurationError("intensity must be in (0, 1]")
    rng = np.random.default_rng(seed)
    kinds = [entry[0] for entry in _FLEET_MENU]
    weights = np.array([entry[1] for entry in _FLEET_MENU])
    weights = weights / weights.sum()
    windows = {entry[0]: entry[2] for entry in _FLEET_MENU}

    specs: List[FaultSpec] = []
    expected = rate_per_hour * duration_s / 3600.0
    for index in range(n_nodes):
        for _ in range(int(rng.poisson(expected))):
            kind = kinds[int(rng.choice(len(kinds), p=weights))]
            lo, hi = windows[kind]
            fault_duration = float(rng.uniform(lo, hi)) if hi > 0 else 0.0
            latest = max(0.0, duration_s
                         - min(fault_duration, duration_s / 2))
            start = float(rng.uniform(0.0, latest)) if latest > 0 else 0.0
            magnitude = float(np.clip(
                intensity * rng.uniform(0.6, 1.0), 0.05, 1.0))
            specs.append(FaultSpec(
                kind=kind, node=fleet_node_name(index), start_s=start,
                duration_s=fault_duration, magnitude=magnitude))
    return FaultPlan(specs)


#: (kind, domain-name helper, (min, max) window seconds) for the
#: correlated-plan generator.  Every kind is windowed.
_CORRELATED_MENU = (
    (FaultKind.PDU_BROWNOUT, pdu_name, (300.0, 900.0)),
    (FaultKind.COOLING_FAILURE, cooling_zone_name, (600.0, 1800.0)),
    (FaultKind.RACK_PARTITION, rack_name, (300.0, 900.0)),
)


def fleet_correlated_plan(config: FleetConfig, duration_s: float,
                          seed: int = 0, rate_per_hour: float = 1.0,
                          intensity: float = 0.7) -> FaultPlan:
    """Draw a reproducible *correlated* fault plan over the topology.

    The domain twin of :func:`fleet_fault_plan`: instead of i.i.d.
    per-node faults, specs target whole fault domains —
    :attr:`~repro.resilience.chaos.FaultKind.PDU_BROWNOUT` a PDU rail,
    :attr:`~repro.resilience.chaos.FaultKind.COOLING_FAILURE` a cooling
    zone, :attr:`~repro.resilience.chaos.FaultKind.RACK_PARTITION` a
    rack.  ``rate_per_hour`` is the expected event count per
    domain-hour.  Whenever the rate is positive, the plan carries at
    least one spec of *every* kind (a deterministic floor on domain 0),
    so an A/B under this plan always exercises all three blast radii.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if rate_per_hour < 0:
        raise ConfigurationError("rate must be >= 0")
    if not 0 < intensity <= 1:
        raise ConfigurationError("intensity must be in (0, 1]")
    topology = FaultDomainTopology.from_config(config)
    counts = {
        FaultKind.PDU_BROWNOUT: topology.n_pdus,
        FaultKind.COOLING_FAILURE: topology.n_cooling_zones,
        FaultKind.RACK_PARTITION: topology.n_racks,
    }
    rng = np.random.default_rng(seed)
    expected = rate_per_hour * duration_s / 3600.0

    def draw(kind: FaultKind, namer, window: Tuple[float, float],
             domain: int) -> FaultSpec:
        lo, hi = window
        fault_duration = float(rng.uniform(lo, hi))
        latest = max(0.0, duration_s - min(fault_duration, duration_s / 2))
        start = float(rng.uniform(0.0, latest)) if latest > 0 else 0.0
        magnitude = float(np.clip(
            intensity * rng.uniform(0.6, 1.0), 0.05, 1.0))
        return FaultSpec(kind=kind, node=namer(domain), start_s=start,
                         duration_s=max(fault_duration, config.step_s),
                         magnitude=magnitude)

    specs: List[FaultSpec] = []
    for kind, namer, window in _CORRELATED_MENU:
        drawn = 0
        for domain in range(counts[kind]):
            for _ in range(int(rng.poisson(expected))):
                specs.append(draw(kind, namer, window, domain))
                drawn += 1
        if drawn == 0 and rate_per_hour > 0:
            specs.append(draw(kind, namer, window, 0))
    return FaultPlan(specs)


def _pad_rows(rows: Sequence[List], fill, dtype) -> np.ndarray:
    """Stack ragged per-node lists into a ``(n, k)`` padded array."""
    width = max((len(row) for row in rows), default=0)
    out = np.full((len(rows), width), fill, dtype=dtype)
    for index, row in enumerate(rows):
        if row:
            out[index, :len(row)] = row
    return out


class FleetChaos:
    """A fault plan compiled to per-node step-window mask arrays.

    Construction is a pure function of ``(plan, config,
    crash_down_steps)``, and every mask method is elementwise over
    nodes, so a :meth:`view` sliced to a shard computes bit-identical
    rows to the full fleet — the same contract as
    :class:`~repro.fleet.vectors.FleetVectors`, which is what keeps
    scalar/shard/process byte-identity intact *under* chaos.

    Spec times (seconds) quantize to steps: an instantaneous fault
    fires at the step containing its start; a window covers every step
    it overlaps.
    """

    #: Per-node compiled arrays (sliced by :meth:`view`).
    _ARRAYS = ("keys", "crash_steps", "drop_start", "drop_end",
               "drop_magnitude", "wedge_start", "wedge_end",
               "bro_start", "bro_end", "bro_magnitude", "bro_key",
               "cool_start", "cool_end", "cool_magnitude",
               "part_start", "part_end")

    def __init__(self, plan: FaultPlan, config: FleetConfig,
                 crash_down_steps: int = 5,
                 keys: Optional[np.ndarray] = None,
                 defense: bool = False) -> None:
        if crash_down_steps < 1:
            raise ConfigurationError("crash_down_steps must be >= 1")
        n = config.n_nodes
        step_s = config.step_s
        self.plan = plan.for_kinds(FLEET_FAULT_KINDS
                                   + CORRELATED_FAULT_KINDS)
        self.config = config
        self.crash_down_steps = crash_down_steps
        self.defense = defense
        self.topology = FaultDomainTopology.from_config(config)
        self.keys = (keys if keys is not None
                     else fleet_counter_keys(n, config.seed))

        crashes: List[List[int]] = [[] for _ in range(n)]
        drops: List[List[Tuple[int, int, float]]] = [[] for _ in range(n)]
        wedges: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        bros: List[List[Tuple[int, int, float, int]]] = [
            [] for _ in range(n)]
        cools: List[List[Tuple[int, int, float]]] = [[] for _ in range(n)]
        parts: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for spec in self.plan:
            start = int(spec.start_s // step_s)
            end = max(start + 1, int(math.ceil(
                (spec.start_s + spec.duration_s) / step_s)))
            if spec.kind in CORRELATED_FAULT_KINDS:
                self._compile_domain(spec, start, end, bros, cools, parts)
                continue
            index = fleet_node_index(spec.node, n)
            if index is None:
                continue
            if spec.kind is FaultKind.NODE_CRASH:
                crashes[index].append(start)
            elif spec.kind is FaultKind.TELEMETRY_DROPOUT:
                drops[index].append((start, end, spec.magnitude))
            elif spec.kind is FaultKind.EOP_GOVERNOR_WEDGE:
                wedges[index].append((start, end))

        self.crash_steps = _pad_rows(crashes, -1, np.int64)
        self.drop_start = _pad_rows(
            [[d[0] for d in row] for row in drops], 2**62, np.int64)
        self.drop_end = _pad_rows(
            [[d[1] for d in row] for row in drops], 0, np.int64)
        self.drop_magnitude = _pad_rows(
            [[d[2] for d in row] for row in drops], 0.0, np.float64)
        self.wedge_start = _pad_rows(
            [[w[0] for w in row] for row in wedges], 2**62, np.int64)
        self.wedge_end = _pad_rows(
            [[w[1] for w in row] for row in wedges], 0, np.int64)
        self.bro_start = _pad_rows(
            [[b[0] for b in row] for row in bros], 2**62, np.int64)
        self.bro_end = _pad_rows(
            [[b[1] for b in row] for row in bros], 0, np.int64)
        self.bro_magnitude = _pad_rows(
            [[b[2] for b in row] for row in bros], 0.0, np.float64)
        self.bro_key = _pad_rows(
            [[b[3] for b in row] for row in bros], 0, np.uint64)
        self.cool_start = _pad_rows(
            [[c[0] for c in row] for row in cools], 2**62, np.int64)
        self.cool_end = _pad_rows(
            [[c[1] for c in row] for row in cools], 0, np.int64)
        self.cool_magnitude = _pad_rows(
            [[c[2] for c in row] for row in cools], 0.0, np.float64)
        self.part_start = _pad_rows(
            [[p[0] for p in row] for row in parts], 2**62, np.int64)
        self.part_end = _pad_rows(
            [[p[1] for p in row] for row in parts], 0, np.int64)

    def _compile_domain(self, spec: FaultSpec, start: int, end: int,
                        bros, cools, parts) -> None:
        """Fan one domain spec out to every member node's window list."""
        topology = self.topology
        if spec.kind is FaultKind.PDU_BROWNOUT:
            domain = topology.pdu_index(spec.node)
            if domain is None:
                return
            # Every node on the rail replicates the rail's key, so the
            # per-step sag jitter hashes (domain, step, channel) and is
            # identical across shards and processes by construction.
            key = int(counter_bits(np.uint64(self.config.seed),
                                   np.uint64(_DOMAIN_KEY_SALT),
                                   np.uint64(domain)))
            for index in np.nonzero(topology.pdu_mask(domain))[0]:
                bros[index].append((start, end, spec.magnitude, key))
        elif spec.kind is FaultKind.COOLING_FAILURE:
            domain = topology.cooling_zone_index(spec.node)
            if domain is None:
                return
            for index in np.nonzero(topology.cooling_zone_mask(domain))[0]:
                cools[index].append((start, end, spec.magnitude))
        elif spec.kind is FaultKind.RACK_PARTITION:
            domain = topology.rack_index(spec.node)
            if domain is None:
                return
            for index in np.nonzero(topology.rack_mask(domain))[0]:
                parts[index].append((start, end))

    def __len__(self) -> int:
        return len(self.plan)

    @property
    def n(self) -> int:
        """Nodes covered by this (possibly sliced) chaos view."""
        return self.keys.shape[0]

    def view(self, lo: int, hi: int) -> "FleetChaos":
        """A shard view over nodes ``[lo, hi)``, sharing array memory."""
        if not 0 <= lo < hi <= self.n:
            raise ConfigurationError(
                f"chaos view [{lo}, {hi}) outside fleet of {self.n}")
        shard = FleetChaos.__new__(FleetChaos)
        shard.plan = self.plan
        shard.config = self.config
        shard.crash_down_steps = self.crash_down_steps
        shard.defense = self.defense
        shard.topology = self.topology
        for name in self._ARRAYS:
            setattr(shard, name, getattr(self, name)[lo:hi])
        return shard

    # -- per-step masks (all elementwise over nodes) ----------------------

    def crash_mask(self, t: int) -> np.ndarray:
        """Nodes crashing exactly at step ``t`` (plan or brownout)."""
        return (np.any(self.crash_steps == t, axis=1)
                | self.brownout_crash_mask(t))

    def down_mask(self, t: int) -> np.ndarray:
        """Nodes DOWN at step ``t`` (inside a post-crash outage)."""
        live = self.crash_steps >= 0
        down = np.any(live & (self.crash_steps <= t)
                      & (t < self.crash_steps + self.crash_down_steps),
                      axis=1)
        # Brownout crashes down a node exactly like plan crashes; the
        # lookback re-derives the last few steps' draws, so the answer
        # stays a pure function of (plan, t) in any partition.
        for s in range(max(0, t - self.crash_down_steps + 1), t + 1):
            down |= self.brownout_crash_mask(s)
        return down

    def wedge_mask(self, t: int) -> np.ndarray:
        """Nodes whose margin governor is wedged at step ``t``."""
        return np.any((self.wedge_start <= t) & (t < self.wedge_end),
                      axis=1)

    def dropout_magnitude(self, t: int) -> np.ndarray:
        """Per-node drop probability at step ``t`` (max over windows)."""
        active = (self.drop_start <= t) & (t < self.drop_end)
        if self.drop_magnitude.shape[1] == 0:
            return np.zeros(self.n, dtype=np.float64)
        return np.max(np.where(active, self.drop_magnitude, 0.0), axis=1)

    def dropout_mask(self, t: int) -> np.ndarray:
        """Nodes whose telemetry sample is lost at step ``t``.

        A counter-based per-``(node, step)`` draw against the active
        window's magnitude — deterministic in any partition.
        """
        magnitude = self.dropout_magnitude(t)
        draw = counter_uniform(self.keys, np.uint64(t), CH_FLEET_DROPOUT)
        return (magnitude > 0.0) & (draw < magnitude)

    # -- correlated-domain masks ------------------------------------------

    def brownout_depth(self, t: int) -> np.ndarray:
        """Per-node rail sag (volts) at step ``t``.

        Magnitude times ``brownout_depth_v``, jittered per step by a
        draw keyed ``(domain key, step, channel)`` — one draw per rail,
        replicated to every member node, so the whole rail sags in
        lockstep no matter how the fleet is sharded.  Max over
        overlapping windows; zero outside any window (``v - 0.0`` is
        bitwise ``v``, so uncorrelated plans keep their exact bytes).
        """
        if self.bro_magnitude.shape[1] == 0:
            return np.zeros(self.n, dtype=np.float64)
        active = (self.bro_start <= t) & (t < self.bro_end)
        jitter = 0.75 + 0.25 * counter_uniform(
            self.bro_key, np.uint64(t), CH_PDU_BROWNOUT)
        depth = (self.bro_magnitude * self.config.brownout_depth_v
                 * jitter)
        return np.max(np.where(active, depth, 0.0), axis=1)

    def _brownout_crash_prob(self, t: int) -> np.ndarray:
        """Per-node crash probability from brownouts active at ``t``."""
        if self.bro_magnitude.shape[1] == 0:
            return np.zeros(self.n, dtype=np.float64)
        active = (self.bro_start <= t) & (t < self.bro_end)
        magnitude = np.max(np.where(active, self.bro_magnitude, 0.0),
                           axis=1)
        return magnitude * self.config.brownout_crash_scale

    def brownout_crash_mask(self, t: int) -> np.ndarray:
        """Nodes crash-rolled out by an active brownout at step ``t``.

        A per-``(node, step)`` counter draw against the rail's
        magnitude-scaled crash probability — independent across the
        rail's nodes (each machine's PSU rides out the sag or not), but
        deterministic in any partition.
        """
        p = self._brownout_crash_prob(t)
        draw = counter_uniform(self.keys, np.uint64(t), CH_BROWNOUT_CRASH)
        return (p > 0.0) & (draw < p)

    def cooling_delta_c(self, t: int) -> np.ndarray:
        """Per-node effective-ambient rise (°C) at step ``t``.

        A cooling failure ramps linearly from 0 at its window start to
        ``magnitude * cooling_ramp_c`` at its end — heat soak, not a
        step function.  Max over overlapping windows; zero outside
        (``ambient + 0.0`` is bitwise ``ambient``).
        """
        if self.cool_magnitude.shape[1] == 0:
            return np.zeros(self.n, dtype=np.float64)
        active = (self.cool_start <= t) & (t < self.cool_end)
        span = np.maximum(self.cool_end - self.cool_start, 1)
        ramp = (t - self.cool_start + 1).astype(np.float64) / span
        delta = (self.cool_magnitude * self.config.cooling_ramp_c
                 * np.clip(ramp, 0.0, 1.0))
        return np.max(np.where(active, delta, 0.0), axis=1)

    def partition_mask(self, t: int) -> np.ndarray:
        """Nodes inside a rack partition at step ``t``.

        Partitioned nodes keep stepping (the physics does not care
        about the network) but are blacked out for telemetry and new
        admissions — the campaign layer consumes this mask.
        """
        return np.any((self.part_start <= t) & (t < self.part_end),
                      axis=1)

    def at_risk_mask(self, t: int) -> np.ndarray:
        """Nodes inside an active brownout or cooling window at ``t``.

        The defense layers (anti-affinity placement, evacuation
        backpressure) treat these as blast radii to route around.
        """
        bro = np.any((self.bro_start <= t) & (t < self.bro_end), axis=1)
        cool = np.any((self.cool_start <= t) & (t < self.cool_end),
                      axis=1)
        return bro | cool

    def guard_demote_mask(self, t: int) -> np.ndarray:
        """Correlated-demotion guard: domains whose window opens at ``t``.

        With ``defense`` on, the whole blast radius of a brownout or
        cooling failure demotes to nominal margins the step the window
        opens — one precautionary domain demotion instead of waiting
        for every member to breach its own error budget.  Derived from
        the plan's window starts, so it is elementwise and identical
        in any partition.  All-False with ``defense`` off.
        """
        if not self.defense:
            return np.zeros(self.n, dtype=np.bool_)
        return (np.any(self.bro_start == t, axis=1)
                | np.any(self.cool_start == t, axis=1))

    def guard_probation(self, t: int) -> np.ndarray:
        """Probation horizon for nodes guard-demoted at step ``t``.

        The window's end plus the configured probation — the domain
        stays at nominal until the shared hazard has demonstrably
        passed.  Only meaningful where :meth:`guard_demote_mask` is
        True.
        """
        bro = np.max(np.where(self.bro_start == t, self.bro_end, 0),
                     axis=1) if self.bro_end.shape[1] else np.zeros(
                         self.n, dtype=np.int64)
        cool = np.max(np.where(self.cool_start == t, self.cool_end, 0),
                      axis=1) if self.cool_end.shape[1] else np.zeros(
                          self.n, dtype=np.int64)
        return (np.maximum(bro, cool)
                + np.int64(self.config.probation_steps))


__all__ = [
    "CH_BROWNOUT_CRASH",
    "CH_FLEET_DROPOUT",
    "CH_PDU_BROWNOUT",
    "CORRELATED_FAULT_KINDS",
    "FLEET_FAULT_KINDS",
    "FleetChaos",
    "fleet_correlated_plan",
    "fleet_fault_plan",
    "fleet_node_index",
    "fleet_node_name",
]
