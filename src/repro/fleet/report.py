"""Canonical fleet reports and energy-proportionality metrics.

Two report families share this module:

* :func:`rack_report` — the object-stack campaign surface, duck-typed
  over a monolithic :class:`~repro.cloudmgr.cloud.CloudController` and
  a zoned :class:`~repro.fleet.zone.FleetScheduler`.  Every float
  aggregate is computed here with ``math.fsum`` over *name-sorted*
  per-entity values instead of trusting accumulation order, so the
  monolith and any zone split serialize to identical bytes.
* :func:`fleet_campaign_report` — the vectorized campaign surface,
  invariant to ``shards``/``jobs``/stepper because its inputs already
  are (the campaign layer guarantees that; the report only orders and
  rounds nothing).

The energy-proportionality block follows the Barroso/Hölzle framing
the PAPERS.md subsystem-level power-management line builds on:
``dynamic_range`` is the idle-to-peak power spread, and the
``proportionality_index`` scores how closely observed power tracked
utilization between those anchors (1.0 = perfectly proportional).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..persistence import payload_checksum
from .state import FleetConfig
from .vectors import FleetVectors


def _mean_sorted(values: Sequence[float]) -> Optional[float]:
    """Order-insensitive mean: fsum over the sorted values."""
    if not values:
        return None
    return math.fsum(sorted(values)) / len(values)


# -- the object-stack (rack/zoned) report -----------------------------------


def rack_report(controller, sim_stats) -> Dict[str, object]:
    """Canonical report of one trace-driven rack campaign.

    ``controller`` is a CloudController or FleetScheduler; both expose
    ``node_list``/``placement_log``/``stats``/``availability_summary``/
    ``violations_total``/``repair_episodes``/``metrics_snapshot``.
    Energy comes from the per-node hypervisor meters (fsum, name
    sorted), never from the controller's running float accumulator,
    whose grouping differs between the monolith and a zone merge.
    """
    from dataclasses import asdict

    nodes = sorted(controller.node_list(), key=lambda n: n.name)
    energy_by_node = {
        node.name: node.hypervisor.stats.energy_j for node in nodes}
    availability = controller.availability_summary()
    episodes = controller.repair_episodes()
    stats = controller.stats
    return {
        "nodes": len(nodes),
        "steps": stats.steps,
        "energy_j": math.fsum(energy_by_node[name]
                              for name in sorted(energy_by_node)),
        "energy_by_node_j": {name: energy_by_node[name]
                             for name in sorted(energy_by_node)},
        "fleet_availability": (
            math.fsum(availability[name]
                      for name in sorted(availability))
            / len(availability) if availability else 1.0),
        "availability_by_vm": {name: availability[name]
                               for name in sorted(availability)},
        "sla_violations": controller.violations_total(),
        "mttr_s": _mean_sorted(episodes),
        "repair_episodes": len(episodes),
        "controller": {
            "launched": stats.launched,
            "completed": stats.completed,
            "node_crashes": stats.node_crashes,
            "evacuations": stats.evacuations,
            "recoveries": stats.recoveries,
            "recovery_attempts": stats.recovery_attempts,
            "failed_recoveries": stats.failed_recoveries,
            "failovers": stats.failovers,
            "failed_failovers": stats.failed_failovers,
            "migration_retries": stats.migration_retries,
            "breaker_trips": stats.breaker_trips,
            "flaps": stats.flaps,
            "heartbeats_received": stats.heartbeats_received,
            "heartbeats_missed": stats.heartbeats_missed,
        },
        "simulation": {
            "arrivals": sim_stats.arrivals,
            "admitted": sim_stats.admitted,
            "rejected": sim_stats.rejected,
            "terminated": sim_stats.terminated,
            "rejected_by_tier": dict(sim_stats.rejected_by_tier),
        },
        "placements": [asdict(p) for p in controller.placement_log],
        "metrics_sha256": payload_checksum(
            controller.metrics_snapshot()),
    }


# -- energy proportionality --------------------------------------------------


def energy_proportionality(
        series: Sequence[Dict[str, float]],
        idle_power_w: float,
        peak_power_w: float) -> Dict[str, object]:
    """Fleet energy-proportionality metrics from a telemetry series.

    ``dynamic_range`` is ``1 - idle/peak`` (how much of peak power the
    fleet can shed when idle); ``proportionality_index`` is one minus
    the mean absolute gap between normalized power and utilization over
    the sampled series (1.0 when power tracks load perfectly, lower
    when the fleet burns idle power at low load).
    """
    span = peak_power_w - idle_power_w
    gaps: List[float] = []
    for entry in series:
        if span <= 0:
            break
        normalized = (float(entry["mean_power_w"]) - idle_power_w) / span
        gaps.append(abs(normalized - float(entry["mean_util"])))
    index = (1.0 - math.fsum(sorted(gaps)) / len(gaps)) if gaps else None
    return {
        "idle_power_w": idle_power_w,
        "peak_power_w": peak_power_w,
        "dynamic_range": (1.0 - idle_power_w / peak_power_w
                          if peak_power_w > 0 else 0.0),
        "proportionality_index": index,
        "samples": len(gaps),
    }


# -- the vectorized campaign report ------------------------------------------


def fleet_campaign_report(config_echo: Dict[str, object],
                          fleet_config: FleetConfig,
                          totals: Dict[str, object],
                          series: Sequence[Dict[str, float]],
                          quarantine: Optional[Dict[str, object]] = None,
                          fault_domains: Optional[Dict[str, object]] = None,
                          ) -> Dict[str, object]:
    """Canonical report of one vectorized fleet campaign.

    ``config_echo`` must already exclude execution-only knobs (shards,
    jobs, stepper) — the report is the identity surface those knobs
    must not perturb.  The EP anchors are deterministic fixed points of
    the config alone, so every execution of the same campaign reports
    the same proportionality block.

    ``quarantine`` (shards frozen after a worker exhausted its restart
    budget) is only included when non-empty: a campaign whose worker
    deaths were all absorbed by deterministic replay must stay
    byte-identical to a clean run.  ``fault_domains`` (the correlated
    plan summary and topology) likewise only appears when a correlated
    plan exists.
    """
    vectors = FleetVectors(fleet_config)
    # Per-node anchors, matching the series' ``mean_power_w`` scale
    # (both are fleet totals divided by n, so the index is the same
    # either way — per-node keeps the numbers human-sized).
    idle_w = vectors.equilibrium_power_w(
        0.0, margin_on=bool(fleet_config.adopt_margins))
    peak_w = vectors.equilibrium_power_w(
        1.0, margin_on=bool(fleet_config.adopt_margins))
    report = {
        "config": dict(config_echo),
        "totals": dict(totals),
        "energy_proportionality": energy_proportionality(
            series, idle_w, peak_w),
        "series": list(series),
    }
    if quarantine:
        report["quarantine"] = dict(quarantine)
    if fault_domains:
        report["fault_domains"] = dict(fault_domains)
    report["report_sha256"] = payload_checksum(
        {k: v for k, v in report.items()})
    return report
