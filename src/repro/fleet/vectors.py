"""Vectorized per-step batch models for fleet-scale node stepping.

The scalar stack draws its randomness from stateful per-node generator
streams (:meth:`repro.core.runtime.NodeRuntime.rng`); a batch model
cannot share a stateful stream across nodes without serializing the
draws.  The fleet path therefore uses a **counter-based** construction:

* every node's 64-bit counter key derives from the *same* seeding
  discipline as the scalar rack — ``SeedSequence(seed).spawn(n)`` per
  node, then the ``"fleet.vectors"`` named-stream child exactly as
  :meth:`NodeRuntime.stream_sequence` derives it — so a vectorized
  fleet and a scalar rack built from one seed share stream identities;
* each random draw hashes ``(key, step, channel, lane)`` through a
  splitmix64 finalizer, so any slice of nodes can be stepped in any
  partition, in any process, and reproduce the same bits.

Every kernel is elementwise over nodes (axis 0) with reductions only
along component lanes (axis 1).  That makes the whole step function
*slice-invariant*: stepping nodes ``[i, i+1)`` one at a time (the naive
per-object loop, :meth:`FleetVectors.step_node`) is byte-identical to
stepping the whole shard at once (:meth:`FleetVectors.step`), which is
the determinism contract ``tests/test_fleet_vectors.py`` pins down and
``benchmarks/bench_fleet_scaling.py`` prices.
"""

from __future__ import annotations

import numpy as np

from ..core.runtime import NodeRuntime, _stream_key
from .state import FleetConfig, FleetState

#: Named stream backing the per-node counter keys (a sibling of the
#: scalar stack's "hardware.*" and "workload.*" streams).
VECTOR_STREAM = "fleet.vectors"
#: Fleet-level stream for the campaign arrival process.
ARRIVAL_STREAM = "fleet.arrivals"

#: Draw channels.  The chain is positional — ``key -> step -> channel
#: -> lane`` — so channels only need to be unique, not disjoint from
#: step numbers.
CH_STATIC_VMIN = 1
CH_STATIC_RETENTION = 2
CH_DROOP = 3
CH_VMIN_JITTER = 4
CH_RETENTION = 5
CH_ARRIVAL_COUNT = 10
CH_ARRIVAL_SIZE = 11
CH_ARRIVAL_LIFETIME = 12
#: Box-Muller pair salts (appended last in the chain).
_CH_GAUSS_U1 = 101
_CH_GAUSS_U2 = 102

_PHI = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_S11 = np.uint64(11)
_INV53 = float(2.0 ** -53)


def splitmix64(value):
    """The splitmix64 finalizer over ``uint64`` scalars or arrays."""
    with np.errstate(over="ignore"):
        z = np.asarray(value, dtype=np.uint64) + _PHI
        z = (z ^ (z >> _S30)) * _MIX1
        z = (z ^ (z >> _S27)) * _MIX2
        return z ^ (z >> _S31)


def counter_bits(keys, *salts):
    """Hash ``(keys, salt0, salt1, ...)`` to uniform ``uint64`` bits.

    ``keys`` and each salt may be scalars or broadcastable ``uint64``
    arrays; the chain folds salts in order, one finalizer round each.
    """
    acc = np.asarray(keys, dtype=np.uint64)
    for salt in salts:
        acc = splitmix64(acc ^ np.asarray(salt, dtype=np.uint64))
    return acc


def counter_uniform(keys, *salts):
    """Uniform float64 draws in ``[0, 1)`` from the counter hash."""
    return (counter_bits(keys, *salts) >> _S11).astype(np.float64) * _INV53


def counter_gaussian(keys, *salts):
    """Standard-normal float64 draws (Box-Muller over two channels)."""
    u1 = counter_uniform(keys, *salts, _CH_GAUSS_U1)
    u2 = counter_uniform(keys, *salts, _CH_GAUSS_U2)
    # 1 - u1 is in (0, 1], so the log is finite.
    return np.sqrt(-2.0 * np.log1p(-u1)) * np.cos(2.0 * np.pi * u2)


# -- key derivation ----------------------------------------------------------


def stream_counter_key(sequence: np.random.SeedSequence,
                       stream: str = VECTOR_STREAM) -> np.uint64:
    """The 64-bit counter key of one named stream under ``sequence``.

    Extends ``spawn_key`` with the stable stream hash exactly as
    :meth:`NodeRuntime.stream_sequence` does, then draws the child's
    first generated word — the scalar and vector paths agree on stream
    identity by construction.
    """
    child = np.random.SeedSequence(
        entropy=sequence.entropy,
        spawn_key=(*sequence.spawn_key, _stream_key(stream)),
    )
    return np.uint64(child.generate_state(1, np.uint64)[0])


def runtime_counter_key(runtime: NodeRuntime) -> np.uint64:
    """The vector counter key of one scalar-rack node runtime."""
    return np.uint64(runtime.stream_sequence(
        VECTOR_STREAM).generate_state(1, np.uint64)[0])


def fleet_counter_keys(n_nodes: int, seed: int) -> np.ndarray:
    """Per-node counter keys for a fleet built from one seed.

    ``SeedSequence(seed).spawn(n)`` children, one per node, mirroring
    :func:`repro.core.runtime.spawn_runtimes` — node ``i`` of a scalar
    rack and row ``i`` of a vector fleet share the same key.
    """
    root = np.random.SeedSequence(seed)
    return np.array([stream_counter_key(child)
                     for child in root.spawn(n_nodes)], dtype=np.uint64)


def arrival_counter_key(seed: int) -> np.uint64:
    """The fleet-level arrival-process key (not tied to any node)."""
    return stream_counter_key(np.random.SeedSequence(seed),
                              ARRIVAL_STREAM)


# -- the batch models --------------------------------------------------------


class FleetVectors:
    """Numpy batch models for the per-step hot paths of a fleet shard.

    One instance is stateless apart from precomputed constants; all
    mutable state lives in the :class:`FleetState` passed to
    :meth:`step`.  The same instance safely steps any shard view.
    """

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self._core_lanes = np.arange(config.cores_per_node,
                                     dtype=np.uint64)[None, :]
        self._dimm_lanes = np.arange(config.dimms_per_node,
                                     dtype=np.uint64)[None, :]
        self._vcpus_per_node = float(config.vcpus_per_node)
        self._margined_v = config.nominal_v - config.margin_v
        self._thermal_decay = float(np.exp(-config.step_s / config.tau_s))
        # Heterogeneous-reliability lane masks: the first
        # ``strong_dimms_per_node`` lanes stay at nominal refresh, the
        # next ``normal_dimms_per_node`` relax only to
        # ``refresh_normal_s``, the rest relax fully.  Lane-wise
        # constants, so every tiered kernel stays elementwise over
        # nodes and the slice/shard byte-identity contract holds.
        n_strong = config.strong_dimms_per_node
        n_normal = config.normal_dimms_per_node
        lanes = np.arange(config.dimms_per_node)
        self._strong_mask = lanes < n_strong
        self._normal_mask = (lanes >= n_strong) & (lanes < n_strong + n_normal)
        self._relaxed_mask = lanes >= n_strong + n_normal
        self._tier_interval_s = np.where(
            self._strong_mask, config.refresh_nominal_s,
            np.where(self._normal_mask, config.refresh_normal_s,
                     config.refresh_relaxed_s))
        refresh_margin_w = config.dram_refresh_w_per_dimm * (
            config.refresh_nominal_s / self._tier_interval_s)
        self._dram_margin_w = float(
            config.dimms_per_node * config.dram_base_w_per_dimm
            + np.add.reduce(refresh_margin_w))
        self._dram_nominal_w = config.dimms_per_node * (
            config.dram_base_w_per_dimm + config.dram_refresh_w_per_dimm)

    # -- static (build-time) draws ----------------------------------------

    def static_vmin(self, keys: np.ndarray) -> np.ndarray:
        """Per-core static Vmin variation, ``(n, cores)`` volts."""
        cfg = self.config
        spread = counter_gaussian(keys[:, None], CH_STATIC_VMIN,
                                  self._core_lanes)
        return cfg.vmin_mean_v + cfg.vmin_sigma_v * spread

    def static_retention_weakness(self, keys: np.ndarray) -> np.ndarray:
        """Per-DIMM lognormal retention weakness, ``(n, dimms)``."""
        cfg = self.config
        spread = counter_gaussian(keys[:, None], CH_STATIC_RETENTION,
                                  self._dimm_lanes)
        return np.exp(cfg.retention_weak_sigma * spread)

    # -- per-step physics ---------------------------------------------------

    def _power_w(self, v, activity, temperature_c, margin_on):
        """CMOS + leakage + DRAM + platform power (vectorized)."""
        cfg = self.config
        dynamic = (cfg.cores_per_node * cfg.c_eff_f * v * v
                   * cfg.frequency_hz * activity)
        leakage = (cfg.cores_per_node * cfg.leak_per_core_w
                   * np.exp(cfg.leak_v_exp * (v - cfg.nominal_v))
                   * np.exp(cfg.leak_t_exp
                            * (temperature_c - cfg.leak_t_ref_c)))
        if cfg.tiered:
            # Per-lane tier intervals collapse to two per-node scalars
            # (intervals are lane constants), precomputed in __init__.
            dram = np.where(margin_on, self._dram_margin_w,
                            self._dram_nominal_w)
        else:
            interval = np.where(margin_on, cfg.refresh_relaxed_s,
                                cfg.refresh_nominal_s)
            dram = cfg.dimms_per_node * (
                cfg.dram_base_w_per_dimm
                + cfg.dram_refresh_w_per_dimm
                * (cfg.refresh_nominal_s / interval))
        return dynamic + leakage + dram + cfg.idle_platform_w

    def step(self, state: FleetState, t: int, chaos=None) -> None:
        """Advance one shard by one step (in place).

        Every operation is elementwise over nodes or a per-node lane
        reduction, so ``step`` over ``[lo, hi)`` equals ``step`` over
        each ``[i, i+1)`` — the shard/monolith byte-identity contract.

        ``chaos`` is an optional :class:`~repro.fleet.chaos.FleetChaos`
        view sliced to the *same* node range as ``state``.  Its masks
        are elementwise too, so the contract holds under injected
        faults: a crash demotes the node to nominal margins and downs
        it for the outage window, and a wedged governor skips its
        reviews (no demotion, no re-adoption, no window reset).
        """
        cfg = self.config
        keys = state.keys[:, None]
        step_salt = np.uint64(t)

        if chaos is not None:
            crash = chaos.crash_mask(t)
            down = chaos.down_mask(t)
            wedge = chaos.wedge_mask(t)
            # Crash effects: VMs died (the campaign's admission layer
            # zeroes used_vcpus), margins demote to nominal, and the
            # node enters its outage + probation windows.
            state.crashes_total += crash
            state.demotions += crash & state.margin_on
            state.margin_on &= ~crash
            state.down_until_step[:] = np.where(
                crash, t + chaos.crash_down_steps,
                state.down_until_step)
            state.probation_until_step[:] = np.where(
                crash, t + cfg.probation_steps,
                state.probation_until_step)
            state.window_violations[:] = np.where(
                crash, 0, state.window_violations)
            # Correlated-demotion guard: when the defense is armed, a
            # whole fault domain demotes to nominal margins the step
            # its brownout/cooling window opens — one precautionary
            # domain demotion (plan-derived, elementwise) instead of
            # every member independently blowing its error budget.
            if chaos.defense:
                guard = chaos.guard_demote_mask(t)
                state.domain_demotions += guard & state.margin_on
                state.margin_on &= ~guard
                state.probation_until_step[:] = np.where(
                    guard,
                    np.maximum(state.probation_until_step,
                               chaos.guard_probation(t)),
                    state.probation_until_step)
                state.window_violations[:] = np.where(
                    guard, 0, state.window_violations)
        else:
            crash = down = wedge = None

        util = state.used_vcpus / self._vcpus_per_node
        activity = util if down is None else np.where(down, 0.0, util)
        v = np.where(state.margin_on, self._margined_v, cfg.nominal_v)
        if chaos is not None:
            # PDU brownout: the shared rail sags under every node on
            # it.  Zero depth subtracts exactly 0.0, so uncorrelated
            # plans keep their old bytes.
            v = v - chaos.brownout_depth(t)

        # Vmin/droop sampling per core: activity-scaled stochastic droop
        # against the per-core static Vmin plus per-step jitter.
        droop = (cfg.droop_base_v * (0.3 + 0.7 * activity)[:, None]
                 * (1.0 + cfg.droop_sigma * counter_gaussian(
                     keys, step_salt, CH_DROOP, self._core_lanes)))
        vmin_now = (state.vmin_core_v
                    + cfg.vmin_jitter_v * counter_gaussian(
                        keys, step_salt, CH_VMIN_JITTER,
                        self._core_lanes))
        margin_violations = np.add.reduce(
            (v[:, None] - droop < vmin_now).astype(np.int64), axis=1)

        # DRAM retention draw: relaxed refresh trades power for a
        # temperature- and weakness-scaled retention failure rate.
        retention_factor = 2.0 ** (
            (cfg.retention_ref_c - state.temperature_c)
            / cfg.retention_halving_c)
        if cfg.tiered:
            # Per-lane intervals: strong lanes never relax (zero
            # retention stress), normal lanes relax part-way.  The
            # same counter draws feed both branches — only the
            # thresholds differ — so tiering never perturbs streams.
            interval_lanes = np.where(
                state.margin_on[:, None], self._tier_interval_s[None, :],
                cfg.refresh_nominal_s)
            relax_lanes = interval_lanes / cfg.refresh_nominal_s - 1.0
            p_fail = np.clip(
                cfg.retention_fail_scale * relax_lanes
                * state.retention_weak / retention_factor[:, None],
                0.0, 0.5)
        else:
            interval = np.where(state.margin_on, cfg.refresh_relaxed_s,
                                cfg.refresh_nominal_s)
            relax = interval / cfg.refresh_nominal_s - 1.0
            p_fail = np.clip(
                cfg.retention_fail_scale * relax[:, None]
                * state.retention_weak / retention_factor[:, None],
                0.0, 0.5)
        retention_hits = (counter_uniform(keys, step_salt, CH_RETENTION,
                                          self._dimm_lanes)
                          < p_fail).astype(np.int64)
        retention_errors = np.add.reduce(retention_hits, axis=1)
        if cfg.tiered:
            state.retention_errors_normal += np.add.reduce(
                retention_hits[:, self._normal_mask], axis=1)
            state.retention_errors_relaxed += np.add.reduce(
                retention_hits[:, self._relaxed_mask], axis=1)
            refresh_energy_lanes = (
                cfg.dram_refresh_w_per_dimm
                * (cfg.refresh_nominal_s / interval_lanes) * cfg.step_s)
            state.refresh_energy_strong_j += np.add.reduce(
                refresh_energy_lanes[:, self._strong_mask], axis=1)
            state.refresh_energy_normal_j += np.add.reduce(
                refresh_energy_lanes[:, self._normal_mask], axis=1)
            state.refresh_energy_relaxed_j += np.add.reduce(
                refresh_energy_lanes[:, self._relaxed_mask], axis=1)

        # Power/thermal integration: power at the pre-step temperature,
        # then the exact exponential RC step toward the new target.  A
        # cooling failure raises the zone's effective ambient (adding
        # 0.0 outside any window keeps the old bytes).
        power = self._power_w(v, activity, state.temperature_c,
                              state.margin_on)
        ambient = (cfg.ambient_c if chaos is None
                   else cfg.ambient_c + chaos.cooling_delta_c(t))
        target = ambient + cfg.r_th_c_per_w * power
        state.temperature_c[:] = (
            target + (state.temperature_c - target) * self._thermal_decay)
        state.power_w[:] = power
        state.energy_j += power * cfg.step_s

        violations = margin_violations + retention_errors
        state.window_violations += violations
        state.violations_total += violations
        state.retention_errors_total += retention_errors

        # Margin governor review: demote over-budget nodes, re-adopt
        # nodes whose probation expired.  Elementwise, so a node's
        # verdict never depends on its shard-mates.  A wedged governor
        # (chaos) skips its node's review entirely; a DOWN node cannot
        # re-adopt until its outage ends.
        if (t + 1) % cfg.review_every_steps == 0:
            demote = state.margin_on & (state.window_violations
                                        > cfg.error_budget_per_window)
            if wedge is not None:
                demote &= ~wedge
            state.margin_on &= ~demote
            state.demotions += demote
            state.probation_until_step[:] = np.where(
                demote, t + cfg.probation_steps,
                state.probation_until_step)
            if cfg.adopt_margins:
                adopt = (~state.margin_on) & (
                    t >= state.probation_until_step)
                if wedge is not None:
                    adopt &= ~wedge & ~down
                state.margin_on |= adopt
                state.adoptions += adopt
            if wedge is None:
                state.window_violations[:] = 0
            else:
                state.window_violations[:] = np.where(
                    wedge, state.window_violations, 0)

    def step_node(self, state: FleetState, index: int, t: int,
                  chaos=None) -> None:
        """The naive per-object path: step exactly one node.

        Runs the same kernels on a one-node view — the bench baseline,
        and the anchor of the scalar/vector byte-identity tests.
        ``chaos`` must cover the same node range as ``state``; it is
        sliced to the single node alongside the state view.
        """
        self.step(state.view(index, index + 1), t,
                  chaos.view(index, index + 1)
                  if chaos is not None else None)

    # -- deterministic operating-point anchors ------------------------------

    def equilibrium_power_w(self, util: float, margin_on: bool) -> float:
        """Steady-state per-node power at a fixed utilization.

        Iterates the thermal fixed point (power warms the node, heat
        raises leakage) to convergence; pure scalar float math, so both
        report paths compute identical anchors from config alone.
        """
        cfg = self.config
        v = self._margined_v if margin_on else cfg.nominal_v
        temperature = cfg.ambient_c
        power = 0.0
        for _ in range(64):
            power = float(self._power_w(v, util, temperature, margin_on))
            temperature = cfg.ambient_c + cfg.r_th_c_per_w * power
        return power


def build_fleet_state(config: FleetConfig) -> FleetState:
    """Deterministically build the fleet's struct-of-arrays state.

    Keys and statics are pure functions of ``(seed, n_nodes)`` and the
    hardware constants, so every shard worker rebuilding the fleet from
    config regenerates bit-identical arrays.
    """
    keys = fleet_counter_keys(config.n_nodes, config.seed)
    vectors = FleetVectors(config)
    return FleetState(
        config, keys,
        vmin_core_v=vectors.static_vmin(keys),
        retention_weak=vectors.static_retention_weakness(keys),
    )
