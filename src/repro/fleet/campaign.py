"""Vectorized fleet campaigns: shards in parallel within one run.

The sweep engine parallelizes *across* campaigns; this module
parallelizes *within* one.  The fleet is split into contiguous node
shards (:func:`~repro.fleet.state.shard_bounds`); each shard steps
through the :class:`~repro.fleet.vectors.FleetVectors` batch models,
either in-process or across shared-nothing worker subprocesses started
the same way the sweep engine starts its workers
(:func:`~repro.sweep.engine.default_mp_context`).

**Determinism contract** (pinned by ``tests/test_fleet_campaign.py``
and priced by ``benchmarks/bench_fleet_scaling.py``): the campaign
report is byte-identical across ``stepper`` (vector vs. naive per-node
loop), ``shards`` and ``jobs``.  Three mechanisms carry it:

* all randomness is counter-based (:mod:`repro.fleet.vectors`), so a
  draw depends on ``(node key, step, channel, lane)`` — never on which
  shard or process computed it;
* the arrival/placement/departure process runs entirely in the parent
  over the global node arrays, so admission decisions cannot depend on
  the shard split;
* workers advance in lockstep behind a per-step barrier — the parent
  collects every shard's acknowledgement (in worker order) before the
  next step — and telemetry reductions run in the parent over arrays
  reassembled in node-index order.

Snapshots reuse the :class:`~repro.persistence.snapshot.SnapshotStore`
rebuild-from-config-then-overlay protocol: statics regenerate from the
config, only dynamics ride in the payload.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.clock import step_count
from ..core.exceptions import ConfigurationError, PersistenceError
from ..persistence.snapshot import SnapshotStore
from ..sweep.engine import default_mp_context
from .report import fleet_campaign_report
from .state import (
    DYNAMIC_FIELDS,
    FleetConfig,
    shard_bounds,
)
from .vectors import (
    CH_ARRIVAL_COUNT,
    CH_ARRIVAL_LIFETIME,
    CH_ARRIVAL_SIZE,
    FleetVectors,
    arrival_counter_key,
    build_fleet_state,
    counter_uniform,
)

STEPPERS = ("vector", "scalar")


@dataclass(frozen=True)
class FleetCampaignConfig:
    """Everything needed to rebuild a fleet campaign from scratch.

    ``shards``/``stepper`` are execution knobs: they ride in snapshots
    (a resume rebuilds the same execution by default) but are excluded
    from the report's config echo, because the report must not depend
    on them.
    """

    fleet: FleetConfig = field(default_factory=FleetConfig)
    duration_s: float = 3600.0
    arrivals_per_hour: float = 120.0
    mean_lifetime_s: float = 1800.0
    max_vcpus: int = 4
    telemetry_every_steps: int = 10
    shards: int = 1
    stepper: str = "vector"
    label: str = "fleet"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.arrivals_per_hour < 0:
            raise ConfigurationError("arrival rate cannot be negative")
        if self.mean_lifetime_s <= 0:
            raise ConfigurationError("mean lifetime must be positive")
        if not 1 <= self.max_vcpus <= self.fleet.vcpus_per_node:
            raise ConfigurationError(
                "max_vcpus must be in [1, vcpus_per_node]")
        if self.telemetry_every_steps < 1:
            raise ConfigurationError(
                "telemetry_every_steps must be >= 1")
        if self.stepper not in STEPPERS:
            raise ConfigurationError(
                f"stepper must be one of {STEPPERS}")
        shard_bounds(self.fleet.n_nodes, self.shards)  # validates

    @property
    def n_steps(self) -> int:
        """Total steps in the campaign window."""
        return step_count(self.duration_s, self.fleet.step_s)

    def as_dict(self) -> Dict[str, object]:
        """Full plain-dict form (snapshot payloads)."""
        state = {
            "fleet": self.fleet.as_dict(),
            "duration_s": self.duration_s,
            "arrivals_per_hour": self.arrivals_per_hour,
            "mean_lifetime_s": self.mean_lifetime_s,
            "max_vcpus": self.max_vcpus,
            "telemetry_every_steps": self.telemetry_every_steps,
            "shards": self.shards,
            "stepper": self.stepper,
            "label": self.label,
        }
        return state

    def as_report_dict(self) -> Dict[str, object]:
        """Config echo for reports: execution knobs stripped."""
        state = self.as_dict()
        del state["shards"]
        del state["stepper"]
        return state

    @staticmethod
    def from_dict(state: Dict[str, object]) -> "FleetCampaignConfig":
        """Rebuild a config saved by :meth:`as_dict`."""
        state = dict(state)
        state["fleet"] = FleetConfig.from_dict(state["fleet"])  # type: ignore[arg-type]
        return FleetCampaignConfig(**state)  # type: ignore[arg-type]


# -- executors ----------------------------------------------------------------


class _InProcessExecutor:
    """Steps every shard sequentially in the calling process."""

    def __init__(self, config: FleetCampaignConfig) -> None:
        self.config = config
        self.state = build_fleet_state(config.fleet)
        self.vectors = FleetVectors(config.fleet)
        self.bounds = shard_bounds(config.fleet.n_nodes, config.shards)
        self._views = [self.state.view(lo, hi)
                       for lo, hi in self.bounds]

    def step(self, t: int, used: np.ndarray) -> None:
        self.state.used_vcpus[:] = used
        for (lo, hi), view in zip(self.bounds, self._views):
            if self.config.stepper == "vector":
                self.vectors.step(view, t)
            else:
                for index in range(hi - lo):
                    self.vectors.step_node(view, index, t)

    def sample(self) -> Dict[str, np.ndarray]:
        return {"power_w": self.state.power_w.copy(),
                "margin_on": self.state.margin_on.copy()}

    def gather(self) -> Dict[str, object]:
        return self.state.state_dict()

    def load(self, state: Dict[str, object]) -> None:
        self.state.load_state_dict(state)

    def close(self) -> None:
        pass


def _fleet_worker_main(config_state: Dict[str, object],
                       shard_indices: List[int], conn) -> None:
    """Worker entry: own a subset of shards, step on command.

    The worker rebuilds the *full* fleet state from config (statics are
    pure functions of it) but steps only its assigned shard views —
    shared-nothing over shards, byte-identical to any other partition.
    """
    config = FleetCampaignConfig.from_dict(config_state)
    state = build_fleet_state(config.fleet)
    vectors = FleetVectors(config.fleet)
    bounds = shard_bounds(config.fleet.n_nodes, config.shards)
    mine = [(bounds[i], state.view(*bounds[i])) for i in shard_indices]
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "load":
            state.load_state_dict(message[1])
            conn.send(("ok",))
            continue
        if kind == "step":
            _, t, used, want_sample = message
            state.used_vcpus[:] = used
            for (lo, hi), view in mine:
                if config.stepper == "vector":
                    vectors.step(view, t)
                else:
                    for index in range(hi - lo):
                        vectors.step_node(view, index, t)
            if want_sample:
                conn.send(("sample", [
                    (i, {"power_w": view.power_w.copy(),
                         "margin_on": view.margin_on.copy()})
                    for i, ((lo, hi), view)
                    in zip(shard_indices, mine)]))
            else:
                conn.send(("ok",))
            continue
        if kind == "gather":
            conn.send(("state", [
                (i, {name: getattr(view, name).copy()
                     for name, _ in DYNAMIC_FIELDS})
                for i, ((lo, hi), view)
                in zip(shard_indices, mine)]))
            continue
        raise RuntimeError(f"unknown fleet worker command {kind!r}")
    conn.close()


class _ProcessExecutor:
    """Steps shards across shared-nothing worker subprocesses.

    Shards are dealt round-robin to ``jobs`` workers; every step is a
    barrier: the parent broadcasts, then collects acknowledgements in
    worker order before continuing.
    """

    def __init__(self, config: FleetCampaignConfig, jobs: int,
                 mp_context=None) -> None:
        self.config = config
        self.bounds = shard_bounds(config.fleet.n_nodes, config.shards)
        ctx = mp_context if mp_context is not None \
            else default_mp_context()
        jobs = min(jobs, len(self.bounds))
        assignments = [list(range(w, len(self.bounds), jobs))
                       for w in range(jobs)]
        self._assignment = assignments
        self._workers = []
        config_state = config.as_dict()
        for shard_indices in assignments:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_fleet_worker_main,
                args=(config_state, shard_indices, child_conn),
                daemon=True)
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn))

    def _collect(self, expected: str) -> List[Tuple[int, Dict]]:
        pieces: List[Tuple[int, Dict]] = []
        for process, conn in self._workers:
            reply = conn.recv()
            if reply[0] == expected and len(reply) > 1:
                pieces.extend(reply[1])
            elif reply[0] not in ("ok", expected):
                raise PersistenceError(
                    f"fleet worker protocol error: {reply[0]!r}")
        return pieces

    def step(self, t: int, used: np.ndarray) -> None:
        for _, conn in self._workers:
            conn.send(("step", t, used, False))
        self._collect("ok")

    def _assemble(self, pieces: List[Tuple[int, Dict]],
                  names: Sequence[str]) -> Dict[str, np.ndarray]:
        n = self.config.fleet.n_nodes
        out = {}
        by_shard = dict(pieces)
        for name in names:
            parts = [by_shard[i][name]
                     for i in range(len(self.bounds))]
            out[name] = np.concatenate(parts)
            if out[name].shape[0] != n:
                raise PersistenceError("shard reassembly size mismatch")
        return out

    def step_and_sample(self, t: int,
                        used: np.ndarray) -> Dict[str, np.ndarray]:
        for _, conn in self._workers:
            conn.send(("step", t, used, True))
        pieces = self._collect("sample")
        return self._assemble(pieces, ("power_w", "margin_on"))

    def sample(self) -> Dict[str, np.ndarray]:
        raise NotImplementedError  # parent always uses step_and_sample

    def gather(self) -> Dict[str, object]:
        for _, conn in self._workers:
            conn.send(("gather",))
        pieces = self._collect("state")
        names = [name for name, _ in DYNAMIC_FIELDS]
        arrays = self._assemble(pieces, names)
        state: Dict[str, object] = {
            "n_nodes": self.config.fleet.n_nodes}
        for name in names:
            state[name] = arrays[name].tolist()
        return state

    def load(self, state: Dict[str, object]) -> None:
        for _, conn in self._workers:
            conn.send(("load", state))
        self._collect("ok")

    def close(self) -> None:
        for process, conn in self._workers:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process, conn in self._workers:
            process.join(timeout=10)
            conn.close()


# -- the campaign loop --------------------------------------------------------


class FleetCampaign:
    """One vectorized fleet campaign: arrivals, stepping, telemetry.

    The parent owns the whole admission layer (arrival draws, argmax
    placement over global free capacity, the departure heap); the
    executor owns only physics stepping.  Everything the parent does is
    therefore trivially shard- and jobs-invariant.
    """

    def __init__(self, config: FleetCampaignConfig, jobs: int = 1,
                 snapshot_dir=None,
                 snapshot_every_steps: Optional[int] = None,
                 mp_context=None) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.config = config
        self.jobs = jobs
        if jobs == 1:
            self.executor = _InProcessExecutor(config)
        else:
            self.executor = _ProcessExecutor(config, jobs,
                                             mp_context=mp_context)
        self.store = (SnapshotStore(snapshot_dir)
                      if snapshot_dir is not None else None)
        self.snapshot_every_steps = snapshot_every_steps
        n = config.fleet.n_nodes
        self._arrival_key = arrival_counter_key(config.fleet.seed)
        self._used = np.zeros(n, dtype=np.int64)
        #: Min-heap of (departure_time_s, seq, node_index, vcpus).
        self._departures: List[Tuple[float, int, int, int]] = []
        self._arrival_seq = 0
        self.step_index = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.series: List[Dict[str, object]] = []

    # -- admission (parent-side, partition-invariant) ---------------------

    def _terminate_departed(self, now_s: float) -> None:
        while self._departures and self._departures[0][0] <= now_s:
            _, _, node, vcpus = heapq.heappop(self._departures)
            self._used[node] -= vcpus
            self.completed += 1

    def _admit_arrivals(self, t: int) -> None:
        cfg = self.config
        step_s = cfg.fleet.step_s
        expected = cfg.arrivals_per_hour * step_s / 3600.0
        count = int(math.floor(expected))
        fraction = expected - count
        if fraction > 0 and float(counter_uniform(
                self._arrival_key, np.uint64(t),
                CH_ARRIVAL_COUNT)) < fraction:
            count += 1
        capacity = cfg.fleet.vcpus_per_node
        now_s = t * step_s
        for _ in range(count):
            seq = self._arrival_seq
            self._arrival_seq += 1
            size_draw = float(counter_uniform(
                self._arrival_key, np.uint64(seq), CH_ARRIVAL_SIZE))
            vcpus = min(cfg.max_vcpus, 1 + int(size_draw * cfg.max_vcpus))
            life_draw = float(counter_uniform(
                self._arrival_key, np.uint64(seq), CH_ARRIVAL_LIFETIME))
            lifetime_s = -cfg.mean_lifetime_s * math.log1p(-life_draw)
            free = capacity - self._used
            node = int(np.argmax(free))
            if free[node] < vcpus:
                self.rejected += 1
                continue
            self._used[node] += vcpus
            heapq.heappush(self._departures,
                           (now_s + lifetime_s, seq, node, vcpus))
            self.admitted += 1

    # -- telemetry reduction ----------------------------------------------

    def _record_sample(self, t: int,
                       arrays: Dict[str, np.ndarray]) -> None:
        cfg = self.config.fleet
        n = cfg.n_nodes
        power = arrays["power_w"]
        fleet_power = math.fsum(float(p) for p in power)
        total_used = int(self._used.sum())
        self.series.append({
            "step": t,
            "time_s": (t + 1) * cfg.step_s,
            "fleet_power_w": fleet_power,
            "mean_power_w": fleet_power / n,
            "mean_util": total_used / (n * cfg.vcpus_per_node),
            "active_vcpus": total_used,
            "margins_adopted": int(np.count_nonzero(
                arrays["margin_on"])),
        })

    # -- snapshots ----------------------------------------------------------

    def take_snapshot(self) -> None:
        """Persist config + campaign dynamics + fleet dynamics."""
        if self.store is None:
            raise PersistenceError(
                "campaign was built without a snapshot directory")
        payload = {
            "config": self.config.as_dict(),
            "campaign": {
                "step_index": self.step_index,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "arrival_seq": self._arrival_seq,
                "used": self._used.tolist(),
                "departures": sorted(
                    [list(entry) for entry in self._departures]),
                "series": list(self.series),
            },
            "fleet": self.executor.gather(),
        }
        self.store.save(self.step_index, payload)

    def _load_snapshot(self, payload: Dict[str, object]) -> None:
        campaign = payload["campaign"]
        self.step_index = int(campaign["step_index"])  # type: ignore[index]
        self.admitted = int(campaign["admitted"])  # type: ignore[index]
        self.rejected = int(campaign["rejected"])  # type: ignore[index]
        self.completed = int(campaign["completed"])  # type: ignore[index]
        self._arrival_seq = int(campaign["arrival_seq"])  # type: ignore[index]
        self._used[:] = np.asarray(campaign["used"], dtype=np.int64)  # type: ignore[index]
        self._departures = [
            (float(when), int(seq), int(node), int(vcpus))
            for when, seq, node, vcpus in campaign["departures"]]  # type: ignore[index]
        heapq.heapify(self._departures)
        self.series = [dict(entry) for entry in campaign["series"]]  # type: ignore[index]
        self.executor.load(payload["fleet"])  # type: ignore[arg-type]

    def resume(self) -> bool:
        """Load the newest valid snapshot; False when starting fresh."""
        if self.store is None:
            raise PersistenceError(
                "campaign was built without a snapshot directory")
        loaded = self.store.load_newest()
        if loaded is None:
            return False
        _generation, payload = loaded
        saved = FleetCampaignConfig.from_dict(payload["config"])  # type: ignore[arg-type]
        ours = replace(self.config, shards=saved.shards,
                       stepper=saved.stepper)
        if saved != ours:
            raise PersistenceError(
                "snapshot belongs to a different campaign config")
        self._load_snapshot(payload)
        return True

    # -- the loop -----------------------------------------------------------

    def run(self, until_step: Optional[int] = None) -> None:
        """Advance to ``until_step`` (exclusive; default: completion)."""
        cfg = self.config
        n_steps = cfg.n_steps
        stop = n_steps if until_step is None \
            else min(until_step, n_steps)
        telemetry_every = cfg.telemetry_every_steps
        while self.step_index < stop:
            t = self.step_index
            self._terminate_departed(t * cfg.fleet.step_s)
            self._admit_arrivals(t)
            want_sample = ((t + 1) % telemetry_every == 0
                           or t == n_steps - 1)
            if want_sample and isinstance(self.executor,
                                          _ProcessExecutor):
                arrays = self.executor.step_and_sample(t, self._used)
            else:
                self.executor.step(t, self._used)
                arrays = (self.executor.sample()
                          if want_sample else None)
            if want_sample and arrays is not None:
                self._record_sample(t, arrays)
            self.step_index = t + 1
            if (self.store is not None
                    and self.snapshot_every_steps is not None
                    and self.step_index % self.snapshot_every_steps
                    == 0):
                self.take_snapshot()

    def report(self) -> Dict[str, object]:
        """The canonical campaign report (shards/jobs/stepper
        invariant)."""
        final = self.executor.gather()
        totals = {
            "steps": self.step_index,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "active_vcpus_final": int(self._used.sum()),
            "energy_j": math.fsum(float(e) for e in final["energy_j"]),  # type: ignore[union-attr]
            "violations": int(sum(final["violations_total"])),  # type: ignore[arg-type]
            "retention_errors": int(sum(
                final["retention_errors_total"])),  # type: ignore[arg-type]
            "demotions": int(sum(final["demotions"])),  # type: ignore[arg-type]
            "adoptions": int(sum(final["adoptions"])),  # type: ignore[arg-type]
            "margins_adopted_final": int(sum(final["margin_on"])),  # type: ignore[arg-type]
        }
        return fleet_campaign_report(
            self.config.as_report_dict(), self.config.fleet,
            totals, self.series)

    def close(self) -> None:
        """Tear down the executor (a no-op for the in-process one)."""
        self.executor.close()


def run_fleet_campaign(config: FleetCampaignConfig, jobs: int = 1,
                       snapshot_dir=None,
                       snapshot_every_steps: Optional[int] = None,
                       resume: bool = False,
                       mp_context=None) -> Dict[str, object]:
    """Run one fleet campaign to completion and return its report."""
    campaign = FleetCampaign(config, jobs=jobs,
                             snapshot_dir=snapshot_dir,
                             snapshot_every_steps=snapshot_every_steps,
                             mp_context=mp_context)
    try:
        if resume:
            campaign.resume()
        campaign.run()
        return campaign.report()
    finally:
        campaign.close()
