"""Vectorized fleet campaigns: supervised shards in parallel in one run.

The sweep engine parallelizes *across* campaigns; this module
parallelizes *within* one.  The fleet is split into contiguous node
shards (:func:`~repro.fleet.state.shard_bounds`); each shard steps
through the :class:`~repro.fleet.vectors.FleetVectors` batch models,
either in-process or across shared-nothing worker subprocesses started
the same way the sweep engine starts its workers
(:func:`~repro.sweep.engine.default_mp_context`).

**Determinism contract** (pinned by ``tests/test_fleet_campaign.py``
and priced by ``benchmarks/bench_fleet_scaling.py`` /
``benchmarks/bench_fleet_chaos.py``): the campaign report is
byte-identical across ``stepper`` (vector vs. naive per-node loop),
``shards``, ``jobs`` — and across **worker deaths**.  Four mechanisms
carry it:

* all randomness is counter-based (:mod:`repro.fleet.vectors`,
  :mod:`repro.fleet.chaos`), so a draw depends on ``(node key, step,
  channel, lane)`` — never on which shard or process computed it;
* the arrival/placement/departure process runs entirely in the parent
  over the global node arrays, so admission decisions cannot depend on
  the shard split;
* workers advance in lockstep behind a per-step barrier — the parent
  collects every shard's acknowledgement (in worker order) before the
  next step — and telemetry reductions run in the parent over arrays
  reassembled in node-index order;
* every worker exchange is *supervised*: receives poll with a
  deadline, a dead or wedged worker is SIGKILLed, respawned, and
  deterministically **replayed** — its shards rebuilt from the last
  per-shard checkpoint plus re-stepping the counter-based kernels over
  the recorded admission inputs — so the respawned worker reaches the
  exact state the dead one would have had.

When a worker exhausts ``max_worker_restarts``, its shards are
**quarantined**: their nodes are marked DOWN in :class:`FleetState`,
admission routes around them, their physics freeze at the failure
step, and the quarantine is recorded in the report — the campaign
degrades gracefully instead of dying.

Snapshots reuse the :class:`~repro.persistence.snapshot.SnapshotStore`
rebuild-from-config-then-overlay protocol at **per-shard granularity**
(:func:`~repro.persistence.snapshot.shard_entries`): statics regenerate
from the config, each shard's dynamics ride in an individually
checksummed entry.
"""

from __future__ import annotations

import heapq
import logging
import math
import os
import signal
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.clock import step_count
from ..core.exceptions import (
    ConfigurationError,
    FleetWorkerError,
    PersistenceError,
)
from ..persistence.snapshot import (
    SnapshotStore,
    shard_entries,
    verify_shard_entries,
)
from ..sweep.engine import default_mp_context
from ..resilience.chaos import FaultPlan
from .chaos import FleetChaos, fleet_correlated_plan, fleet_fault_plan
from .domains import FaultDomainTopology
from .report import fleet_campaign_report
from .state import (
    DYNAMIC_FIELDS,
    FleetConfig,
    shard_bounds,
)
from .vectors import (
    CH_ARRIVAL_COUNT,
    CH_ARRIVAL_LIFETIME,
    CH_ARRIVAL_SIZE,
    FleetVectors,
    arrival_counter_key,
    build_fleet_state,
    counter_uniform,
)

logger = logging.getLogger(__name__)

STEPPERS = ("vector", "scalar")

#: Granularity of the supervised receive loop (seconds between
#: liveness checks while waiting on a worker reply).
_POLL_S = 0.05

#: ``down_until_step`` sentinel for permanently quarantined nodes.
_FOREVER = 2**62


@dataclass(frozen=True)
class FleetCampaignConfig:
    """Everything needed to rebuild a fleet campaign from scratch.

    ``shards``/``stepper`` are execution knobs: they ride in snapshots
    (a resume rebuilds the same execution by default) but are excluded
    from the report's config echo, because the report must not depend
    on them.  The chaos knobs (``chaos_seed`` and friends) are *not*
    execution knobs — injected faults change the physics, so they stay
    in the echo.  Supervision knobs (worker timeouts, restart budgets,
    kill injection) live on :class:`FleetCampaign`, not here: they must
    never perturb the report.
    """

    fleet: FleetConfig = field(default_factory=FleetConfig)
    duration_s: float = 3600.0
    arrivals_per_hour: float = 120.0
    mean_lifetime_s: float = 1800.0
    max_vcpus: int = 4
    telemetry_every_steps: int = 10
    shards: int = 1
    stepper: str = "vector"
    label: str = "fleet"
    #: Seeded vectorized fault plan (None = no chaos).
    chaos_seed: Optional[int] = None
    chaos_rate_per_hour: float = 6.0
    chaos_intensity: float = 0.5
    #: Steps a node stays DOWN after an injected crash.
    crash_down_steps: int = 5
    #: Seeded *correlated* fault plan over the fault-domain topology
    #: (None = no correlated chaos).  Independent of ``chaos_seed`` so
    #: the two storms compose freely.
    correlated_seed: Optional[int] = None
    correlated_rate_per_hour: float = 1.0
    correlated_intensity: float = 0.7
    #: Domain-aware defenses: the correlated-demotion guard in the
    #: step kernels, rack anti-affinity + at-risk routing in admission,
    #: and bounded evacuation off at-risk domains.  A physics knob (it
    #: changes the report), which is the point — the A/B arms differ
    #: only here.
    domain_defense: bool = False
    #: Synthetic tenants for anti-affinity accounting (VM ``seq %
    #: tenants`` — deterministic, so it never needs persisting).
    tenants: int = 4
    #: Evacuation backpressure: inbound migrations per target rack per
    #: step, so fleeing a brownout cannot stampede the survivors.
    max_migrations_per_rack_step: int = 2

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.arrivals_per_hour < 0:
            raise ConfigurationError("arrival rate cannot be negative")
        if self.mean_lifetime_s <= 0:
            raise ConfigurationError("mean lifetime must be positive")
        if not 1 <= self.max_vcpus <= self.fleet.vcpus_per_node:
            raise ConfigurationError(
                "max_vcpus must be in [1, vcpus_per_node]")
        if self.telemetry_every_steps < 1:
            raise ConfigurationError(
                "telemetry_every_steps must be >= 1")
        if self.stepper not in STEPPERS:
            raise ConfigurationError(
                f"stepper must be one of {STEPPERS}")
        if self.chaos_rate_per_hour < 0:
            raise ConfigurationError("chaos rate cannot be negative")
        if not 0 < self.chaos_intensity <= 1:
            raise ConfigurationError(
                "chaos intensity must be in (0, 1]")
        if self.crash_down_steps < 1:
            raise ConfigurationError("crash_down_steps must be >= 1")
        if self.correlated_rate_per_hour < 0:
            raise ConfigurationError(
                "correlated rate cannot be negative")
        if not 0 < self.correlated_intensity <= 1:
            raise ConfigurationError(
                "correlated intensity must be in (0, 1]")
        if self.tenants < 1:
            raise ConfigurationError("tenants must be >= 1")
        if self.max_migrations_per_rack_step < 1:
            raise ConfigurationError(
                "max_migrations_per_rack_step must be >= 1")
        shard_bounds(self.fleet.n_nodes, self.shards)  # validates

    @property
    def n_steps(self) -> int:
        """Total steps in the campaign window."""
        return step_count(self.duration_s, self.fleet.step_s)

    def fault_plan(self):
        """The seeded fleet fault plan, or None without chaos."""
        if self.chaos_seed is None:
            return None
        return fleet_fault_plan(
            self.fleet.n_nodes, self.duration_s, seed=self.chaos_seed,
            rate_per_hour=self.chaos_rate_per_hour,
            intensity=self.chaos_intensity)

    def correlated_plan(self):
        """The seeded correlated-domain plan, or None without one."""
        if self.correlated_seed is None:
            return None
        return fleet_correlated_plan(
            self.fleet, self.duration_s, seed=self.correlated_seed,
            rate_per_hour=self.correlated_rate_per_hour,
            intensity=self.correlated_intensity)

    def build_chaos(self, keys=None) -> Optional[FleetChaos]:
        """Compile the fault plan(s) to mask kernels (None without chaos).

        Pure function of the config, so the parent, every worker, and
        every replay compile bit-identical masks independently.  The
        per-node and correlated plans merge into one compiled object.
        """
        plan = self.fault_plan()
        correlated = self.correlated_plan()
        if plan is None and correlated is None:
            return None
        specs = list(plan.specs if plan is not None else ())
        specs.extend(correlated.specs if correlated is not None else ())
        return FleetChaos(FaultPlan(specs), self.fleet,
                          crash_down_steps=self.crash_down_steps,
                          keys=keys, defense=self.domain_defense)

    def as_dict(self) -> Dict[str, object]:
        """Full plain-dict form (snapshot payloads)."""
        state = {
            "fleet": self.fleet.as_dict(),
            "duration_s": self.duration_s,
            "arrivals_per_hour": self.arrivals_per_hour,
            "mean_lifetime_s": self.mean_lifetime_s,
            "max_vcpus": self.max_vcpus,
            "telemetry_every_steps": self.telemetry_every_steps,
            "shards": self.shards,
            "stepper": self.stepper,
            "label": self.label,
            "chaos_seed": self.chaos_seed,
            "chaos_rate_per_hour": self.chaos_rate_per_hour,
            "chaos_intensity": self.chaos_intensity,
            "crash_down_steps": self.crash_down_steps,
            "correlated_seed": self.correlated_seed,
            "correlated_rate_per_hour": self.correlated_rate_per_hour,
            "correlated_intensity": self.correlated_intensity,
            "domain_defense": self.domain_defense,
            "tenants": self.tenants,
            "max_migrations_per_rack_step":
                self.max_migrations_per_rack_step,
        }
        return state

    def as_report_dict(self) -> Dict[str, object]:
        """Config echo for reports: execution knobs stripped."""
        state = self.as_dict()
        del state["shards"]
        del state["stepper"]
        return state

    @staticmethod
    def from_dict(state: Dict[str, object]) -> "FleetCampaignConfig":
        """Rebuild a config saved by :meth:`as_dict`."""
        state = dict(state)
        state["fleet"] = FleetConfig.from_dict(state["fleet"])  # type: ignore[arg-type]
        return FleetCampaignConfig(**state)  # type: ignore[arg-type]


# -- executors ----------------------------------------------------------------


class _InProcessExecutor:
    """Steps every shard sequentially in the calling process."""

    def __init__(self, config: FleetCampaignConfig) -> None:
        self.config = config
        self.state = build_fleet_state(config.fleet)
        self.vectors = FleetVectors(config.fleet)
        self.bounds = shard_bounds(config.fleet.n_nodes, config.shards)
        self.chaos = config.build_chaos(keys=self.state.keys)
        self._views = [self.state.view(lo, hi)
                       for lo, hi in self.bounds]
        self._shard_chaos = [
            self.chaos.view(lo, hi) if self.chaos is not None else None
            for lo, hi in self.bounds]
        self.worker_restarts_total = 0

    def step(self, t: int, used: np.ndarray) -> None:
        self.state.used_vcpus[:] = used
        for (lo, hi), view, chaos_view in zip(
                self.bounds, self._views, self._shard_chaos):
            if self.config.stepper == "vector":
                self.vectors.step(view, t, chaos_view)
            else:
                for index in range(hi - lo):
                    self.vectors.step_node(view, index, t, chaos_view)

    def sample(self) -> Dict[str, np.ndarray]:
        return {"power_w": self.state.power_w.copy(),
                "margin_on": self.state.margin_on.copy()}

    def gather(self) -> Dict[str, object]:
        return self.state.state_dict()

    def gather_shards(self) -> List[Tuple[int, int, int, Dict]]:
        """Per-shard ``(index, lo, hi, state)`` dynamics for snapshots."""
        return [
            (i, lo, hi, {name: getattr(view, name).tolist()
                         for name, _ in DYNAMIC_FIELDS})
            for i, ((lo, hi), view)
            in enumerate(zip(self.bounds, self._views))]

    def quarantined_mask(self) -> np.ndarray:
        """In-process stepping has no workers, hence no quarantine."""
        return np.zeros(self.config.fleet.n_nodes, dtype=bool)

    def load(self, state: Dict[str, object]) -> None:
        self.state.load_state_dict(state)

    def close(self) -> None:
        pass


def _fleet_worker_main(config_state: Dict[str, object],
                       shard_indices: List[int], conn) -> None:
    """Worker entry: own a subset of shards, step on command.

    The worker rebuilds the *full* fleet state from config (statics are
    pure functions of it) but steps only its assigned shard views —
    shared-nothing over shards, byte-identical to any other partition.
    Every reply carries the step it acknowledges (-1 for non-step
    commands), feeding the parent's liveness ledger.
    """
    config = FleetCampaignConfig.from_dict(config_state)
    state = build_fleet_state(config.fleet)
    vectors = FleetVectors(config.fleet)
    chaos = config.build_chaos(keys=state.keys)
    bounds = shard_bounds(config.fleet.n_nodes, config.shards)
    mine = []
    for i in shard_indices:
        lo, hi = bounds[i]
        mine.append((i, (lo, hi), state.view(lo, hi),
                     chaos.view(lo, hi) if chaos is not None else None))

    def advance(t: int, used) -> None:
        state.used_vcpus[:] = used
        for _i, (lo, hi), view, chaos_view in mine:
            if config.stepper == "vector":
                vectors.step(view, t, chaos_view)
            else:
                for index in range(hi - lo):
                    vectors.step_node(view, index, t, chaos_view)

    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "load":
            for i, piece in message[1]:
                for owned, _b, view, _c in mine:
                    if owned != i or piece is None:
                        continue
                    for name, dtype in DYNAMIC_FIELDS:
                        getattr(view, name)[:] = np.asarray(
                            piece[name], dtype=dtype)
            conn.send(("ok", -1))
            continue
        if kind == "replay":
            for t, used in message[1]:
                advance(t, used)
            conn.send(("ok", -1))
            continue
        if kind == "step":
            _, t, used, want_sample = message
            advance(t, used)
            if want_sample:
                conn.send(("sample", [
                    (i, {"power_w": view.power_w.copy(),
                         "margin_on": view.margin_on.copy()})
                    for i, _b, view, _c in mine], t))
            else:
                conn.send(("ok", t))
            continue
        if kind == "gather":
            conn.send(("state", [
                (i, {name: getattr(view, name).copy()
                     for name, _ in DYNAMIC_FIELDS})
                for i, _b, view, _c in mine], -1))
            continue
        raise RuntimeError(f"unknown fleet worker command {kind!r}")
    conn.close()


class _ProcessExecutor:
    """Steps shards across supervised shared-nothing worker processes.

    Shards are dealt round-robin to ``jobs`` workers; every step is a
    barrier: the parent broadcasts, then collects acknowledgements in
    worker order before continuing.  Every receive polls with a
    deadline; a dead, wedged, or straggling worker is SIGKILLed,
    respawned, and deterministically replayed from the last per-shard
    checkpoint plus the recorded admission inputs.  A worker that
    exhausts ``max_worker_restarts`` has its shards quarantined: the
    parent replays them in-process to the failure step, marks their
    nodes DOWN, and freezes them for the rest of the campaign.
    """

    #: First patience for ``close()``; escalation halves it.
    CLOSE_JOIN_TIMEOUT_S = 10.0

    def __init__(self, config: FleetCampaignConfig, jobs: int,
                 mp_context=None, worker_timeout_s: float = 30.0,
                 max_worker_restarts: int = 2,
                 checkpoint_every_steps: Optional[int] = 25,
                 kill_worker_at: Sequence[Tuple[int, int]] = ()) -> None:
        if worker_timeout_s <= 0:
            raise ConfigurationError("worker timeout must be positive")
        if max_worker_restarts < 0:
            raise ConfigurationError(
                "max_worker_restarts cannot be negative")
        if checkpoint_every_steps is not None \
                and checkpoint_every_steps < 1:
            raise ConfigurationError(
                "checkpoint_every_steps must be >= 1")
        self.config = config
        self.bounds = shard_bounds(config.fleet.n_nodes, config.shards)
        self._ctx = mp_context if mp_context is not None \
            else default_mp_context()
        jobs = min(jobs, len(self.bounds))
        self.jobs = jobs
        self.worker_timeout_s = worker_timeout_s
        self.max_worker_restarts = max_worker_restarts
        self.checkpoint_every_steps = checkpoint_every_steps
        self._assignment = [list(range(w, len(self.bounds), jobs))
                            for w in range(jobs)]
        self._kill_at: Dict[int, List[int]] = {}
        for step, worker in kill_worker_at:
            if not 0 <= worker < jobs:
                raise ConfigurationError(
                    f"kill target worker {worker} outside [0, {jobs})")
            if step < 0:
                raise ConfigurationError("kill step must be >= 0")
            self._kill_at.setdefault(int(step), []).append(int(worker))
        self._config_state = config.as_dict()
        self.chaos = config.build_chaos()
        self._vectors = FleetVectors(config.fleet)
        self._workers: List[Optional[tuple]] = [None] * jobs
        self._restarts = [0] * jobs
        self._last_acked: List[Optional[int]] = [None] * jobs
        self._quarantined_workers: set = set()
        #: Last known-good per-shard dynamics (None = fresh build).
        self._ckpt: Dict[int, Optional[Dict[str, np.ndarray]]] = {
            i: None for i in range(len(self.bounds))}
        #: Admission inputs since the last checkpoint — the replay log.
        self._history: List[Tuple[int, np.ndarray]] = []
        self.worker_restarts_total = 0
        for worker in range(jobs):
            self._spawn(worker)

    # -- supervised plumbing ----------------------------------------------

    def _spawn(self, worker: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_fleet_worker_main,
            args=(self._config_state, self._assignment[worker],
                  child_conn),
            daemon=True)
        process.start()
        child_conn.close()
        self._workers[worker] = (process, parent_conn)
        self._last_acked[worker] = None

    def _live_workers(self) -> List[int]:
        return [w for w in range(self.jobs)
                if w not in self._quarantined_workers]

    def _send(self, worker: int, message) -> None:
        _process, conn = self._workers[worker]
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            # Death is detected — and recovered — at receive time.
            pass

    def _failure(self, worker: int, what: str) -> FleetWorkerError:
        return FleetWorkerError(
            f"fleet worker {worker} "
            f"(shards {self._assignment[worker]}) {what}; "
            f"last acked step: {self._last_acked[worker]}",
            worker=worker, shards=self._assignment[worker],
            last_acked_step=self._last_acked[worker])

    def _recv(self, worker: int, timeout: Optional[float] = None):
        """Poll-with-deadline receive: never blocks on a dead worker."""
        process, conn = self._workers[worker]
        timeout = self.worker_timeout_s if timeout is None else timeout
        deadline = time.monotonic() + timeout
        while True:
            try:
                if conn.poll(_POLL_S):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise self._failure(
                    worker, f"closed its pipe ({exc})") from exc
            if not process.is_alive():
                try:  # drain a final buffered reply, if any
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise self._failure(worker, "died")
            if time.monotonic() >= deadline:
                raise self._failure(
                    worker, f"wedged: no reply within {timeout:.1f}s")

    def _note_ack(self, worker: int, reply) -> None:
        step = reply[-1] if reply and isinstance(reply[-1], int) else -1
        if reply[0] in ("ok", "sample") and step >= 0:
            self._last_acked[worker] = step

    def _restart(self, worker: int) -> bool:
        """Kill + respawn one worker; False once the budget is spent."""
        process, conn = self._workers[worker]
        if process.is_alive():
            process.kill()
        process.join(timeout=10)
        conn.close()
        self._restarts[worker] += 1
        self.worker_restarts_total += 1
        if self._restarts[worker] > self.max_worker_restarts:
            return False
        self._spawn(worker)
        logger.warning(
            "fleet worker %d respawned (restart %d/%d)", worker,
            self._restarts[worker], self.max_worker_restarts)
        return True

    def _reload_and_replay(self, worker: int,
                           replay: List[Tuple[int, np.ndarray]]) -> None:
        """Rebuild a respawned worker: checkpoint overlay + re-step."""
        self._send(worker, ("load", [(i, self._ckpt[i])
                                     for i in self._assignment[worker]]))
        reply = self._recv(worker)
        if reply[0] != "ok":
            raise self._failure(
                worker, f"broke protocol on reload ({reply[0]!r})")
        if replay:
            self._send(worker, ("replay", list(replay)))
            reply = self._recv(
                worker, timeout=self.worker_timeout_s
                + _POLL_S * len(replay))
            if reply[0] != "ok":
                raise self._failure(
                    worker, f"broke protocol on replay ({reply[0]!r})")

    def _collect(self, worker: int, message,
                 replay: List[Tuple[int, np.ndarray]]):
        """Receive one reply, recovering through worker failures.

        ``message`` is the already-sent command (resent after a
        respawn); ``replay`` is the admission-input log to re-step
        first.  Returns None when the worker got quarantined instead.
        """
        while True:
            try:
                reply = self._recv(worker)
            except FleetWorkerError as failure:
                logger.warning("supervising: %s", failure)
                if not self._restart(worker):
                    self._quarantine(worker, message, replay)
                    return None
                try:
                    self._reload_and_replay(worker, replay)
                    self._send(worker, message)
                except FleetWorkerError as exc:
                    logger.warning(
                        "respawned worker failed during replay: %s",
                        exc)
                continue
            self._note_ack(worker, reply)
            return reply

    # -- quarantine escalation --------------------------------------------

    def _quarantine(self, worker: int, message,
                    replay: List[Tuple[int, np.ndarray]]) -> None:
        """Freeze a hopeless worker's shards at the failure step.

        The parent replays the shards in-process (checkpoint overlay +
        recorded admission inputs + the in-flight step, if any) so the
        frozen state is exactly what the worker would have computed,
        then marks every node DOWN and quarantined.
        """
        logger.error(
            "fleet worker %d exhausted %d restart(s); quarantining "
            "shards %s", worker, self.max_worker_restarts,
            self._assignment[worker])
        config = self.config
        state = build_fleet_state(config.fleet)
        shard_views = []
        for i in self._assignment[worker]:
            lo, hi = self.bounds[i]
            view = state.view(lo, hi)
            ckpt = self._ckpt[i]
            if ckpt is not None:
                for name, dtype in DYNAMIC_FIELDS:
                    getattr(view, name)[:] = np.asarray(
                        ckpt[name], dtype=dtype)
            shard_views.append(
                (i, (lo, hi), view,
                 self.chaos.view(lo, hi)
                 if self.chaos is not None else None))
        steps = list(replay)
        if message and message[0] == "step":
            steps.append((message[1], message[2]))
        for t, used in steps:
            state.used_vcpus[:] = used
            for _i, (lo, hi), view, chaos_view in shard_views:
                if config.stepper == "vector":
                    self._vectors.step(view, t, chaos_view)
                else:
                    for index in range(hi - lo):
                        self._vectors.step_node(
                            view, index, t, chaos_view)
        for i, _b, view, _c in shard_views:
            view.quarantined[:] = True
            view.down_until_step[:] = _FOREVER
            self._ckpt[i] = {name: getattr(view, name).copy()
                             for name, _ in DYNAMIC_FIELDS}
        self._quarantined_workers.add(worker)

    def quarantined_mask(self) -> np.ndarray:
        """Boolean per-node mask of quarantined (frozen) shards."""
        mask = np.zeros(self.config.fleet.n_nodes, dtype=bool)
        for worker in self._quarantined_workers:
            for i in self._assignment[worker]:
                lo, hi = self.bounds[i]
                mask[lo:hi] = True
        return mask

    # -- the per-step barrier ----------------------------------------------

    def _maybe_kill(self, t: int) -> None:
        """Deliver injected SIGKILLs scheduled for step ``t``."""
        for worker in self._kill_at.get(t, ()):
            if worker in self._quarantined_workers:
                continue
            process, _conn = self._workers[worker]
            if process.pid is not None and process.is_alive():
                os.kill(process.pid, signal.SIGKILL)
                logger.warning(
                    "injected SIGKILL into fleet worker %d at step %d",
                    worker, t)

    def _step_exchange(self, t: int, used: np.ndarray,
                       want_sample: bool):
        self._maybe_kill(t)
        used = np.array(used, dtype=np.int64)
        self._history.append((t, used))
        message = ("step", t, used, want_sample)
        replay = self._history[:-1]
        live = self._live_workers()
        for worker in live:
            self._send(worker, message)
        pieces: List[Tuple[int, Dict]] = []
        for worker in live:
            reply = self._collect(worker, message, replay)
            if reply is None:
                continue
            if reply[0] != ("sample" if want_sample else "ok"):
                raise PersistenceError(
                    f"fleet worker protocol error: {reply[0]!r}")
            if want_sample:
                pieces.extend(reply[1])
        if (self.checkpoint_every_steps is not None
                and len(self._history) >= self.checkpoint_every_steps):
            self._checkpoint()
        if not want_sample:
            return None
        have = {i for i, _ in pieces}
        for i in range(len(self.bounds)):
            if i not in have:  # quarantined: frozen at failure step
                ckpt = self._ckpt[i]
                pieces.append((i, {
                    "power_w": np.asarray(ckpt["power_w"],
                                          dtype=np.float64),
                    "margin_on": np.asarray(ckpt["margin_on"],
                                            dtype=np.bool_)}))
        return pieces

    def step(self, t: int, used: np.ndarray) -> None:
        self._step_exchange(t, used, False)

    def _assemble(self, pieces: List[Tuple[int, Dict]],
                  names: Sequence[str]) -> Dict[str, np.ndarray]:
        n = self.config.fleet.n_nodes
        out = {}
        by_shard = dict(pieces)
        for name in names:
            parts = [np.asarray(by_shard[i][name])
                     for i in range(len(self.bounds))]
            out[name] = np.concatenate(parts)
            if out[name].shape[0] != n:
                raise PersistenceError("shard reassembly size mismatch")
        return out

    def step_and_sample(self, t: int,
                        used: np.ndarray) -> Dict[str, np.ndarray]:
        pieces = self._step_exchange(t, used, True)
        return self._assemble(pieces, ("power_w", "margin_on"))

    def sample(self) -> Dict[str, np.ndarray]:
        raise NotImplementedError  # parent always uses step_and_sample

    # -- checkpoints, gather, load -----------------------------------------

    def _gather_pieces(self) -> List[Tuple[int, Dict]]:
        message = ("gather",)
        live = self._live_workers()
        for worker in live:
            self._send(worker, message)
        pieces: List[Tuple[int, Dict]] = []
        for worker in live:
            reply = self._collect(worker, message, list(self._history))
            if reply is None:
                continue
            if reply[0] != "state":
                raise PersistenceError(
                    f"fleet worker protocol error: {reply[0]!r}")
            pieces.extend(reply[1])
        return pieces

    def _checkpoint(self) -> None:
        """Refresh the per-shard replay baseline, trim the input log."""
        for i, arrays in self._gather_pieces():
            self._ckpt[i] = arrays
        self._history.clear()

    def _all_pieces(self) -> Dict[int, Dict]:
        pieces = dict(self._gather_pieces())
        for i in range(len(self.bounds)):
            if i not in pieces:  # quarantined: frozen state
                pieces[i] = self._ckpt[i]
        return pieces

    def gather(self) -> Dict[str, object]:
        pieces = self._all_pieces()
        names = [name for name, _ in DYNAMIC_FIELDS]
        arrays = self._assemble(list(pieces.items()), names)
        state: Dict[str, object] = {
            "n_nodes": self.config.fleet.n_nodes}
        for name in names:
            state[name] = arrays[name].tolist()
        return state

    def gather_shards(self) -> List[Tuple[int, int, int, Dict]]:
        """Per-shard ``(index, lo, hi, state)`` dynamics for snapshots."""
        pieces = self._all_pieces()
        return [
            (i, lo, hi, {name: np.asarray(pieces[i][name],
                                          dtype=dtype).tolist()
                         for name, dtype in DYNAMIC_FIELDS})
            for i, (lo, hi) in enumerate(self.bounds)]

    def load(self, state: Dict[str, object]) -> None:
        n = self.config.fleet.n_nodes
        if int(state["n_nodes"]) != n:  # type: ignore[arg-type]
            raise ConfigurationError(
                f"state is for {state['n_nodes']} nodes, "
                f"this fleet has {n}")
        arrays = {name: np.asarray(state[name], dtype=dtype)
                  for name, dtype in DYNAMIC_FIELDS}
        for i, (lo, hi) in enumerate(self.bounds):
            self._ckpt[i] = {name: arrays[name][lo:hi].copy()
                             for name, _ in DYNAMIC_FIELDS}
        self._history.clear()
        live = self._live_workers()
        messages = {}
        for worker in live:
            messages[worker] = ("load", [
                (i, self._ckpt[i]) for i in self._assignment[worker]])
            self._send(worker, messages[worker])
        for worker in live:
            reply = self._collect(worker, messages[worker], [])
            if reply is not None and reply[0] != "ok":
                raise PersistenceError(
                    f"fleet worker protocol error: {reply[0]!r}")

    def close(self) -> None:
        """Stop workers, escalating join → terminate → kill on hangs."""
        for entry in self._workers:
            if entry is None:
                continue
            process, conn = entry
            if process.is_alive():
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for worker, entry in enumerate(self._workers):
            if entry is None:
                continue
            process, conn = entry
            process.join(timeout=self.CLOSE_JOIN_TIMEOUT_S)
            if process.is_alive():
                logger.warning(
                    "fleet worker %d ignored stop for %.0fs; "
                    "terminating", worker, self.CLOSE_JOIN_TIMEOUT_S)
                process.terminate()
                process.join(timeout=self.CLOSE_JOIN_TIMEOUT_S / 2)
            if process.is_alive():
                logger.warning(
                    "fleet worker %d survived terminate; killing",
                    worker)
                process.kill()
                process.join()
            conn.close()


# -- the campaign loop --------------------------------------------------------


class FleetCampaign:
    """One vectorized fleet campaign: arrivals, stepping, telemetry.

    The parent owns the whole admission layer (arrival draws, argmax
    placement over global free capacity, the departure heap) plus the
    fault consequences that touch it (crashed nodes lose their VMs,
    DOWN/quarantined nodes are routed around); the executor owns only
    physics stepping.  Everything the parent does is therefore
    trivially shard- and jobs-invariant.

    ``kill_worker_at`` is a supervision test hook: real SIGKILLs
    delivered to worker processes at given steps — the report must not
    change (deterministic replay absorbs them), which is exactly what
    ``benchmarks/bench_fleet_chaos.py`` enforces.
    """

    def __init__(self, config: FleetCampaignConfig, jobs: int = 1,
                 snapshot_dir=None,
                 snapshot_every_steps: Optional[int] = None,
                 mp_context=None,
                 worker_timeout_s: float = 30.0,
                 max_worker_restarts: int = 2,
                 checkpoint_every_steps: Optional[int] = 25,
                 kill_worker_at: Sequence[Tuple[int, int]] = ()) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        kill_worker_at = tuple(
            (int(step), int(worker)) for step, worker in kill_worker_at)
        if kill_worker_at and jobs == 1:
            raise ConfigurationError(
                "worker kill injection needs jobs >= 2 (the in-process "
                "executor has no workers)")
        self.config = config
        self.jobs = jobs
        if jobs == 1:
            self.executor = _InProcessExecutor(config)
        else:
            self.executor = _ProcessExecutor(
                config, jobs, mp_context=mp_context,
                worker_timeout_s=worker_timeout_s,
                max_worker_restarts=max_worker_restarts,
                checkpoint_every_steps=checkpoint_every_steps,
                kill_worker_at=kill_worker_at)
        self.chaos = self.executor.chaos
        self.store = (SnapshotStore(snapshot_dir)
                      if snapshot_dir is not None else None)
        self.snapshot_every_steps = snapshot_every_steps
        n = config.fleet.n_nodes
        self._arrival_key = arrival_counter_key(config.fleet.seed)
        self._used = np.zeros(n, dtype=np.int64)
        #: Min-heap of (departure_time_s, seq, node_index, vcpus).
        self._departures: List[Tuple[float, int, int, int]] = []
        self._arrival_seq = 0
        self._known_quarantined = np.zeros(n, dtype=bool)
        #: Fault-domain occupancy bookkeeping (rebuilt from the
        #: departure heap on resume, so it never rides in snapshots).
        self.topology = FaultDomainTopology.from_config(config.fleet)
        self._vms_on = np.zeros(n, dtype=np.int64)
        self._tenant_rack = np.zeros(
            (config.tenants, self.topology.n_racks), dtype=np.int64)
        self.step_index = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.vm_failures = 0
        self.sla_unreachable_steps = 0
        self.migrations = 0
        self.migrations_deferred = 0
        self.series: List[Dict[str, object]] = []

    # -- admission (parent-side, partition-invariant) ---------------------

    def _tenant_of(self, seq: int) -> int:
        """The VM's synthetic tenant — a pure function of its seq."""
        return seq % self.config.tenants

    def _occupy(self, seq: int, node: int, vcpus: int,
                sign: int) -> None:
        """Add (+1) or remove (-1) one VM's occupancy bookkeeping."""
        self._used[node] += sign * vcpus
        self._vms_on[node] += sign
        self._tenant_rack[self._tenant_of(seq),
                          self.topology.rack_of[node]] += sign

    def _rebuild_occupancy(self) -> None:
        """Re-derive per-node/per-rack occupancy from the heap."""
        self._vms_on[:] = 0
        self._tenant_rack[:] = 0
        for _when, seq, node, vcpus in self._departures:
            self._vms_on[node] += 1
            self._tenant_rack[self._tenant_of(seq),
                              self.topology.rack_of[node]] += 1

    def _terminate_departed(self, now_s: float) -> None:
        while self._departures and self._departures[0][0] <= now_s:
            _, seq, node, vcpus = heapq.heappop(self._departures)
            self._occupy(seq, node, vcpus, -1)
            self.completed += 1

    def _quarantine_mask(self) -> np.ndarray:
        """Quarantined nodes: live executor state plus resumed flags."""
        return self.executor.quarantined_mask() | self._known_quarantined

    def _fail_unavailable_vms(self, t: int) -> None:
        """Kill VMs on nodes that just crashed or got quarantined."""
        newly = self.executor.quarantined_mask() \
            & ~self._known_quarantined
        self._known_quarantined |= newly
        dead = newly
        if self.chaos is not None:
            dead = dead | self.chaos.crash_mask(t)
        if not dead.any():
            return
        survivors = []
        for entry in self._departures:
            if dead[entry[2]]:
                self._occupy(entry[1], entry[2], entry[3], -1)
                self.vm_failures += 1
            else:
                survivors.append(entry)
        if len(survivors) != len(self._departures):
            heapq.heapify(survivors)
            self._departures = survivors
        self._used[dead] = 0

    def _admit_arrivals(self, t: int) -> None:
        cfg = self.config
        step_s = cfg.fleet.step_s
        expected = cfg.arrivals_per_hour * step_s / 3600.0
        count = int(math.floor(expected))
        fraction = expected - count
        if fraction > 0 and float(counter_uniform(
                self._arrival_key, np.uint64(t),
                CH_ARRIVAL_COUNT)) < fraction:
            count += 1
        capacity = cfg.fleet.vcpus_per_node
        now_s = t * step_s
        unavailable = self._quarantine_mask()
        if self.chaos is not None:
            unavailable = unavailable | self.chaos.down_mask(t)
            partitioned = self.chaos.partition_mask(t)
            at_risk = self.chaos.at_risk_mask(t)
        else:
            partitioned = at_risk = None
        route_around = unavailable.any()
        defended = cfg.domain_defense and self.chaos is not None
        for _ in range(count):
            seq = self._arrival_seq
            self._arrival_seq += 1
            size_draw = float(counter_uniform(
                self._arrival_key, np.uint64(seq), CH_ARRIVAL_SIZE))
            vcpus = min(cfg.max_vcpus, 1 + int(size_draw * cfg.max_vcpus))
            life_draw = float(counter_uniform(
                self._arrival_key, np.uint64(seq), CH_ARRIVAL_LIFETIME))
            lifetime_s = -cfg.mean_lifetime_s * math.log1p(-life_draw)
            if defended:
                node = self._place_defended(
                    seq, vcpus, unavailable, partitioned, at_risk)
                if node is None:
                    self.rejected += 1
                    continue
            else:
                free = capacity - self._used
                if route_around:
                    free = np.where(unavailable, -1, free)
                node = int(np.argmax(free))
                if free[node] < vcpus:
                    self.rejected += 1
                    continue
                if partitioned is not None and partitioned[node]:
                    # A partitioned rack is an admission blackout: the
                    # topology-blind baseline picks it on raw capacity,
                    # the launch times out, the request bounces.
                    self.rejected += 1
                    continue
            self._occupy(seq, node, vcpus, +1)
            heapq.heappush(self._departures,
                           (now_s + lifetime_s, seq, node, vcpus))
            self.admitted += 1

    def _anti_affinity_score(self, seq: int, free: np.ndarray,
                             eligible: np.ndarray) -> np.ndarray:
        """Placement score: spread the tenant across racks, then fill.

        Fewest of this tenant's VMs on the node's rack dominates; free
        capacity breaks ties; ``argmax`` takes the lowest index on
        exact ties — all integer math, so the choice is deterministic
        in any partition.
        """
        capacity = self.config.fleet.vcpus_per_node
        penalty = self._tenant_rack[self._tenant_of(seq)][
            self.topology.rack_of]
        score = free - penalty * np.int64(capacity + 1)
        return np.where(eligible, score, np.int64(-(2 ** 62)))

    def _place_defended(self, seq: int, vcpus: int,
                        unavailable: np.ndarray,
                        partitioned: np.ndarray,
                        at_risk: np.ndarray) -> Optional[int]:
        """Domain-aware placement: route around blast radii, spread
        tenants across racks; None when nothing can host the VM."""
        capacity = self.config.fleet.vcpus_per_node
        free = capacity - self._used
        blocked = unavailable | partitioned
        eligible = (free >= vcpus) & ~blocked & ~at_risk
        if not eligible.any():
            # Every safe node is full: placing inside a blast radius
            # beats bouncing the request.
            eligible = (free >= vcpus) & ~blocked
            if not eligible.any():
                return None
        score = self._anti_affinity_score(seq, free, eligible)
        return int(np.argmax(score))

    def _evacuate_at_risk(self, t: int) -> None:
        """Defense: drain VMs off at-risk domains, with backpressure.

        VMs migrate in seq order (deterministic in any partition) to
        the anti-affinity winner among safe targets, capped at
        ``max_migrations_per_rack_step`` inbound per target rack per
        step so a browning-out rack cannot stampede the survivors —
        the rest defer to the next step (``migrations_deferred``).
        """
        chaos = self.chaos
        at_risk = chaos.at_risk_mask(t)
        if not at_risk.any():
            return
        unavailable = self._quarantine_mask() | chaos.down_mask(t)
        partitioned = chaos.partition_mask(t)
        blocked = unavailable | partitioned | at_risk
        movable = at_risk & ~unavailable & ~partitioned
        capacity = self.config.fleet.vcpus_per_node
        cap = self.config.max_migrations_per_rack_step
        inflow = np.zeros(self.topology.n_racks, dtype=np.int64)
        moved = False
        entries = sorted(self._departures, key=lambda e: e[1])
        relocated = []
        for when, seq, node, vcpus in entries:
            if not movable[node]:
                relocated.append((when, seq, node, vcpus))
                continue
            free = capacity - self._used
            rack_open = inflow[self.topology.rack_of] < cap
            eligible = (free >= vcpus) & ~blocked & rack_open
            if not eligible.any():
                self.migrations_deferred += 1
                relocated.append((when, seq, node, vcpus))
                continue
            score = self._anti_affinity_score(seq, free, eligible)
            target = int(np.argmax(score))
            self._occupy(seq, node, vcpus, -1)
            self._occupy(seq, target, vcpus, +1)
            inflow[self.topology.rack_of[target]] += 1
            self.migrations += 1
            moved = True
            relocated.append((when, seq, target, vcpus))
        if moved:
            heapq.heapify(relocated)
            self._departures = relocated

    def _account_sla(self, t: int) -> None:
        """Count unreachable VM-steps (outage or partition blackout)."""
        if self.chaos is None:
            return
        affected = (self.chaos.down_mask(t)
                    | self.chaos.partition_mask(t)
                    | self._quarantine_mask())
        if affected.any():
            self.sla_unreachable_steps += int(
                self._vms_on[affected].sum())

    # -- telemetry reduction ----------------------------------------------

    def _record_sample(self, t: int,
                       arrays: Dict[str, np.ndarray]) -> None:
        cfg = self.config.fleet
        n = cfg.n_nodes
        unavailable = self._quarantine_mask()
        if self.chaos is not None:
            unavailable = unavailable | self.chaos.down_mask(t)
            dropped = self.chaos.dropout_mask(t)
            partitioned = self.chaos.partition_mask(t)
        else:
            dropped = np.zeros(n, dtype=bool)
            partitioned = np.zeros(n, dtype=bool)
        observed = ~(dropped | unavailable | partitioned)
        power = arrays["power_w"]
        fleet_power = math.fsum(float(p) for p in power[observed])
        observed_n = int(np.count_nonzero(observed))
        total_used = int(self._used.sum())
        self.series.append({
            "step": t,
            "time_s": (t + 1) * cfg.step_s,
            "fleet_power_w": fleet_power,
            "mean_power_w": (fleet_power / observed_n
                             if observed_n else 0.0),
            "mean_util": total_used / (n * cfg.vcpus_per_node),
            "active_vcpus": total_used,
            "margins_adopted": int(np.count_nonzero(
                arrays["margin_on"])),
            "telemetry_observed": observed_n,
            "telemetry_dropped": int(np.count_nonzero(
                dropped & ~unavailable & ~partitioned)),
            "nodes_down": int(np.count_nonzero(unavailable)),
            "nodes_partitioned": int(np.count_nonzero(
                partitioned & ~unavailable)),
        })

    # -- snapshots ----------------------------------------------------------

    def take_snapshot(self) -> None:
        """Persist config + campaign dynamics + per-shard fleet state."""
        if self.store is None:
            raise PersistenceError(
                "campaign was built without a snapshot directory")
        payload = {
            "config": self.config.as_dict(),
            "campaign": {
                "step_index": self.step_index,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "vm_failures": self.vm_failures,
                "sla_unreachable_steps": self.sla_unreachable_steps,
                "migrations": self.migrations,
                "migrations_deferred": self.migrations_deferred,
                "arrival_seq": self._arrival_seq,
                "used": self._used.tolist(),
                "departures": sorted(
                    [list(entry) for entry in self._departures]),
                "series": list(self.series),
            },
            "fleet": {
                "n_nodes": self.config.fleet.n_nodes,
                "shards": shard_entries(
                    (lo, hi, state) for _i, lo, hi, state
                    in self.executor.gather_shards()),
            },
        }
        self.store.save(self.step_index, payload)

    def _load_snapshot(self, payload: Dict[str, object]) -> None:
        campaign = payload["campaign"]
        self.step_index = int(campaign["step_index"])  # type: ignore[index]
        self.admitted = int(campaign["admitted"])  # type: ignore[index]
        self.rejected = int(campaign["rejected"])  # type: ignore[index]
        self.completed = int(campaign["completed"])  # type: ignore[index]
        self.vm_failures = int(campaign.get("vm_failures", 0))  # type: ignore[union-attr]
        self.sla_unreachable_steps = int(
            campaign.get("sla_unreachable_steps", 0))  # type: ignore[union-attr]
        self.migrations = int(campaign.get("migrations", 0))  # type: ignore[union-attr]
        self.migrations_deferred = int(
            campaign.get("migrations_deferred", 0))  # type: ignore[union-attr]
        self._arrival_seq = int(campaign["arrival_seq"])  # type: ignore[index]
        self._used[:] = np.asarray(campaign["used"], dtype=np.int64)  # type: ignore[index]
        self._departures = [
            (float(when), int(seq), int(node), int(vcpus))
            for when, seq, node, vcpus in campaign["departures"]]  # type: ignore[index]
        heapq.heapify(self._departures)
        self._rebuild_occupancy()
        self.series = [dict(entry) for entry in campaign["series"]]  # type: ignore[index]
        fleet = payload["fleet"]
        n = int(fleet["n_nodes"])  # type: ignore[index, arg-type]
        if n != self.config.fleet.n_nodes:
            raise PersistenceError(
                f"snapshot is for {n} nodes, campaign has "
                f"{self.config.fleet.n_nodes}")
        arrays = {name: np.zeros(n, dtype=dtype)
                  for name, dtype in DYNAMIC_FIELDS}
        covered = np.zeros(n, dtype=bool)
        for lo, hi, state in verify_shard_entries(fleet["shards"]):  # type: ignore[index]
            if covered[lo:hi].any():
                raise PersistenceError(
                    f"snapshot shards overlap at [{lo}, {hi})")
            covered[lo:hi] = True
            for name, dtype in DYNAMIC_FIELDS:
                arrays[name][lo:hi] = np.asarray(state[name],
                                                 dtype=dtype)
        if not covered.all():
            raise PersistenceError(
                "snapshot shards do not cover the fleet")
        merged: Dict[str, object] = {"n_nodes": n}
        for name, _ in DYNAMIC_FIELDS:
            merged[name] = arrays[name].tolist()
        self.executor.load(merged)
        self._known_quarantined = arrays["quarantined"].astype(bool)

    def resume(self) -> bool:
        """Load the newest valid snapshot; False when starting fresh."""
        if self.store is None:
            raise PersistenceError(
                "campaign was built without a snapshot directory")
        loaded = self.store.load_newest()
        if loaded is None:
            return False
        _generation, payload = loaded
        saved = FleetCampaignConfig.from_dict(payload["config"])  # type: ignore[arg-type]
        ours = replace(self.config, shards=saved.shards,
                       stepper=saved.stepper)
        if saved != ours:
            raise PersistenceError(
                "snapshot belongs to a different campaign config")
        self._load_snapshot(payload)
        return True

    # -- the loop -----------------------------------------------------------

    def run(self, until_step: Optional[int] = None) -> None:
        """Advance to ``until_step`` (exclusive; default: completion)."""
        cfg = self.config
        n_steps = cfg.n_steps
        stop = n_steps if until_step is None \
            else min(until_step, n_steps)
        telemetry_every = cfg.telemetry_every_steps
        while self.step_index < stop:
            t = self.step_index
            self._terminate_departed(t * cfg.fleet.step_s)
            self._fail_unavailable_vms(t)
            if cfg.domain_defense and self.chaos is not None:
                self._evacuate_at_risk(t)
            self._admit_arrivals(t)
            self._account_sla(t)
            want_sample = ((t + 1) % telemetry_every == 0
                           or t == n_steps - 1)
            if want_sample and isinstance(self.executor,
                                          _ProcessExecutor):
                arrays = self.executor.step_and_sample(t, self._used)
            else:
                self.executor.step(t, self._used)
                arrays = (self.executor.sample()
                          if want_sample else None)
            if want_sample and arrays is not None:
                self._record_sample(t, arrays)
            self.step_index = t + 1
            if (self.store is not None
                    and self.snapshot_every_steps is not None
                    and self.step_index % self.snapshot_every_steps
                    == 0):
                self.take_snapshot()

    def _quarantine_block(self) -> Optional[Dict[str, object]]:
        """Report block naming quarantined nodes; None when clean.

        Only emitted when quarantine actually happened, so a campaign
        whose injected worker kills were absorbed by replay stays
        byte-identical to a clean run.
        """
        mask = self._quarantine_mask()
        if not mask.any():
            return None
        flat = np.flatnonzero(mask)
        ranges: List[List[int]] = []
        for node in flat:
            node = int(node)
            if ranges and ranges[-1][1] == node:
                ranges[-1][1] = node + 1
            else:
                ranges.append([node, node + 1])
        return {
            "nodes": int(mask.sum()),
            "node_ranges": ranges,
            "worker_restarts": self.executor.worker_restarts_total,
        }

    def report(self) -> Dict[str, object]:
        """The canonical campaign report (shards/jobs/stepper
        invariant, and invariant to replayed worker deaths)."""
        final = self.executor.gather()
        last_step = self.step_index - 1
        down_final = (
            (np.asarray(final["down_until_step"], dtype=np.int64)
             > last_step)
            | np.asarray(final["quarantined"], dtype=bool))
        totals = {
            "steps": self.step_index,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "vm_failures": self.vm_failures,
            "active_vcpus_final": int(self._used.sum()),
            "energy_j": math.fsum(float(e) for e in final["energy_j"]),  # type: ignore[union-attr]
            "violations": int(sum(final["violations_total"])),  # type: ignore[arg-type]
            "retention_errors": int(sum(
                final["retention_errors_total"])),  # type: ignore[arg-type]
            "demotions": int(sum(final["demotions"])),  # type: ignore[arg-type]
            "adoptions": int(sum(final["adoptions"])),  # type: ignore[arg-type]
            "crashes": int(sum(final["crashes_total"])),  # type: ignore[arg-type]
            "margins_adopted_final": int(sum(final["margin_on"])),  # type: ignore[arg-type]
            "nodes_down_final": int(np.count_nonzero(down_final)),
            "domain_demotions": int(sum(final["domain_demotions"])),  # type: ignore[arg-type]
            "migrations": self.migrations,
            "migrations_deferred": self.migrations_deferred,
            # An SLA violation is a promise broken: a failed VM, an
            # unreachable VM-step, or a bounced admission.
            "sla_violations": (self.vm_failures
                               + self.sla_unreachable_steps
                               + self.rejected),
            "availability": (
                self.completed / (self.completed + self.vm_failures)
                if self.completed + self.vm_failures else 1.0),
        }
        if self.config.fleet.tiered:
            # Per-tier block only for tiered fleets — untiered reports
            # keep their exact legacy shape (and bytes).
            totals["tiers"] = {
                "refresh_energy_j": {
                    "strong": math.fsum(
                        float(e) for e in final["refresh_energy_strong_j"]),  # type: ignore[union-attr]
                    "normal": math.fsum(
                        float(e) for e in final["refresh_energy_normal_j"]),  # type: ignore[union-attr]
                    "relaxed": math.fsum(
                        float(e) for e in final["refresh_energy_relaxed_j"]),  # type: ignore[union-attr]
                },
                "retention_errors": {
                    "normal": int(sum(final["retention_errors_normal"])),  # type: ignore[arg-type]
                    "relaxed": int(sum(final["retention_errors_relaxed"])),  # type: ignore[arg-type]
                },
            }
        return fleet_campaign_report(
            self.config.as_report_dict(), self.config.fleet,
            totals, self.series, quarantine=self._quarantine_block(),
            fault_domains=self._fault_domains_block())

    def _fault_domains_block(self) -> Optional[Dict[str, object]]:
        """Report block describing the correlated plan; None without
        one, so uncorrelated campaigns keep their report shape."""
        correlated = self.config.correlated_plan()
        if correlated is None or not len(correlated):
            return None
        by_kind: Dict[str, int] = {}
        for spec in correlated:
            by_kind[spec.kind.value] = by_kind.get(spec.kind.value, 0) + 1
        return {
            "specs": len(correlated),
            "by_kind": by_kind,
            "topology": self.topology.as_dict(),
            "defense": self.config.domain_defense,
        }

    def close(self) -> None:
        """Tear down the executor (a no-op for the in-process one)."""
        self.executor.close()


def run_fleet_campaign(config: FleetCampaignConfig, jobs: int = 1,
                       snapshot_dir=None,
                       snapshot_every_steps: Optional[int] = None,
                       resume: bool = False,
                       mp_context=None,
                       worker_timeout_s: float = 30.0,
                       max_worker_restarts: int = 2,
                       checkpoint_every_steps: Optional[int] = 25,
                       kill_worker_at: Sequence[Tuple[int, int]] = (),
                       ) -> Dict[str, object]:
    """Run one fleet campaign to completion and return its report."""
    campaign = FleetCampaign(
        config, jobs=jobs, snapshot_dir=snapshot_dir,
        snapshot_every_steps=snapshot_every_steps,
        mp_context=mp_context, worker_timeout_s=worker_timeout_s,
        max_worker_restarts=max_worker_restarts,
        checkpoint_every_steps=checkpoint_every_steps,
        kill_worker_at=kill_worker_at)
    try:
        if resume:
            campaign.resume()
        campaign.run()
        return campaign.report()
    finally:
        campaign.close()
