"""Fleet-scale stepping: vectorized shards under zoned control.

Four pieces (see ``docs/fleet.md``):

* :mod:`repro.fleet.state` — struct-of-arrays fleet state and configs;
* :mod:`repro.fleet.vectors` — counter-based RNG and numpy batch
  models, byte-identical to per-node stepping on any shard split;
* :mod:`repro.fleet.zone` — ``CloudController`` split into
  ``ZoneController`` shards under a thin ``FleetScheduler`` router;
* :mod:`repro.fleet.campaign` — one campaign over parallel shard
  workers with a deterministic per-step barrier and snapshot/resume.
"""

from .campaign import (
    FleetCampaign,
    FleetCampaignConfig,
    run_fleet_campaign,
)
from .report import (
    energy_proportionality,
    fleet_campaign_report,
    rack_report,
)
from .state import DYNAMIC_FIELDS, FleetConfig, FleetState, shard_bounds
from .vectors import (
    ARRIVAL_STREAM,
    VECTOR_STREAM,
    FleetVectors,
    arrival_counter_key,
    build_fleet_state,
    counter_bits,
    counter_gaussian,
    counter_uniform,
    fleet_counter_keys,
    runtime_counter_key,
    splitmix64,
    stream_counter_key,
)
from .zone import (
    FleetScheduler,
    ZoneController,
    build_zoned_rack,
    run_zoned_rack_experiment,
)

__all__ = [
    "ARRIVAL_STREAM",
    "DYNAMIC_FIELDS",
    "VECTOR_STREAM",
    "FleetCampaign",
    "FleetCampaignConfig",
    "FleetConfig",
    "FleetScheduler",
    "FleetState",
    "FleetVectors",
    "ZoneController",
    "arrival_counter_key",
    "build_fleet_state",
    "build_zoned_rack",
    "counter_bits",
    "counter_gaussian",
    "counter_uniform",
    "energy_proportionality",
    "fleet_campaign_report",
    "fleet_counter_keys",
    "rack_report",
    "run_fleet_campaign",
    "run_zoned_rack_experiment",
    "runtime_counter_key",
    "shard_bounds",
    "splitmix64",
    "stream_counter_key",
]
