"""Fleet-scale stepping: vectorized shards under zoned control.

Six pieces (see ``docs/fleet.md``):

* :mod:`repro.fleet.state` — struct-of-arrays fleet state and configs;
* :mod:`repro.fleet.domains` — the physical fault-domain topology
  (node -> rack -> PDU / cooling zone) correlated chaos travels along;
* :mod:`repro.fleet.vectors` — counter-based RNG and numpy batch
  models, byte-identical to per-node stepping on any shard split;
* :mod:`repro.fleet.chaos` — seeded fault plans compiled to
  slice-invariant per-step mask kernels;
* :mod:`repro.fleet.zone` — ``CloudController`` split into
  ``ZoneController`` shards under a thin ``FleetScheduler`` router;
* :mod:`repro.fleet.campaign` — one campaign over supervised parallel
  shard workers with a deterministic per-step barrier, replay-on-crash
  recovery, quarantine escalation, and snapshot/resume.
"""

from .campaign import (
    FleetCampaign,
    FleetCampaignConfig,
    run_fleet_campaign,
)
from .chaos import (
    CH_BROWNOUT_CRASH,
    CH_FLEET_DROPOUT,
    CH_PDU_BROWNOUT,
    CORRELATED_FAULT_KINDS,
    FLEET_FAULT_KINDS,
    FleetChaos,
    fleet_correlated_plan,
    fleet_fault_plan,
    fleet_node_index,
    fleet_node_name,
)
from .domains import (
    FaultDomainTopology,
    cooling_zone_name,
    pdu_name,
    rack_name,
)
from .report import (
    energy_proportionality,
    fleet_campaign_report,
    rack_report,
)
from .state import DYNAMIC_FIELDS, FleetConfig, FleetState, shard_bounds
from .vectors import (
    ARRIVAL_STREAM,
    VECTOR_STREAM,
    FleetVectors,
    arrival_counter_key,
    build_fleet_state,
    counter_bits,
    counter_gaussian,
    counter_uniform,
    fleet_counter_keys,
    runtime_counter_key,
    splitmix64,
    stream_counter_key,
)
from .zone import (
    FleetScheduler,
    ZoneController,
    build_zoned_rack,
    run_zoned_rack_experiment,
)

__all__ = [
    "ARRIVAL_STREAM",
    "CH_BROWNOUT_CRASH",
    "CH_FLEET_DROPOUT",
    "CH_PDU_BROWNOUT",
    "CORRELATED_FAULT_KINDS",
    "DYNAMIC_FIELDS",
    "FLEET_FAULT_KINDS",
    "VECTOR_STREAM",
    "FaultDomainTopology",
    "FleetCampaign",
    "FleetCampaignConfig",
    "FleetChaos",
    "FleetConfig",
    "FleetScheduler",
    "FleetState",
    "FleetVectors",
    "ZoneController",
    "arrival_counter_key",
    "build_fleet_state",
    "build_zoned_rack",
    "cooling_zone_name",
    "counter_bits",
    "counter_gaussian",
    "counter_uniform",
    "energy_proportionality",
    "fleet_campaign_report",
    "fleet_correlated_plan",
    "fleet_counter_keys",
    "fleet_fault_plan",
    "fleet_node_index",
    "fleet_node_name",
    "pdu_name",
    "rack_name",
    "rack_report",
    "run_fleet_campaign",
    "run_zoned_rack_experiment",
    "runtime_counter_key",
    "shard_bounds",
    "splitmix64",
    "stream_counter_key",
]
