"""DRAM retention model, refresh domains and DIMMs.

Substitute for the paper's Section 6.B framework: real 8 GB DDR3 DIMMs on
a commodity server, with main memory split into *domains* (per channel)
whose refresh rate is set independently so critical kernel code/stack can
stay on a reliable (nominal 64 ms) domain while the rest is relaxed.

The physics: each DRAM cell holds charge for a *retention time*; if the
refresh interval exceeds it, the cell leaks and the stored bit flips.
Retention times across a device follow a heavy lower tail, modelled here
as a lognormal calibrated to the paper's observations:

* relaxing 64 ms → 1.5 s introduces no observable errors,
* at 5 s (78× nominal) the cumulative BER is ≈ 1e-9 — within commercial
  DRAM targets, and three orders below the 1e-6 SECDED capability.

Retention roughly halves per 10 °C (Liu et al. [32]), exposed through
:func:`repro.hardware.thermal.retention_temperature_factor`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S
from ..core.exceptions import ConfigurationError
from .faults import FaultClass, FaultOrigin, FaultRecord
from .power import DramPowerModel
from .thermal import retention_temperature_factor

#: Bits per gigabyte.
BITS_PER_GB = 8 * 1024 ** 3


@dataclass(frozen=True)
class RetentionModel:
    """Lognormal retention-time population of a DRAM device.

    ``ln T ~ Normal(mu_ln_s, sigma_ln_s)`` at the reference temperature.
    Default parameters are calibrated so BER(1.5 s) ≈ 1e-12 (unobservable
    in a DIMM-scale test) and BER(5 s) ≈ 1e-9, matching Section 6.B.
    """

    mu_ln_s: float = 8.607
    sigma_ln_s: float = 1.1666
    reference_temp_c: float = 45.0

    def __post_init__(self) -> None:
        if self.sigma_ln_s <= 0:
            raise ConfigurationError("sigma must be positive")

    def ber(self, refresh_interval_s: float,
            temperature_c: Optional[float] = None) -> float:
        """Probability a random cell's retention is below the interval.

        This is the *cumulative* bit error rate the paper reports: the
        fraction of cells that cannot hold their value for a full refresh
        period at the given temperature.
        """
        if refresh_interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        temp = self.reference_temp_c if temperature_c is None else temperature_c
        factor = retention_temperature_factor(temp, self.reference_temp_c)
        # Hotter => shorter retention => the effective interval grows.
        effective_interval = refresh_interval_s / factor
        z = (math.log(effective_interval) - self.mu_ln_s) / self.sigma_ln_s
        return float(norm.cdf(z))

    def max_interval_for_ber(self, ber_target: float,
                             temperature_c: Optional[float] = None) -> float:
        """Largest refresh interval keeping the BER at/below a target."""
        if not 0.0 < ber_target < 1.0:
            raise ConfigurationError("ber_target must be in (0, 1)")
        temp = self.reference_temp_c if temperature_c is None else temperature_c
        factor = retention_temperature_factor(temp, self.reference_temp_c)
        z = norm.ppf(ber_target)
        return float(math.exp(self.mu_ln_s + z * self.sigma_ln_s) * factor)


@dataclass(frozen=True)
class Dimm:
    """One DIMM: capacity, device density and its power model."""

    dimm_id: int
    capacity_gb: float = 8.0
    device_density_gbit: float = 2.0
    n_devices: int = 16
    retention: RetentionModel = field(default_factory=RetentionModel)

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0 or self.n_devices < 1:
            raise ConfigurationError("invalid DIMM geometry")

    @property
    def capacity_bits(self) -> int:
        """Capacity in bits."""
        return int(self.capacity_gb * BITS_PER_GB)

    def power_model(self) -> DramPowerModel:
        """Power model for one constituent device."""
        return DramPowerModel(density_gbit=self.device_density_gbit)

    def total_power_w(self, refresh_interval_s: float) -> float:
        """Whole-DIMM power at a refresh interval."""
        return self.power_model().total_power_w(refresh_interval_s) * self.n_devices


class MemoryDomain:
    """A refresh domain: a set of DIMMs sharing one refresh interval.

    The paper separates main memory into per-channel domains so the kernel
    can be pinned to a *reliable* domain at nominal refresh while other
    domains relax.  ``reliable=True`` marks the domain the hypervisor uses
    for critical state; its refresh interval is locked at nominal.
    """

    def __init__(self, name: str, dimms: Sequence[Dimm],
                 reliable: bool = False, ecc_enabled: bool = False,
                 seed: int = 0) -> None:
        if not dimms:
            raise ConfigurationError("a domain needs at least one DIMM")
        self.name = name
        self.dimms = list(dimms)
        self.reliable = reliable
        self.ecc_enabled = ecc_enabled
        self._refresh_interval_s = NOMINAL_REFRESH_INTERVAL_S
        self._rng = np.random.default_rng(seed)

    @property
    def capacity_gb(self) -> float:
        """Capacity in gigabytes."""
        return sum(d.capacity_gb for d in self.dimms)

    @property
    def capacity_bits(self) -> int:
        """Capacity in bits."""
        return sum(d.capacity_bits for d in self.dimms)

    @property
    def refresh_interval_s(self) -> float:
        """Current refresh interval (seconds)."""
        return self._refresh_interval_s

    def set_refresh_interval(self, interval_s: float) -> None:
        """Change the domain's refresh interval.

        Reliable domains refuse relaxation: they exist to hold critical
        state at nominal conditions.
        """
        if interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        if self.reliable and interval_s > NOMINAL_REFRESH_INTERVAL_S:
            raise ConfigurationError(
                f"domain {self.name!r} is reliable; refresh cannot be "
                "relaxed beyond nominal"
            )
        self._refresh_interval_s = interval_s

    def ber(self, temperature_c: Optional[float] = None) -> float:
        """Cumulative BER of the domain at its current refresh interval."""
        # All DIMMs in a domain share the interval; use the worst model.
        return max(d.retention.ber(self._refresh_interval_s, temperature_c)
                   for d in self.dimms)

    def expected_errors_per_pass(self, coverage: float = 1.0,
                                 temperature_c: Optional[float] = None,
                                 ) -> float:
        """Expected bit errors in one full-pattern pass over the domain.

        ``coverage`` is the fraction of cells the pattern leaves in their
        leak-vulnerable state (≈0.5 for random data).
        """
        if not 0.0 <= coverage <= 1.0:
            raise ConfigurationError("coverage must be in [0, 1]")
        return self.ber(temperature_c) * self.capacity_bits * coverage

    def sample_pattern_errors(self, coverage: float = 1.0, passes: int = 1,
                              temperature_c: Optional[float] = None) -> int:
        """Sample the number of errors a pattern test observes."""
        if passes < 1:
            raise ConfigurationError("passes must be >= 1")
        lam = self.expected_errors_per_pass(coverage, temperature_c) * passes
        return int(self._rng.poisson(lam))

    def state_dict(self) -> dict:
        """Serializable mutable state: refresh interval and pattern RNG."""
        return {
            "refresh_interval_s": self._refresh_interval_s,
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the state saved by :meth:`state_dict`.

        The interval is written directly (bypassing the reliable-domain
        interlock) because a snapshot may legitimately capture an ablation
        run that relaxed the reliable domain.
        """
        self._refresh_interval_s = float(state["refresh_interval_s"])
        self._rng.bit_generator.state = state["rng"]

    def refresh_power_w(self) -> float:
        """Domain refresh power at the current interval."""
        return sum(
            d.power_model().refresh_power_w(self._refresh_interval_s)
            * d.n_devices
            for d in self.dimms
        )

    def total_power_w(self) -> float:
        """Domain total DRAM power at the current interval."""
        return sum(d.total_power_w(self._refresh_interval_s) for d in self.dimms)


class DramSystem:
    """The server's main memory: several independently refreshed domains."""

    def __init__(self, domains: Sequence[MemoryDomain]) -> None:
        if not domains:
            raise ConfigurationError("a DRAM system needs at least one domain")
        names = [d.name for d in domains]
        if len(set(names)) != len(names):
            raise ConfigurationError("domain names must be unique")
        self._domains: Dict[str, MemoryDomain] = {d.name: d for d in domains}

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def domains(self) -> List[MemoryDomain]:
        """All memory domains."""
        return list(self._domains.values())

    def domain(self, name: str) -> MemoryDomain:
        """One memory domain by name."""
        if name not in self._domains:
            raise KeyError(f"no memory domain named {name!r}")
        return self._domains[name]

    def reliable_domain(self) -> Optional[MemoryDomain]:
        """The domain designated for critical state, if any."""
        for d in self._domains.values():
            if d.reliable:
                return d
        return None

    def relaxed_domains(self) -> List[MemoryDomain]:
        """Domains whose refresh exceeds nominal."""
        return [d for d in self._domains.values()
                if d.refresh_interval_s > NOMINAL_REFRESH_INTERVAL_S]

    @property
    def capacity_gb(self) -> float:
        """Capacity in gigabytes."""
        return sum(d.capacity_gb for d in self._domains.values())

    def total_power_w(self) -> float:
        """Total power in watts."""
        return sum(d.total_power_w() for d in self._domains.values())

    def refresh_power_w(self) -> float:
        """Refresh power in watts."""
        return sum(d.refresh_power_w() for d in self._domains.values())

    def state_dict(self) -> dict:
        """Serializable state of every domain, keyed by name."""
        return {"domains": {name: d.state_dict()
                            for name, d in self._domains.items()}}

    def load_state_dict(self, state: dict) -> None:
        """Restore every saved domain onto this (same-layout) system."""
        for name, domain_state in state["domains"].items():
            self.domain(str(name)).load_state_dict(domain_state)

    def relax_all(self, interval_s: float,
                  keep_reliable_nominal: bool = True) -> List[str]:
        """Relax every (non-reliable) domain to ``interval_s``.

        Returns the names of the domains changed.  With
        ``keep_reliable_nominal=False`` even the reliable domain is relaxed
        — the configuration the resilience ablation (A3) uses to show why
        the reliable domain matters.
        """
        changed = []
        for d in self._domains.values():
            if d.reliable and keep_reliable_nominal:
                continue
            if d.reliable and not keep_reliable_nominal:
                # Bypass the safety interlock explicitly for the ablation.
                d._refresh_interval_s = interval_s
            else:
                d.set_refresh_interval(interval_s)
            changed.append(d.name)
        return sorted(changed)


def standard_server_memory(n_channels: int = 4, dimm_gb: float = 8.0,
                           device_density_gbit: float = 2.0,
                           reliable_channel: int = 0,
                           retention: Optional[RetentionModel] = None,
                           seed: int = 0) -> DramSystem:
    """The paper's experimental memory layout: per-channel refresh domains.

    One channel is designated the reliable domain holding critical kernel
    code and stack; the others can be relaxed independently.
    """
    if not 0 <= reliable_channel < n_channels:
        raise ConfigurationError("reliable_channel out of range")
    retention = retention or RetentionModel()
    domains = []
    for ch in range(n_channels):
        dimm = Dimm(dimm_id=ch, capacity_gb=dimm_gb,
                    device_density_gbit=device_density_gbit,
                    retention=retention)
        domains.append(MemoryDomain(
            name=f"channel{ch}", dimms=[dimm],
            reliable=(ch == reliable_channel),
            seed=seed + ch,
        ))
    return DramSystem(domains)
