"""DRAM retention model, refresh domains and DIMMs.

Substitute for the paper's Section 6.B framework: real 8 GB DDR3 DIMMs on
a commodity server, with main memory split into *domains* (per channel)
whose refresh rate is set independently so critical kernel code/stack can
stay on a reliable (nominal 64 ms) domain while the rest is relaxed.

The physics: each DRAM cell holds charge for a *retention time*; if the
refresh interval exceeds it, the cell leaks and the stored bit flips.
Retention times across a device follow a heavy lower tail, modelled here
as a lognormal calibrated to the paper's observations:

* relaxing 64 ms → 1.5 s introduces no observable errors,
* at 5 s (78× nominal) the cumulative BER is ≈ 1e-9 — within commercial
  DRAM targets, and three orders below the 1e-6 SECDED capability.

Retention roughly halves per 10 °C (Liu et al. [32]), exposed through
:func:`repro.hardware.thermal.retention_temperature_factor`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S
from ..core.exceptions import ConfigurationError
from .ecc import (
    RETENTION_ADJACENT_FRACTION,
    SECDED,
    EccScheme,
    EccSelector,
    scheme_by_name,
)
from .faults import FaultClass, FaultOrigin, FaultRecord
from .power import DramPowerModel
from .thermal import retention_temperature_factor

#: Bits per gigabyte.
BITS_PER_GB = 8 * 1024 ** 3

#: Heterogeneous-reliability memory tier labels, strongest first.  A
#: *strong* tier runs nominal refresh with the reliability interlock; a
#: *normal* tier relaxes moderately behind mid-strength ECC; a *relaxed*
#: tier chases refresh energy with the weakest acceptable protection.
TIER_STRONG = "strong"
TIER_NORMAL = "normal"
TIER_RELAXED = "relaxed"
MEMORY_TIERS: Tuple[str, ...] = (TIER_STRONG, TIER_NORMAL, TIER_RELAXED)


@dataclass(frozen=True)
class RetentionModel:
    """Lognormal retention-time population of a DRAM device.

    ``ln T ~ Normal(mu_ln_s, sigma_ln_s)`` at the reference temperature.
    Default parameters are calibrated so BER(1.5 s) ≈ 1e-12 (unobservable
    in a DIMM-scale test) and BER(5 s) ≈ 1e-9, matching Section 6.B.
    """

    mu_ln_s: float = 8.607
    sigma_ln_s: float = 1.1666
    reference_temp_c: float = 45.0

    def __post_init__(self) -> None:
        if self.sigma_ln_s <= 0:
            raise ConfigurationError("sigma must be positive")

    def ber(self, refresh_interval_s: float,
            temperature_c: Optional[float] = None) -> float:
        """Probability a random cell's retention is below the interval.

        This is the *cumulative* bit error rate the paper reports: the
        fraction of cells that cannot hold their value for a full refresh
        period at the given temperature.
        """
        if refresh_interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        temp = self.reference_temp_c if temperature_c is None else temperature_c
        factor = retention_temperature_factor(temp, self.reference_temp_c)
        # Hotter => shorter retention => the effective interval grows.
        effective_interval = refresh_interval_s / factor
        z = (math.log(effective_interval) - self.mu_ln_s) / self.sigma_ln_s
        return float(norm.cdf(z))

    def max_interval_for_ber(self, ber_target: float,
                             temperature_c: Optional[float] = None) -> float:
        """Largest refresh interval keeping the BER at/below a target."""
        if not 0.0 < ber_target < 1.0:
            raise ConfigurationError("ber_target must be in (0, 1)")
        temp = self.reference_temp_c if temperature_c is None else temperature_c
        factor = retention_temperature_factor(temp, self.reference_temp_c)
        z = norm.ppf(ber_target)
        return float(math.exp(self.mu_ln_s + z * self.sigma_ln_s) * factor)


@dataclass(frozen=True)
class Dimm:
    """One DIMM: capacity, device density and its power model."""

    dimm_id: int
    capacity_gb: float = 8.0
    device_density_gbit: float = 2.0
    n_devices: int = 16
    retention: RetentionModel = field(default_factory=RetentionModel)

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0 or self.n_devices < 1:
            raise ConfigurationError("invalid DIMM geometry")

    @property
    def capacity_bits(self) -> int:
        """Capacity in bits."""
        return int(self.capacity_gb * BITS_PER_GB)

    def power_model(self) -> DramPowerModel:
        """Power model for one constituent device."""
        return DramPowerModel(density_gbit=self.device_density_gbit)

    def total_power_w(self, refresh_interval_s: float) -> float:
        """Whole-DIMM power at a refresh interval."""
        return self.power_model().total_power_w(refresh_interval_s) * self.n_devices


class MemoryDomain:
    """A refresh domain: a set of DIMMs sharing one refresh interval.

    The paper separates main memory into per-channel domains so the kernel
    can be pinned to a *reliable* domain at nominal refresh while other
    domains relax.  ``reliable=True`` marks the domain the hypervisor uses
    for critical state; its refresh interval is locked at nominal.
    """

    def __init__(self, name: str, dimms: Sequence[Dimm],
                 reliable: bool = False, ecc_enabled: bool = False,
                 seed: int = 0, tier: Optional[str] = None,
                 ecc: Optional[EccScheme] = None) -> None:
        if not dimms:
            raise ConfigurationError("a domain needs at least one DIMM")
        if tier is None:
            # Legacy binary split: the reliable domain is the strong tier,
            # everything else is the relaxed tier.
            tier = TIER_STRONG if reliable else TIER_RELAXED
        if tier not in MEMORY_TIERS:
            raise ConfigurationError(f"unknown memory tier {tier!r}")
        self.name = name
        self.dimms = list(dimms)
        self.reliable = reliable
        self.ecc_enabled = ecc_enabled
        self.tier = tier
        self.ecc = ecc if ecc is not None else SECDED
        self._refresh_interval_s = NOMINAL_REFRESH_INTERVAL_S
        self._rng = np.random.default_rng(seed)

    @property
    def capacity_gb(self) -> float:
        """Capacity in gigabytes."""
        return sum(d.capacity_gb for d in self.dimms)

    @property
    def capacity_bits(self) -> int:
        """Capacity in bits."""
        return sum(d.capacity_bits for d in self.dimms)

    @property
    def refresh_interval_s(self) -> float:
        """Current refresh interval (seconds)."""
        return self._refresh_interval_s

    def set_refresh_interval(self, interval_s: float) -> None:
        """Change the domain's refresh interval.

        Reliable domains refuse relaxation: they exist to hold critical
        state at nominal conditions.
        """
        if interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        if self.reliable and interval_s > NOMINAL_REFRESH_INTERVAL_S:
            raise ConfigurationError(
                f"domain {self.name!r} is reliable; refresh cannot be "
                "relaxed beyond nominal"
            )
        self._refresh_interval_s = interval_s

    def ber(self, temperature_c: Optional[float] = None) -> float:
        """Cumulative BER of the domain at its current refresh interval."""
        # All DIMMs in a domain share the interval; use the worst model.
        return max(d.retention.ber(self._refresh_interval_s, temperature_c)
                   for d in self.dimms)

    def expected_errors_per_pass(self, coverage: float = 1.0,
                                 temperature_c: Optional[float] = None,
                                 ) -> float:
        """Expected bit errors in one full-pattern pass over the domain.

        ``coverage`` is the fraction of cells the pattern leaves in their
        leak-vulnerable state (≈0.5 for random data).
        """
        if not 0.0 <= coverage <= 1.0:
            raise ConfigurationError("coverage must be in [0, 1]")
        return self.ber(temperature_c) * self.capacity_bits * coverage

    def sample_pattern_errors(self, coverage: float = 1.0, passes: int = 1,
                              temperature_c: Optional[float] = None) -> int:
        """Sample the number of errors a pattern test observes."""
        if passes < 1:
            raise ConfigurationError("passes must be >= 1")
        lam = self.expected_errors_per_pass(coverage, temperature_c) * passes
        return int(self._rng.poisson(lam))

    def uncorrectable_word_probability(
            self, temperature_c: Optional[float] = None) -> float:
        """P(a 64-bit access word defeats this domain's ECC scheme)."""
        return self.ecc.uncorrectable_word_probability(self.ber(temperature_c))

    def ecc_power_w(self, accesses_per_s: float) -> float:
        """Decoder power at a given access rate through this domain's ECC."""
        if accesses_per_s < 0:
            raise ConfigurationError("access rate cannot be negative")
        return self.ecc.energy_pj_per_access * 1e-12 * accesses_per_s

    def state_dict(self) -> dict:
        """Serializable mutable state: refresh interval, tier and RNG."""
        return {
            "refresh_interval_s": self._refresh_interval_s,
            "rng": self._rng.bit_generator.state,
            "tier": self.tier,
            "ecc_scheme": self.ecc.name,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the state saved by :meth:`state_dict`.

        The interval is written directly (bypassing the reliable-domain
        interlock) because a snapshot may legitimately capture an ablation
        run that relaxed the reliable domain.  ``tier``/``ecc_scheme`` are
        optional so snapshots from before the tier refactor still load.
        """
        self._refresh_interval_s = float(state["refresh_interval_s"])
        self._rng.bit_generator.state = state["rng"]
        if "tier" in state:
            tier = str(state["tier"])
            if tier not in MEMORY_TIERS:
                raise ConfigurationError(f"unknown memory tier {tier!r}")
            self.tier = tier
        if "ecc_scheme" in state:
            self.ecc = scheme_by_name(str(state["ecc_scheme"]))

    def refresh_power_w(self) -> float:
        """Domain refresh power at the current interval."""
        return sum(
            d.power_model().refresh_power_w(self._refresh_interval_s)
            * d.n_devices
            for d in self.dimms
        )

    def total_power_w(self) -> float:
        """Domain total DRAM power at the current interval."""
        return sum(d.total_power_w(self._refresh_interval_s) for d in self.dimms)


class DramSystem:
    """The server's main memory: several independently refreshed domains."""

    def __init__(self, domains: Sequence[MemoryDomain]) -> None:
        if not domains:
            raise ConfigurationError("a DRAM system needs at least one domain")
        names = [d.name for d in domains]
        if len(set(names)) != len(names):
            raise ConfigurationError("domain names must be unique")
        self._domains: Dict[str, MemoryDomain] = {d.name: d for d in domains}

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def domains(self) -> List[MemoryDomain]:
        """All memory domains."""
        return list(self._domains.values())

    def domain(self, name: str) -> MemoryDomain:
        """One memory domain by name."""
        if name not in self._domains:
            raise KeyError(f"no memory domain named {name!r}")
        return self._domains[name]

    def reliable_domain(self) -> Optional[MemoryDomain]:
        """The domain designated for critical state, if any."""
        for d in self._domains.values():
            if d.reliable:
                return d
        return None

    def relaxed_domains(self) -> List[MemoryDomain]:
        """Domains whose refresh exceeds nominal."""
        return [d for d in self._domains.values()
                if d.refresh_interval_s > NOMINAL_REFRESH_INTERVAL_S]

    def domains_in_tier(self, tier: str) -> List[MemoryDomain]:
        """All domains labelled with a reliability tier."""
        if tier not in MEMORY_TIERS:
            raise ConfigurationError(f"unknown memory tier {tier!r}")
        return [d for d in self._domains.values() if d.tier == tier]

    def tiers(self) -> List[str]:
        """Tiers present in this system, strongest first."""
        present = {d.tier for d in self._domains.values()}
        return [t for t in MEMORY_TIERS if t in present]

    def tier_capacity_gb(self) -> Dict[str, float]:
        """Capacity per tier (GB), for every tier present."""
        return {t: sum(d.capacity_gb for d in self.domains_in_tier(t))
                for t in self.tiers()}

    def tier_refresh_power_w(self) -> Dict[str, float]:
        """Refresh power per tier (W), for every tier present."""
        return {t: sum(d.refresh_power_w() for d in self.domains_in_tier(t))
                for t in self.tiers()}

    @property
    def capacity_gb(self) -> float:
        """Capacity in gigabytes."""
        return sum(d.capacity_gb for d in self._domains.values())

    def total_power_w(self) -> float:
        """Total power in watts."""
        return sum(d.total_power_w() for d in self._domains.values())

    def refresh_power_w(self) -> float:
        """Refresh power in watts."""
        return sum(d.refresh_power_w() for d in self._domains.values())

    def state_dict(self) -> dict:
        """Serializable state of every domain, keyed by name."""
        return {"domains": {name: d.state_dict()
                            for name, d in self._domains.items()}}

    def load_state_dict(self, state: dict) -> None:
        """Restore every saved domain onto this (same-layout) system."""
        for name, domain_state in state["domains"].items():
            self.domain(str(name)).load_state_dict(domain_state)

    def relax_all(self, interval_s: float,
                  keep_reliable_nominal: bool = True) -> List[str]:
        """Relax every (non-reliable) domain to ``interval_s``.

        Returns the names of the domains changed.  With
        ``keep_reliable_nominal=False`` even the reliable domain is relaxed
        — the configuration the resilience ablation (A3) uses to show why
        the reliable domain matters.
        """
        changed = []
        for d in self._domains.values():
            if d.reliable and keep_reliable_nominal:
                continue
            if d.reliable and not keep_reliable_nominal:
                # Bypass the safety interlock explicitly for the ablation.
                d._refresh_interval_s = interval_s
            else:
                d.set_refresh_interval(interval_s)
            changed.append(d.name)
        return sorted(changed)


def standard_server_memory(n_channels: int = 4, dimm_gb: float = 8.0,
                           device_density_gbit: float = 2.0,
                           reliable_channel: Optional[int] = 0,
                           retention: Optional[RetentionModel] = None,
                           seed: int = 0) -> DramSystem:
    """The paper's experimental memory layout: per-channel refresh domains.

    One channel is designated the reliable domain holding critical kernel
    code and stack; the others can be relaxed independently.  Pass
    ``reliable_channel=None`` to build the degenerate all-relaxed topology
    (no reliable domain at all) — callers of
    :meth:`DramSystem.reliable_domain` must tolerate ``None``.
    """
    if reliable_channel is not None and not 0 <= reliable_channel < n_channels:
        raise ConfigurationError("reliable_channel out of range")
    retention = retention or RetentionModel()
    domains = []
    for ch in range(n_channels):
        dimm = Dimm(dimm_id=ch, capacity_gb=dimm_gb,
                    device_density_gbit=device_density_gbit,
                    retention=retention)
        domains.append(MemoryDomain(
            name=f"channel{ch}", dimms=[dimm],
            reliable=(ch == reliable_channel),
            seed=seed + ch,
        ))
    return DramSystem(domains)


#: Default per-tier refresh intervals (seconds): strong stays nominal,
#: normal relaxes to 1.5 s (the paper's "no observable errors" point),
#: relaxed to 5 s (BER ≈ 1e-9, still under SECDED capability).
DEFAULT_TIER_REFRESH_S: Dict[str, float] = {
    TIER_STRONG: NOMINAL_REFRESH_INTERVAL_S,
    TIER_NORMAL: 1.5,
    TIER_RELAXED: 5.0,
}

#: Default per-tier uncorrectable-word-probability targets the ECC
#: selector must meet at each tier's refresh-induced raw BER.  Strong is
#: strictest; every tier's target tightens faster than its raw BER grows,
#: so relaxing refresh forces stronger (more expensive) ECC.
DEFAULT_TIER_UE_TARGETS: Dict[str, float] = {
    TIER_STRONG: 1e-30,
    TIER_NORMAL: 1e-21,
    TIER_RELAXED: 1e-16,
}


def tiered_server_memory(n_channels: int = 4, dimm_gb: float = 8.0,
                         device_density_gbit: float = 2.0,
                         retention: Optional[RetentionModel] = None,
                         tier_refresh_s: Optional[Dict[str, float]] = None,
                         tier_ue_targets: Optional[Dict[str, float]] = None,
                         temperature_c: Optional[float] = None,
                         seed: int = 0) -> DramSystem:
    """A heterogeneous-reliability memory layout over per-channel domains.

    Channel 0 forms the strong tier (reliable, nominal refresh), channel 1
    the normal tier, and the remaining channels the relaxed tier.  Each
    tier's ECC scheme is chosen by :class:`EccSelector` as the cheapest
    scheme meeting the tier's uncorrectable-error target at the raw BER
    its refresh interval produces (via :meth:`RetentionModel.ber`).
    """
    if n_channels < 2:
        raise ConfigurationError("a tiered layout needs >= 2 channels")
    retention = retention or RetentionModel()
    refresh = dict(DEFAULT_TIER_REFRESH_S)
    refresh.update(tier_refresh_s or {})
    targets = dict(DEFAULT_TIER_UE_TARGETS)
    targets.update(tier_ue_targets or {})
    # Retention failures cluster spatially under relaxed refresh, which is
    # what gives SEC-DAEC its edge over plain SECDED at the mid tier.
    selector = EccSelector(adjacent_fraction=RETENTION_ADJACENT_FRACTION)
    tier_ecc = {
        tier: selector.select(retention.ber(refresh[tier], temperature_c),
                              targets[tier])
        for tier in MEMORY_TIERS
    }

    def _tier_for_channel(ch: int) -> str:
        if ch == 0:
            return TIER_STRONG
        if ch == 1:
            return TIER_NORMAL
        return TIER_RELAXED

    domains = []
    for ch in range(n_channels):
        tier = _tier_for_channel(ch)
        dimm = Dimm(dimm_id=ch, capacity_gb=dimm_gb,
                    device_density_gbit=device_density_gbit,
                    retention=retention)
        domain = MemoryDomain(
            name=f"channel{ch}", dimms=[dimm],
            reliable=(tier == TIER_STRONG),
            seed=seed + ch, tier=tier, ecc=tier_ecc[tier],
        )
        if tier != TIER_STRONG:
            domain.set_refresh_interval(refresh[tier])
        domains.append(domain)
    return DramSystem(domains)
