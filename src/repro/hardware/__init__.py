"""Simulated hardware substrate: chips, caches, DRAM, power and faults.

This package replaces the physical machines of the paper's evaluation —
undervoltable Intel CPUs and refresh-configurable DDR3 DIMMs — with
calibrated statistical models exposing the same knobs and failure modes
(see DESIGN.md §2 for the substitution rationale).
"""

from .aging import AgingModel, YEAR_S
from .cache import CacheModel, CacheParameters, CacheRunResult
from .chip import (
    ChipModel,
    ChipSpec,
    RunOutcome,
    arm_server_soc_spec,
    intel_i5_4200u_spec,
    intel_i7_3970x_spec,
    spec_from_variation,
)
from .core_model import CoreModel, CoreParameters
from .dram import (
    BITS_PER_GB,
    DEFAULT_TIER_REFRESH_S,
    DEFAULT_TIER_UE_TARGETS,
    MEMORY_TIERS,
    TIER_NORMAL,
    TIER_RELAXED,
    TIER_STRONG,
    Dimm,
    DramSystem,
    MemoryDomain,
    RetentionModel,
    standard_server_memory,
    tiered_server_memory,
)
from .ecc import (
    BCH_DEC,
    BCH_TEC,
    CODEWORD_BITS,
    DATA_BITS,
    ECC_SCHEMES,
    SEC_DAEC,
    SECDED,
    SECDED_BER_CAPABILITY,
    DecodeResult,
    DecodeStatus,
    EccScheme,
    EccSelector,
    decode,
    encode,
    inject_bit_flips,
    scheme_by_name,
    secded_word_failure_probability,
)
from .faults import FaultClass, FaultLedger, FaultOrigin, FaultRecord
from .platform import PlatformConfig, ServerPlatform, build_uniserver_node
from .power import CorePowerModel, DramPowerModel, energy_for_work
from .sensors import PerfCounters, SensorBlock, SensorReadings
from .thermal import ThermalModel, retention_temperature_factor
from .variation import (
    DEFAULT_BINS,
    Bin,
    ChipSample,
    VariationModel,
    VariationParameters,
    bin_population,
    binning_yield,
    per_core_recoverable_fraction,
    sample_population,
)
from .cache_banks import (
    BankCharacterization,
    BankedCache,
    CacheBank,
    ResizePolicy,
)
from .pdn import BurstWaveform, PdnModel, PdnParameters
from .raidr import (
    MultirateRefresh,
    RefreshBin,
    bin_rows,
    raidr_comparison,
    row_failure_probability,
)

from .scrubbing import (
    DEFAULT_TRANSIENT_FIT_PER_MBIT,
    EccExposureModel,
    ExposureAssessment,
    ScrubPolicy,
    expected_static_pairs,
    scrub_policy_table,
    transient_rate_per_bit_s,
)

__all__ = [
    "DEFAULT_TRANSIENT_FIT_PER_MBIT", "EccExposureModel", "ExposureAssessment", "ScrubPolicy", "expected_static_pairs", "scrub_policy_table", "transient_rate_per_bit_s",
    "BankCharacterization", "BankedCache", "CacheBank", "ResizePolicy", "BurstWaveform", "PdnModel", "PdnParameters", "MultirateRefresh", "RefreshBin", "bin_rows", "raidr_comparison", "row_failure_probability",
    "AgingModel", "YEAR_S",
    "CacheModel", "CacheParameters", "CacheRunResult",
    "ChipModel", "ChipSpec", "RunOutcome",
    "arm_server_soc_spec", "intel_i5_4200u_spec", "intel_i7_3970x_spec",
    "spec_from_variation",
    "CoreModel", "CoreParameters",
    "BITS_PER_GB", "Dimm", "DramSystem", "MemoryDomain", "RetentionModel",
    "standard_server_memory", "tiered_server_memory",
    "DEFAULT_TIER_REFRESH_S", "DEFAULT_TIER_UE_TARGETS", "MEMORY_TIERS",
    "TIER_NORMAL", "TIER_RELAXED", "TIER_STRONG",
    "CODEWORD_BITS", "DATA_BITS", "SECDED_BER_CAPABILITY",
    "DecodeResult", "DecodeStatus", "decode", "encode", "inject_bit_flips",
    "secded_word_failure_probability",
    "BCH_DEC", "BCH_TEC", "ECC_SCHEMES", "SEC_DAEC", "SECDED",
    "EccScheme", "EccSelector", "scheme_by_name",
    "FaultClass", "FaultLedger", "FaultOrigin", "FaultRecord",
    "PlatformConfig", "ServerPlatform", "build_uniserver_node",
    "CorePowerModel", "DramPowerModel", "energy_for_work",
    "PerfCounters", "SensorBlock", "SensorReadings",
    "ThermalModel", "retention_temperature_factor",
    "DEFAULT_BINS", "Bin", "ChipSample", "VariationModel",
    "VariationParameters", "bin_population", "binning_yield",
    "per_core_recoverable_fraction", "sample_population",
]
