"""ECC exposure analysis: static weak cells, transients and scrubbing.

The paper's safety chain for refresh relaxation is: the 5 s point's
BER ≈ 1e-9 is "within the BERs targeted by commercial DRAMs", and
"classical ECC-SECDED can handle error rates up to 1e-6" (Section 6.B,
via ArchShield [27]).  This module makes that argument quantitative by
separating the two error populations SECDED must survive:

* **static weak cells** — retention failures are *fixed* cells that leak
  every refresh period.  A word dies only when two weak cells share the
  same 72-bit word (a birthday pairing).  At BER 1e-9 over an 8 GB
  domain the expected number of such pairs is ~1e-6: effectively zero,
  which is why the paper's point is safe.  Toward 1e-6 BER the pairing
  count grows quadratically — exactly where ArchShield-style remapping
  becomes necessary.
* **transient upsets** — particle strikes at a FIT-rate per Mbit.  These
  *accumulate*: a transient is harmless alone but pairs with a static
  weak cell in the same word, or with a second transient that lands
  before the first is cleaned.  Patrol scrubbing bounds the accumulation
  window; page retirement removes the static-weak targets.

:class:`EccExposureModel` combines both into a domain UE rate and the
mean time to an uncorrectable error under a given scrub/retirement
policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from .dram import MemoryDomain
from .ecc import CODEWORD_BITS

#: Typical DRAM transient upset rate: ~25 FIT per Mbit (1 FIT = one
#: failure per 1e9 device-hours).
DEFAULT_TRANSIENT_FIT_PER_MBIT = 25.0


def transient_rate_per_bit_s(
        fit_per_mbit: float = DEFAULT_TRANSIENT_FIT_PER_MBIT) -> float:
    """Per-bit transient upset rate in events/second."""
    if fit_per_mbit < 0:
        raise ConfigurationError("FIT rate must be non-negative")
    per_mbit_per_s = fit_per_mbit / (1e9 * 3600.0)
    return per_mbit_per_s / (1024.0 * 1024.0)


def expected_static_pairs(weak_cells: float, total_bits: int,
                          word_bits: int = CODEWORD_BITS) -> float:
    """Expected words containing ≥2 static weak cells (birthday bound).

    With ``weak_cells`` placed uniformly over ``total_bits``, the chance
    two specific weak cells share a word is ``(word_bits-1)/total_bits``;
    summing over pairs gives the expected pairing count.
    """
    if weak_cells < 0 or total_bits <= 0:
        raise ConfigurationError("bad population parameters")
    if weak_cells < 2:
        return 0.0
    pairs = weak_cells * (weak_cells - 1) / 2.0
    return pairs * (word_bits - 1) / total_bits


@dataclass(frozen=True)
class ScrubPolicy:
    """Patrol scrub and page-retirement configuration.

    ``scrub_interval_s`` bounds how long a transient single-bit error
    survives before correction.  ``retire_weak_pages`` removes pages
    holding static weak cells from service (ArchShield-style), which
    eliminates the transient-on-static pairing term.
    """

    scrub_interval_s: float = 3600.0
    retire_weak_pages: bool = False
    bandwidth_overhead: float = 0.001

    def __post_init__(self) -> None:
        if self.scrub_interval_s <= 0:
            raise ConfigurationError("scrub interval must be positive")
        if not 0 <= self.bandwidth_overhead < 1:
            raise ConfigurationError(
                "bandwidth overhead must be in [0, 1)"
            )


@dataclass(frozen=True)
class ExposureAssessment:
    """Uncorrectable-error exposure of one domain under one policy."""

    domain: str
    refresh_interval_s: float
    weak_cells: float
    #: Expected words with two static weak cells (policy-independent).
    static_pair_words: float
    #: UE rate from transients striking words with a static weak cell.
    transient_on_static_rate_s: float
    #: UE rate from two transients pairing within a scrub window.
    transient_pair_rate_s: float

    @property
    def total_ue_rate_s(self) -> float:
        """Combined uncorrectable-error rate (per second)."""
        return self.transient_on_static_rate_s + self.transient_pair_rate_s

    def mean_time_to_ue_s(self) -> float:
        """Expected time to the first uncorrectable error."""
        if self.total_ue_rate_s <= 0:
            return float("inf")
        return 1.0 / self.total_ue_rate_s

    @property
    def statically_safe(self) -> bool:
        """No word is born dead (expected static pairs ≪ 1)."""
        return self.static_pair_words < 0.01


class EccExposureModel:
    """Quantifies SECDED exposure for a refresh domain and policy."""

    def __init__(self, policy: Optional[ScrubPolicy] = None,
                 fit_per_mbit: float = DEFAULT_TRANSIENT_FIT_PER_MBIT,
                 ) -> None:
        self.policy = policy or ScrubPolicy()
        self.transient_rate = transient_rate_per_bit_s(fit_per_mbit)

    def assess(self, domain: MemoryDomain,
               temperature_c: Optional[float] = None) -> ExposureAssessment:
        """Full exposure assessment at the domain's current refresh."""
        total_bits = domain.capacity_bits
        ber = domain.ber(temperature_c)
        weak_cells = ber * total_bits
        static_pairs = expected_static_pairs(weak_cells, total_bits)

        # Transient-on-static: a strike anywhere in a word already
        # holding one permanently weak cell is uncorrectable.
        if self.policy.retire_weak_pages:
            on_static = 0.0
        else:
            vulnerable_bits = weak_cells * (CODEWORD_BITS - 1)
            on_static = vulnerable_bits * self.transient_rate

        # Transient-on-transient: the second strike must land in the
        # same word within one scrub window of the first.
        n_words = total_bits // CODEWORD_BITS
        word_rate = CODEWORD_BITS * self.transient_rate
        lam = word_rate * self.policy.scrub_interval_s
        per_word_per_window = -math.expm1(-lam) - lam * math.exp(-lam)
        per_word_per_window = max(0.0, per_word_per_window)
        pair_rate = (per_word_per_window * n_words
                     / self.policy.scrub_interval_s)

        return ExposureAssessment(
            domain=domain.name,
            refresh_interval_s=domain.refresh_interval_s,
            weak_cells=weak_cells,
            static_pair_words=static_pairs,
            transient_on_static_rate_s=on_static,
            transient_pair_rate_s=pair_rate,
        )

    def max_safe_ber(self, total_bits: int,
                     max_expected_pairs: float = 0.01) -> float:
        """Largest static BER with ≪1 expected dead word.

        Solves the birthday bound for the weak-cell count; the result
        sits orders above the 5 s point's 1e-9 and approaches the quoted
        1e-6 capability for DIMM-scale populations, reproducing the
        ArchShield argument the paper cites.
        """
        if total_bits <= 0:
            raise ConfigurationError("total_bits must be positive")
        if max_expected_pairs <= 0:
            raise ConfigurationError("pair budget must be positive")
        # pairs ~= weak^2 * (w-1) / (2*total) => weak = sqrt(...)
        weak = math.sqrt(2.0 * max_expected_pairs * total_bits
                         / (CODEWORD_BITS - 1))
        return weak / total_bits


def scrub_policy_table(domain: MemoryDomain,
                       intervals_s: Sequence[float]
                       = (600.0, 3600.0, 86400.0, 604800.0),
                       retire_weak_pages: bool = False,
                       temperature_c: Optional[float] = None,
                       ) -> List[Tuple[float, float, float]]:
    """(scrub interval, total UE rate, MTTUE) rows across policies."""
    rows = []
    for interval in intervals_s:
        model = EccExposureModel(ScrubPolicy(
            scrub_interval_s=interval,
            retire_weak_pages=retire_weak_pages))
        assessment = model.assess(domain, temperature_c)
        rows.append((interval, assessment.total_ue_rate_s,
                     assessment.mean_time_to_ue_s()))
    return rows
