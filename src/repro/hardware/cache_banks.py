"""Per-bank cache characterisation and low-voltage cache resizing.

Paper Section 3.A: "Heterogeneity exists among cores located on the same
chip, DRAM and cache memory banks. [...] for each cache memory bank
UniServer will reveal the minimum voltage that allows correct operation.
This information will be revealed to software and can be exploited
towards better energy-efficiency."

This module models a banked SRAM cache whose banks have individually
varying minimum voltages (SRAM cells are the first structures to fail
under voltage scaling).  Characterisation reveals each bank's Vmin; at a
given operating voltage the cache can *resize* — disable the banks that
cannot hold data — trading capacity (and therefore miss rate) for the
deeper voltage, the classical low-voltage cache trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class CacheBank:
    """One SRAM bank with its own minimum operational voltage."""

    bank_id: int
    capacity_kb: float
    vmin_v: float

    def works_at(self, voltage_v: float) -> bool:
        """Whether the bank retains data at ``voltage_v``."""
        return voltage_v >= self.vmin_v


@dataclass(frozen=True)
class BankCharacterization:
    """StressLog-style verdict for one bank."""

    bank_id: int
    revealed_vmin_v: float
    guard_margin_v: float

    @property
    def safe_voltage_v(self) -> float:
        """Revealed Vmin plus the guard margin."""
        return self.revealed_vmin_v + self.guard_margin_v


class BankedCache:
    """A cache organised as independently characterisable banks.

    Bank Vmins are sampled around a design Vmin with within-die
    variation, so every manufactured cache has a different
    capacity-vs-voltage curve.
    """

    def __init__(self, n_banks: int = 16, bank_kb: float = 128.0,
                 design_vmin_v: float = 0.72, vmin_sigma_v: float = 0.020,
                 seed: int = 0) -> None:
        if n_banks < 1:
            raise ConfigurationError("cache needs at least one bank")
        if bank_kb <= 0:
            raise ConfigurationError("bank capacity must be positive")
        if design_vmin_v <= 0 or vmin_sigma_v < 0:
            raise ConfigurationError("bad Vmin parameters")
        rng = np.random.default_rng(seed)
        vmins = design_vmin_v + rng.normal(0.0, vmin_sigma_v, n_banks)
        self.banks: List[CacheBank] = [
            CacheBank(bank_id=i, capacity_kb=bank_kb,
                      vmin_v=float(max(0.4, v)))
            for i, v in enumerate(vmins)
        ]
        self.design_vmin_v = design_vmin_v

    @property
    def n_banks(self) -> int:
        """Number of banks in the cache."""
        return len(self.banks)

    @property
    def total_capacity_kb(self) -> float:
        """Design capacity across all banks (KB)."""
        return sum(b.capacity_kb for b in self.banks)

    def worst_bank_vmin_v(self) -> float:
        """The conservative whole-cache Vmin (every bank must work)."""
        return max(b.vmin_v for b in self.banks)

    def best_bank_vmin_v(self) -> float:
        """The strongest bank's minimum voltage."""
        return min(b.vmin_v for b in self.banks)

    # -- characterisation -----------------------------------------------------

    def characterize(self, step_v: float = 0.005,
                     guard_margin_v: float = 0.010,
                     measurement_noise_v: float = 0.002,
                     seed: int = 0) -> List[BankCharacterization]:
        """Reveal each bank's minimum voltage by a march-test sweep.

        Mirrors the per-component StressLog methodology: descend in
        ``step_v`` steps until the bank's march test fails; the revealed
        Vmin is the last passing step (plus measurement noise), and the
        published safe voltage adds the guard margin.
        """
        if step_v <= 0:
            raise ConfigurationError("step must be positive")
        rng = np.random.default_rng(seed)
        results = []
        for bank in self.banks:
            observed = bank.vmin_v + rng.normal(0.0, measurement_noise_v)
            revealed = float(np.ceil(observed / step_v) * step_v)
            results.append(BankCharacterization(
                bank_id=bank.bank_id,
                revealed_vmin_v=revealed,
                guard_margin_v=guard_margin_v,
            ))
        return results

    # -- low-voltage operation ---------------------------------------------------

    def usable_banks(self, voltage_v: float) -> List[CacheBank]:
        """Banks that retain data at ``voltage_v``."""
        return [b for b in self.banks if b.works_at(voltage_v)]

    def capacity_at(self, voltage_v: float) -> float:
        """Usable cache capacity (KB) at a voltage."""
        return sum(b.capacity_kb for b in self.usable_banks(voltage_v))

    def capacity_fraction_at(self, voltage_v: float) -> float:
        """Fraction of the design capacity usable at a voltage."""
        return self.capacity_at(voltage_v) / self.total_capacity_kb

    def miss_rate_at(self, voltage_v: float,
                     base_miss_rate: float = 0.02,
                     working_set_sensitivity: float = 0.5) -> float:
        """Miss rate after resizing, via the power-law (√2) rule.

        The classical cache rule of thumb: miss rate scales with
        capacity**(-working_set_sensitivity).  Disabled banks shrink the
        effective capacity and raise the miss rate accordingly; with no
        usable banks the cache is bypassed entirely (miss rate 1).
        """
        if not 0 < base_miss_rate < 1:
            raise ConfigurationError("base_miss_rate must be in (0, 1)")
        fraction = self.capacity_fraction_at(voltage_v)
        if fraction == 0.0:
            return 1.0
        return min(1.0, base_miss_rate
                   * fraction ** (-working_set_sensitivity))

    def resize_curve(self, voltages_v: Sequence[float],
                     ) -> List[Tuple[float, float, float]]:
        """(voltage, capacity fraction, miss rate) across a sweep."""
        return [
            (v, self.capacity_fraction_at(v), self.miss_rate_at(v))
            for v in sorted(voltages_v, reverse=True)
        ]


@dataclass(frozen=True)
class ResizePolicy:
    """Chooses between whole-cache Vmin and resized operation.

    ``max_miss_rate`` caps the performance loss the policy accepts in
    exchange for deeper voltage.
    """

    max_miss_rate: float = 0.06
    base_miss_rate: float = 0.02

    def __post_init__(self) -> None:
        if not 0 < self.max_miss_rate <= 1:
            raise ConfigurationError("max_miss_rate must be in (0, 1]")

    def min_voltage(self, cache: BankedCache,
                    candidate_voltages: Sequence[float]) -> float:
        """Deepest candidate voltage whose resized miss rate is accepted."""
        acceptable = [
            v for v in candidate_voltages
            if cache.miss_rate_at(v, self.base_miss_rate)
            <= self.max_miss_rate
        ]
        if not acceptable:
            return cache.worst_bank_vmin_v()
        return min(acceptable)
