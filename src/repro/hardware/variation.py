"""Process-variation models and chip-population sampling.

The paper's Figure 1 rests on one observation: *every manufactured chip is
intrinsically different*.  Each part lands in a distinct performance bin
because die-to-die (D2D) and within-die (WID) variation shift every core's
minimum operational voltage (Vmin) and maximum frequency (Fmax).

This module models that variation:

* :class:`VariationModel` — samples per-chip and per-core parameter
  deviations (D2D Gaussian + WID Gaussian + systematic gradient).
* :class:`ChipSample` — the variation outcome for one manufactured chip.
* :func:`sample_population` — draws a population of chips, from which
  Figure 1's performance bins and the binning-yield arguments of Section 5
  are reproduced.
* :func:`bin_population` — classical speed/voltage binning of a population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class VariationParameters:
    """Statistical parameters of the manufacturing process.

    Fractions are relative to the nominal design value; e.g.
    ``d2d_vmin_sigma = 0.03`` means die means deviate with a 3 % standard
    deviation.
    """

    d2d_vmin_sigma: float = 0.030
    wid_vmin_sigma: float = 0.012
    d2d_fmax_sigma: float = 0.040
    wid_fmax_sigma: float = 0.015
    #: Systematic within-die gradient peak-to-peak (fraction of Vmin);
    #: models the spatially correlated component of WID variation.
    wid_gradient_span: float = 0.010
    #: Correlation between a core's Vmin deviation and its Fmax deviation
    #: (slow cores need more voltage): negative by construction.
    vmin_fmax_correlation: float = -0.6

    def __post_init__(self) -> None:
        for name in ("d2d_vmin_sigma", "wid_vmin_sigma",
                     "d2d_fmax_sigma", "wid_fmax_sigma",
                     "wid_gradient_span"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if not -1.0 <= self.vmin_fmax_correlation <= 1.0:
            raise ConfigurationError(
                "vmin_fmax_correlation must be a correlation coefficient"
            )


@dataclass(frozen=True)
class ChipSample:
    """Variation outcome for one manufactured chip.

    ``core_vmin_factor[i]`` multiplies the design Vmin of core ``i``;
    ``core_fmax_factor[i]`` multiplies the design Fmax.  A factor above 1 in
    Vmin means a *weak* core needing extra voltage; a factor above 1 in Fmax
    means a *fast* core.
    """

    chip_id: int
    core_vmin_factor: Tuple[float, ...]
    core_fmax_factor: Tuple[float, ...]

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return len(self.core_vmin_factor)

    def worst_vmin_factor(self) -> float:
        """The chip's binning-relevant Vmin factor (its weakest core)."""
        return max(self.core_vmin_factor)

    def worst_fmax_factor(self) -> float:
        """The chip's binning-relevant Fmax factor (its slowest core)."""
        return min(self.core_fmax_factor)

    def core_to_core_vmin_spread(self) -> float:
        """Peak-to-peak spread of core Vmin factors (fraction of nominal)."""
        return max(self.core_vmin_factor) - min(self.core_vmin_factor)


class VariationModel:
    """Samples manufacturing variation for chips of a given core count.

    The model composes three classical components:

    1. die-to-die: one Gaussian offset shared by all cores of a chip;
    2. within-die random: independent Gaussian per core;
    3. within-die systematic: a linear spatial gradient across the die.

    Vmin and Fmax deviations are drawn jointly with the configured negative
    correlation (slow silicon needs more voltage).
    """

    def __init__(self, params: Optional[VariationParameters] = None,
                 seed: int = 0) -> None:
        self.params = params or VariationParameters()
        self._rng = np.random.default_rng(seed)
        self._next_chip_id = 0

    def sample_chip(self, n_cores: int) -> ChipSample:
        """Draw the variation outcome for one chip with ``n_cores`` cores."""
        if n_cores < 1:
            raise ConfigurationError("a chip needs at least one core")
        p = self.params

        rho = p.vmin_fmax_correlation
        cov = np.array([[1.0, rho], [rho, 1.0]])
        chol = np.linalg.cholesky(cov)

        # Die-to-die component (shared by all cores).
        d2d = chol @ self._rng.standard_normal(2)
        d2d_vmin = d2d[0] * p.d2d_vmin_sigma
        d2d_fmax = d2d[1] * p.d2d_fmax_sigma

        # Within-die random component per core.
        wid = (chol @ self._rng.standard_normal((2, n_cores)))
        wid_vmin = wid[0] * p.wid_vmin_sigma
        wid_fmax = wid[1] * p.wid_fmax_sigma

        # Systematic gradient across the die (cores laid out in a row).
        if n_cores > 1:
            gradient = np.linspace(-0.5, 0.5, n_cores) * p.wid_gradient_span
        else:
            gradient = np.zeros(1)
        phase = self._rng.choice([-1.0, 1.0])
        gradient = gradient * phase

        vmin_factor = 1.0 + d2d_vmin + wid_vmin + gradient
        fmax_factor = 1.0 + d2d_fmax + wid_fmax - gradient * 0.5

        chip_id = self._next_chip_id
        self._next_chip_id += 1
        return ChipSample(
            chip_id=chip_id,
            core_vmin_factor=tuple(float(v) for v in vmin_factor),
            core_fmax_factor=tuple(float(f) for f in fmax_factor),
        )

    def sample_population(self, n_chips: int, n_cores: int) -> List[ChipSample]:
        """Draw a whole manufactured population (Figure 1's input)."""
        if n_chips < 1:
            raise ConfigurationError("population needs at least one chip")
        return [self.sample_chip(n_cores) for _ in range(n_chips)]


def sample_population(n_chips: int, n_cores: int, seed: int = 0,
                      params: Optional[VariationParameters] = None,
                      ) -> List[ChipSample]:
    """Convenience wrapper: sample ``n_chips`` chips deterministically."""
    return VariationModel(params, seed=seed).sample_population(n_chips, n_cores)


@dataclass(frozen=True)
class Bin:
    """One speed/voltage bin of a classical binning flow."""

    name: str
    max_vmin_factor: float


#: A typical 4-bin classification plus a discard bucket.  Parts whose
#: worst-core Vmin factor exceeds the last bin's limit are discarded —
#: the yield loss UniServer recovers (Section 5.A).
DEFAULT_BINS = (
    Bin("premium", 0.97),
    Bin("standard", 1.00),
    Bin("value", 1.03),
    Bin("economy", 1.06),
)


def bin_population(population: Sequence[ChipSample],
                   bins: Sequence[Bin] = DEFAULT_BINS,
                   ) -> Dict[str, List[ChipSample]]:
    """Classical product binning of a chip population.

    Each chip goes into the first bin whose Vmin ceiling its *worst* core
    satisfies — the conservative rule UniServer criticises, because one weak
    core drags the whole part down.  Chips failing every bin land in
    ``"discard"``.
    """
    ordered = sorted(bins, key=lambda b: b.max_vmin_factor)
    result: Dict[str, List[ChipSample]] = {b.name: [] for b in ordered}
    result["discard"] = []
    for chip in population:
        worst = chip.worst_vmin_factor()
        for b in ordered:
            if worst <= b.max_vmin_factor:
                result[b.name].append(chip)
                break
        else:
            result["discard"].append(chip)
    return result


def binning_yield(binned: Dict[str, List[ChipSample]]) -> float:
    """Fraction of parts that survive binning (everything but discard)."""
    total = sum(len(chips) for chips in binned.values())
    if total == 0:
        return 0.0
    return 1.0 - len(binned.get("discard", [])) / total


def per_core_recoverable_fraction(population: Sequence[ChipSample],
                                  discard_vmin_factor: float = 1.06) -> float:
    """Fraction of discarded chips usable under per-core characterisation.

    A discarded chip is *recoverable* in the UniServer model when at least
    half of its cores individually meet the discard ceiling: per-core EOPs
    let the good cores run even though the worst core condemned the part
    under classical binning.
    """
    discarded = [c for c in population
                 if c.worst_vmin_factor() > discard_vmin_factor]
    if not discarded:
        return 0.0
    recoverable = 0
    for chip in discarded:
        good = sum(1 for v in chip.core_vmin_factor
                   if v <= discard_vmin_factor)
        if good * 2 >= chip.n_cores:
            recoverable += 1
    return recoverable / len(discarded)
