"""On-die sensors and performance counters.

The HealthLog information vector bundles "system configuration values,
sensor readings and performance counters" (Section 3.C).  This module
models the measurement side: noisy reads of voltage, temperature and
power, plus per-run performance-counter snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError
from ..workloads.base import Workload


@dataclass(frozen=True)
class SensorReadings:
    """One snapshot of a component's sensors."""

    timestamp: float
    voltage_v: float
    temperature_c: float
    power_w: float
    frequency_hz: float


@dataclass(frozen=True)
class PerfCounters:
    """Performance-counter snapshot for one executed interval."""

    cycles: float
    instructions: float
    cache_misses: float
    memory_accesses: float

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 when no cycles elapsed)."""
        return self.instructions / self.cycles if self.cycles else 0.0


class SensorBlock:
    """Noisy sensor frontend for one component.

    Measurement noise is Gaussian with per-quantity sigmas; reads are
    deterministic given the seed, keeping HealthLog traces reproducible.
    """

    def __init__(self, seed: int = 0, voltage_noise_v: float = 0.002,
                 temperature_noise_c: float = 0.5,
                 power_noise_fraction: float = 0.02) -> None:
        if voltage_noise_v < 0 or temperature_noise_c < 0:
            raise ConfigurationError("sensor noise must be non-negative")
        if power_noise_fraction < 0:
            raise ConfigurationError("power noise must be non-negative")
        self._rng = np.random.default_rng(seed)
        self._voltage_noise_v = voltage_noise_v
        self._temperature_noise_c = temperature_noise_c
        self._power_noise_fraction = power_noise_fraction

    def read(self, timestamp: float, point: OperatingPoint,
             true_temperature_c: float, true_power_w: float) -> SensorReadings:
        """Take one noisy snapshot of the component state."""
        return SensorReadings(
            timestamp=timestamp,
            voltage_v=point.voltage_v
            + self._rng.normal(0.0, self._voltage_noise_v),
            temperature_c=true_temperature_c
            + self._rng.normal(0.0, self._temperature_noise_c),
            power_w=max(0.0, true_power_w * (
                1.0 + self._rng.normal(0.0, self._power_noise_fraction))),
            frequency_hz=point.frequency_hz,
        )

    def state_dict(self) -> dict:
        """Serializable mutable state (the noise RNG)."""
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore the RNG saved by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]

    def count_run(self, workload: Workload,
                  frequency_hz: float) -> PerfCounters:
        """Synthesize performance counters for one workload run.

        IPC tracks the activity factor; cache misses and memory accesses
        track the cache/DRAM pressure of the workload's stress profile.
        """
        cycles = workload.duration_cycles
        profile = workload.profile
        base_ipc = 0.4 + 2.2 * profile.activity_factor
        instructions = cycles * base_ipc * (
            1.0 + self._rng.normal(0.0, 0.01))
        memory_accesses = cycles * 0.3 * profile.dram_pressure
        cache_misses = memory_accesses * (0.02 + 0.25 * profile.cache_pressure)
        return PerfCounters(
            cycles=cycles,
            instructions=max(0.0, instructions),
            cache_misses=max(0.0, cache_misses),
            memory_accesses=max(0.0, memory_accesses),
        )
