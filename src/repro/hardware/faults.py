"""Fault taxonomy shared by the hardware models and the daemons.

The HealthLog records errors "(correctable or uncorrectable)"; the
hypervisor fault-injection campaign of Figure 4 injects Silent Data
Corruptions.  This module defines the shared fault record that every layer
exchanges, plus counters used to build HealthLog information vectors.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class FaultClass(Enum):
    """How a fault manifests to the system."""

    CORRECTABLE = "correctable"           # detected and corrected (e.g. SECDED)
    UNCORRECTABLE = "uncorrectable"       # detected, not correctable
    SILENT_DATA_CORRUPTION = "sdc"        # escaped detection entirely
    CRASH = "crash"                       # machine/component became unresponsive


class FaultOrigin(Enum):
    """Which physical component produced the fault."""

    CPU_CORE = "cpu_core"
    CACHE = "cache"
    DRAM = "dram"
    INTERCONNECT = "interconnect"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class FaultRecord:
    """One observed fault, as logged by the HealthLog.

    ``operating_point`` is the V-F-R description active when the fault hit;
    the StressLog and Predictor correlate faults with it.
    """

    timestamp: float
    fault_class: FaultClass
    origin: FaultOrigin
    component: str
    operating_point: str = ""
    detail: str = ""

    def is_fatal(self) -> bool:
        """Whether this fault terminated execution."""
        return self.fault_class is FaultClass.CRASH

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for snapshots."""
        return {
            "timestamp": self.timestamp,
            "fault_class": self.fault_class.value,
            "origin": self.origin.value,
            "component": self.component,
            "operating_point": self.operating_point,
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(state: Dict[str, object]) -> "FaultRecord":
        """Rebuild a record saved by :meth:`as_dict`."""
        return FaultRecord(
            timestamp=float(state["timestamp"]),  # type: ignore[arg-type]
            fault_class=FaultClass(state["fault_class"]),
            origin=FaultOrigin(state["origin"]),
            component=str(state["component"]),
            operating_point=str(state["operating_point"]),
            detail=str(state["detail"]),
        )


class FaultLedger:
    """Accumulates fault records and summarises them per component.

    This is the bookkeeping behind the HealthLog's "number of errors rises
    above a certain threshold → trigger a new stress-test cycle" rule
    (Section 3).
    """

    def __init__(self) -> None:
        self._records: List[FaultRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def record(self, fault: FaultRecord) -> None:
        """Append one fault record."""
        self._records.append(fault)

    @property
    def records(self) -> List[FaultRecord]:
        """All recorded faults, in order."""
        return list(self._records)

    def count(self, fault_class: Optional[FaultClass] = None,
              component: Optional[str] = None,
              since: float = float("-inf")) -> int:
        """Count records matching the given filters."""
        return sum(
            1 for r in self._records
            if (fault_class is None or r.fault_class is fault_class)
            and (component is None or r.component == component)
            and r.timestamp >= since
        )

    def counts_by_component(self) -> Dict[str, int]:
        """Total fault count per component."""
        return dict(Counter(r.component for r in self._records))

    def counts_by_class(self) -> Dict[FaultClass, int]:
        """Total fault count per fault class."""
        return dict(Counter(r.fault_class for r in self._records))

    def error_rate(self, window_s: float, now: float) -> float:
        """Faults per second over the trailing window ending at ``now``."""
        if window_s <= 0:
            return 0.0
        recent = self.count(since=now - window_s)
        return recent / window_s

    def components_above_threshold(self, threshold: int,
                                   since: float = float("-inf"),
                                   ) -> List[str]:
        """Components whose fault count meets/exceeds ``threshold``.

        These are the "problematic processing and memory resources" the
        hypervisor isolates (Section 4.A).
        """
        counts: Counter = Counter(
            r.component for r in self._records if r.timestamp >= since
        )
        return sorted(c for c, n in counts.items() if n >= threshold)

    def clear(self) -> None:
        """Forget all records (e.g. after re-characterisation)."""
        self._records.clear()

    def state_dict(self) -> Dict[str, object]:
        """Serializable ledger state (every record, in order)."""
        return {"records": [r.as_dict() for r in self._records]}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Replace the ledger contents with the saved records."""
        self._records = [FaultRecord.from_dict(r)
                         for r in state["records"]]  # type: ignore[union-attr]
