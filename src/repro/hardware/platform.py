"""Server platform: one chip plus main memory, the unit UniServer manages.

A :class:`ServerPlatform` is what a single micro-server node looks like to
the daemons and the hypervisor: an undervoltable processor, a set of DRAM
refresh domains (one reliable), a fault ledger, and the current V-F-R
configuration of every component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S, OperatingPoint
from ..core.exceptions import ConfigurationError
from .chip import ChipModel, ChipSpec, arm_server_soc_spec
from .dram import DramSystem, standard_server_memory
from .faults import FaultLedger


@dataclass(frozen=True)
class PlatformConfig:
    """Build parameters for a standard UniServer node."""

    chip_seed: int = 0
    memory_channels: int = 4
    dimm_gb: float = 8.0
    device_density_gbit: float = 2.0
    reliable_channel: int = 0


class ServerPlatform:
    """One micro-server node: chip + DRAM domains + fault ledger."""

    def __init__(self, chip: ChipModel, memory: DramSystem,
                 name: str = "node0") -> None:
        self.name = name
        self.chip = chip
        self.memory = memory
        self.faults = FaultLedger()
        self._core_points: Dict[int, OperatingPoint] = {
            core.core_id: chip.spec.nominal for core in chip.cores
        }

    # -- configuration -------------------------------------------------------

    def core_point(self, core_id: int) -> OperatingPoint:
        """Current operating point of a core."""
        if core_id not in self._core_points:
            raise ConfigurationError(f"unknown core {core_id}")
        return self._core_points[core_id]

    def set_core_point(self, core_id: int, point: OperatingPoint) -> None:
        """Set a core's V-F point (refresh field ignored for cores)."""
        if core_id not in self._core_points:
            raise ConfigurationError(f"unknown core {core_id}")
        self._core_points[core_id] = point

    def set_all_core_points(self, point: OperatingPoint) -> None:
        """Set every core to the same operating point."""
        for core_id in self._core_points:
            self._core_points[core_id] = point

    def reset_nominal(self) -> None:
        """Return every component to its conservative nominal point."""
        self.set_all_core_points(self.chip.spec.nominal)
        for domain in self.memory.domains():
            if not domain.reliable:
                domain.set_refresh_interval(NOMINAL_REFRESH_INTERVAL_S)

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable mutable platform state."""
        return {
            "chip": self.chip.state_dict(),
            "memory": self.memory.state_dict(),
            "faults": self.faults.state_dict(),
            "core_points": {str(core_id): point.as_dict()
                            for core_id, point in self._core_points.items()},
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore onto a platform rebuilt from the same configuration."""
        self.chip.load_state_dict(state["chip"])  # type: ignore[arg-type]
        self.memory.load_state_dict(state["memory"])  # type: ignore[arg-type]
        self.faults.load_state_dict(state["faults"])  # type: ignore[arg-type]
        saved_points = state["core_points"]
        for core_id_str, point in saved_points.items():  # type: ignore[union-attr]
            core_id = int(core_id_str)
            if core_id not in self._core_points:
                raise ConfigurationError(
                    f"platform restore mismatch: unknown core {core_id}")
            self._core_points[core_id] = OperatingPoint.from_dict(point)

    # -- aggregate views ------------------------------------------------------

    def total_power_w(self, activity: float = 0.5) -> float:
        """Platform power: chip (averaged over per-core points) + DRAM."""
        chip_power = 0.0
        for core in self.chip.cores:
            point = self._core_points[core.core_id]
            chip_power += self.chip.power.total_power_w(
                point, activity=activity,
                temperature_c=self.chip.thermal.temperature_c,
            ) / self.chip.n_cores
        return chip_power + self.memory.total_power_w()

    def describe(self) -> str:
        """Multi-line summary of the platform configuration."""
        lines = [f"platform {self.name}: {self.chip.name}, "
                 f"{self.memory.capacity_gb:.0f} GB DRAM"]
        for core in self.chip.cores:
            point = self._core_points[core.core_id]
            tag = " [isolated]" if core.isolated else ""
            lines.append(f"  core{core.core_id}: {point.describe()}{tag}")
        for domain in self.memory.domains():
            tag = " [reliable]" if domain.reliable else ""
            lines.append(
                f"  {domain.name}: {domain.capacity_gb:.0f} GB, refresh "
                f"{domain.refresh_interval_s * 1e3:.0f} ms{tag}"
            )
        return "\n".join(lines)


def build_uniserver_node(config: Optional[PlatformConfig] = None,
                         chip_spec: Optional[ChipSpec] = None,
                         name: str = "node0") -> ServerPlatform:
    """Assemble a standard UniServer node (ARM SoC + 4-channel memory)."""
    config = config or PlatformConfig()
    spec = chip_spec or arm_server_soc_spec()
    chip = ChipModel(spec, seed=config.chip_seed)
    memory = standard_server_memory(
        n_channels=config.memory_channels,
        dimm_gb=config.dimm_gb,
        device_density_gbit=config.device_density_gbit,
        reliable_channel=config.reliable_channel,
        seed=config.chip_seed + 7,
    )
    return ServerPlatform(chip, memory, name=name)
