"""Power-delivery-network (PDN) model: voltage droop from load transients.

The stress profiles used throughout the stack summarise supply droop as
an abstract intensity; this module provides the physical layer beneath
it.  A server PDN behaves as a second-order RLC system with a resonance
in the tens-of-MHz range; load current steps whose spectral content hits
that resonance produce the deepest droops ("second droop"), which is why
the paper's droop-resonance virus alternates bursts and stalls at a
specific period (Section 3.B and [5], Reddi et al.).

The model computes the droop magnitude for a periodic burst/stall
current waveform against the PDN's impedance profile, and maps it back
to the ``droop_intensity`` scale the rest of the stack consumes — so a
GA genome's ``pdn_alignment`` gene has a physical interpretation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class PdnParameters:
    """Second-order PDN electrical parameters.

    Defaults give a ~50 MHz resonance with a quality factor of ~3 — a
    typical package/die power-delivery corner.
    """

    resistance_ohm: float = 0.001
    inductance_h: float = 10e-12
    capacitance_f: float = 1e-6

    def __post_init__(self) -> None:
        if min(self.resistance_ohm, self.inductance_h,
               self.capacitance_f) <= 0:
            raise ConfigurationError("PDN parameters must be positive")

    @property
    def resonant_frequency_hz(self) -> float:
        """The anti-resonance where impedance peaks."""
        return 1.0 / (2 * math.pi
                      * math.sqrt(self.inductance_h * self.capacitance_f))

    @property
    def characteristic_impedance_ohm(self) -> float:
        """sqrt(L/C) of the PDN tank."""
        return math.sqrt(self.inductance_h / self.capacitance_f)

    @property
    def quality_factor(self) -> float:
        """Resonance sharpness: Z0 over R."""
        return self.characteristic_impedance_ohm / self.resistance_ohm

    def impedance_ohm(self, frequency_hz: float) -> float:
        """|Z(f)| the die sees: series (R + jwL) in parallel with the decap.

        Peaks at the anti-resonance, where the regulator path's
        inductance and the decoupling capacitance exchange energy.
        """
        if frequency_hz < 0:
            raise ConfigurationError("frequency must be non-negative")
        if frequency_hz == 0:
            return self.resistance_ohm
        w = 2 * math.pi * frequency_hz
        z_series = complex(self.resistance_ohm, w * self.inductance_h)
        z_cap = complex(0.0, -1.0 / (w * self.capacitance_f))
        z = z_series * z_cap / (z_series + z_cap)
        return abs(z)


@dataclass(frozen=True)
class BurstWaveform:
    """Periodic burst/stall load-current waveform.

    ``burst_current_a`` flows during the burst phase, near zero during
    the stall; the fundamental frequency is ``1 / period_s``.
    """

    burst_current_a: float
    period_s: float
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.burst_current_a < 0 or self.period_s <= 0:
            raise ConfigurationError("bad waveform parameters")
        if not 0 < self.duty < 1:
            raise ConfigurationError("duty must be in (0, 1)")

    @property
    def fundamental_hz(self) -> float:
        """Fundamental frequency of the burst waveform."""
        return 1.0 / self.period_s

    def harmonic_amplitude_a(self, k: int) -> float:
        """Fourier amplitude of the k-th harmonic of the square wave."""
        if k < 1:
            raise ConfigurationError("harmonic index must be >= 1")
        return (2.0 * self.burst_current_a / (math.pi * k)
                * abs(math.sin(math.pi * k * self.duty)))


class PdnModel:
    """Maps load waveforms to supply droop."""

    def __init__(self, params: PdnParameters = PdnParameters(),
                 nominal_voltage_v: float = 1.0,
                 harmonics: int = 7) -> None:
        if nominal_voltage_v <= 0:
            raise ConfigurationError("nominal voltage must be positive")
        if harmonics < 1:
            raise ConfigurationError("need at least one harmonic")
        self.params = params
        self.nominal_voltage_v = nominal_voltage_v
        self.harmonics = harmonics

    def droop_v(self, waveform: BurstWaveform) -> float:
        """Peak supply droop (volts) for a periodic burst waveform.

        Sums each harmonic's current against the PDN impedance at that
        frequency — worst when the fundamental lands on the resonance.
        """
        total = 0.0
        for k in range(1, self.harmonics + 1):
            frequency = waveform.fundamental_hz * k
            total += (waveform.harmonic_amplitude_a(k)
                      * self.params.impedance_ohm(frequency))
        # DC IR drop of the average current.
        total += (waveform.burst_current_a * waveform.duty
                  * self.params.resistance_ohm)
        return total

    def droop_fraction(self, waveform: BurstWaveform) -> float:
        """Droop as a fraction of the nominal supply."""
        return min(1.0, self.droop_v(waveform) / self.nominal_voltage_v)

    def worst_case_period_s(self, duty: float = 0.5,
                            candidates: int = 200) -> float:
        """The burst period producing the deepest droop (resonance hit).

        Scans periods around the PDN resonance; the winner is what a
        hand-tuned droop virus (or a converged GA) uses.
        """
        resonance = self.params.resonant_frequency_hz
        best_period, best_droop = 0.0, -1.0
        for i in range(candidates):
            frequency = resonance * (0.25 + 3.75 * i / (candidates - 1))
            waveform = BurstWaveform(
                burst_current_a=1.0, period_s=1.0 / frequency, duty=duty)
            droop = self.droop_v(waveform)
            if droop > best_droop:
                best_droop = droop
                best_period = 1.0 / frequency
        return best_period

    def alignment_to_droop_intensity(self, alignment: float,
                                     burst_current_a: float = 20.0,
                                     duty: float = 0.5) -> float:
        """Physical backing for the GA's ``pdn_alignment`` gene.

        ``alignment`` in [0, 1] interpolates the burst period from far
        off-resonance (0) to exactly on-resonance (1); the returned value
        is the induced droop normalised by the on-resonance worst case —
        i.e. a droop intensity on the same [0, 1] scale the stress
        profiles use.
        """
        if not 0.0 <= alignment <= 1.0:
            raise ConfigurationError("alignment must be in [0, 1]")
        worst_period = self.worst_case_period_s(duty=duty)
        off_period = worst_period * 8.0
        period = off_period + (worst_period - off_period) * alignment
        waveform = BurstWaveform(burst_current_a=burst_current_a,
                                 period_s=period, duty=duty)
        worst = self.droop_v(BurstWaveform(
            burst_current_a=burst_current_a, period_s=worst_period,
            duty=duty))
        if worst <= 0:
            return 0.0
        return min(1.0, self.droop_v(waveform) / worst)

    def impedance_profile(self, frequencies_hz: Sequence[float],
                          ) -> List[Tuple[float, float]]:
        """(frequency, |Z|) rows for plotting the PDN profile."""
        return [(f, self.params.impedance_ohm(f)) for f in frequencies_hz]
