"""Power and energy models for cores and DRAM.

Three models the rest of the stack relies on:

* :class:`CorePowerModel` — classical CMOS power: dynamic ``C·V²·f·a``
  plus voltage/temperature-dependent leakage.  Reproduces Section 6.D's
  arithmetic (50 % frequency at −30 % voltage ⇒ ~75 % less power and
  ~50 % less energy for the same work).
* :class:`DramPowerModel` — background + activity + refresh power, with the
  refresh share calibrated to Section 6.B (9 % of a 2 Gb device's power,
  >34 % projected for 32 Gb) and refresh power inversely proportional to
  the refresh interval.
* :func:`energy_for_work` — energy to complete a fixed amount of work at an
  operating point, the quantity SLAs and the TCO tool ultimately price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S, OperatingPoint
from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class CorePowerModel:
    """CMOS core power: ``P = C_eff·V²·f·activity + leakage(V, T)``.

    Parameters
    ----------
    effective_capacitance_f:
        Switched capacitance per cycle (farads); sets the dynamic scale.
    leakage_at_nominal_w:
        Leakage power at ``nominal_voltage_v`` and ``reference_temp_c``.
    nominal_voltage_v:
        Voltage at which ``leakage_at_nominal_w`` is specified.
    voltage_leakage_exponent:
        Exponential sensitivity of leakage to voltage (per volt).
    temp_leakage_exponent:
        Exponential sensitivity of leakage to temperature (per °C).
    reference_temp_c:
        Temperature at which leakage is specified.
    """

    effective_capacitance_f: float = 1.0e-9
    leakage_at_nominal_w: float = 2.0
    nominal_voltage_v: float = 1.0
    voltage_leakage_exponent: float = 3.0
    temp_leakage_exponent: float = 0.02
    reference_temp_c: float = 50.0

    def dynamic_power_w(self, point: OperatingPoint,
                        activity: float = 1.0) -> float:
        """Dynamic (switching) power at an operating point."""
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError("activity must be in [0, 1]")
        return (self.effective_capacitance_f * point.voltage_v ** 2
                * point.frequency_hz * activity)

    def leakage_power_w(self, point: OperatingPoint,
                        temperature_c: float = 50.0) -> float:
        """Static (leakage) power at an operating point and temperature."""
        v_term = math.exp(self.voltage_leakage_exponent
                          * (point.voltage_v - self.nominal_voltage_v))
        t_term = math.exp(self.temp_leakage_exponent
                          * (temperature_c - self.reference_temp_c))
        return self.leakage_at_nominal_w * v_term * t_term

    def total_power_w(self, point: OperatingPoint, activity: float = 1.0,
                      temperature_c: float = 50.0) -> float:
        """Dynamic plus leakage power."""
        return (self.dynamic_power_w(point, activity)
                + self.leakage_power_w(point, temperature_c))

    def relative_dynamic_power(self, point: OperatingPoint,
                               nominal: OperatingPoint) -> float:
        """Dynamic power of ``point`` relative to ``nominal`` (V²f ratio)."""
        return ((point.voltage_v / nominal.voltage_v) ** 2
                * (point.frequency_hz / nominal.frequency_hz))

    def relative_dynamic_energy(self, point: OperatingPoint,
                                nominal: OperatingPoint) -> float:
        """Dynamic energy per unit work relative to nominal (V² ratio).

        Work is cycle-counted, so the frequency cancels: running slower
        takes proportionally longer at proportionally lower power.
        """
        return (point.voltage_v / nominal.voltage_v) ** 2


def energy_for_work(model: CorePowerModel, point: OperatingPoint,
                    cycles: float, activity: float = 1.0,
                    temperature_c: float = 50.0) -> float:
    """Energy (joules) to execute ``cycles`` of work at ``point``.

    Leakage accrues over the (frequency-dependent) execution time, which is
    why aggressive undervolting at *reduced* frequency can still lose to a
    race-to-idle strategy when leakage dominates — one of the trade-offs the
    Predictor learns.
    """
    if cycles < 0:
        raise ConfigurationError("cycles must be non-negative")
    duration_s = cycles / point.frequency_hz
    return model.total_power_w(point, activity, temperature_c) * duration_s


@dataclass(frozen=True)
class DramPowerModel:
    """DRAM device power: background + activity + refresh.

    Calibrated to the paper's Section 6.B numbers via two anchor points:
    the refresh share of total device power is 9 % at 2 Gb density and
    ≈34 % at 32 Gb (at nominal 64 ms refresh).  Refresh power grows
    linearly with density (every row must be refreshed each interval, per
    RAIDR [26]) while non-refresh power grows sub-linearly
    (``density^0.4``), which reproduces both anchors.
    """

    density_gbit: float = 2.0
    #: Non-refresh (background + activity) power of a 2 Gb device in watts.
    base_power_2gbit_w: float = 0.30
    #: Sub-linear scaling exponent of non-refresh power with density.
    base_power_exponent: float = 0.4
    #: Refresh power coefficient (watts per Gbit at nominal refresh),
    #: solved from the 9 % anchor: r·2 / (r·2 + base) = 0.09.
    refresh_power_per_gbit_w: float = 0.30 * 0.09 / (0.91 * 2.0)

    def __post_init__(self) -> None:
        if self.density_gbit <= 0:
            raise ConfigurationError("density must be positive")

    def non_refresh_power_w(self) -> float:
        """Background plus activity power of the device."""
        return (self.base_power_2gbit_w
                * (self.density_gbit / 2.0) ** self.base_power_exponent)

    def refresh_power_w(self,
                        refresh_interval_s: float = NOMINAL_REFRESH_INTERVAL_S,
                        ) -> float:
        """Refresh power at a given interval (inverse in the interval)."""
        if refresh_interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        nominal = self.refresh_power_per_gbit_w * self.density_gbit
        return nominal * (NOMINAL_REFRESH_INTERVAL_S / refresh_interval_s)

    def total_power_w(self,
                      refresh_interval_s: float = NOMINAL_REFRESH_INTERVAL_S,
                      ) -> float:
        """Total device power at a refresh interval."""
        return self.non_refresh_power_w() + self.refresh_power_w(refresh_interval_s)

    def refresh_share(self,
                      refresh_interval_s: float = NOMINAL_REFRESH_INTERVAL_S,
                      ) -> float:
        """Fraction of total device power spent on refresh."""
        total = self.total_power_w(refresh_interval_s)
        return self.refresh_power_w(refresh_interval_s) / total

    def refresh_saving_w(self, relaxed_interval_s: float) -> float:
        """Power saved by relaxing refresh from nominal to the given interval."""
        return (self.refresh_power_w(NOMINAL_REFRESH_INTERVAL_S)
                - self.refresh_power_w(relaxed_interval_s))

    def at_density(self, density_gbit: float) -> "DramPowerModel":
        """The same model for a different device density."""
        return DramPowerModel(
            density_gbit=density_gbit,
            base_power_2gbit_w=self.base_power_2gbit_w,
            base_power_exponent=self.base_power_exponent,
            refresh_power_per_gbit_w=self.refresh_power_per_gbit_w,
        )
