"""First-order thermal model.

Temperature matters twice in the UniServer stack: leakage power grows
exponentially with it, and DRAM retention time roughly halves for every
10 °C — which is why the paper stresses that its refresh experiments ran in
an *air-conditioned server room* and why the HealthLog records sensor
readings alongside errors.

The model is a single-node thermal RC: junction temperature relaxes
exponentially toward ``ambient + R_th · P`` with time constant ``tau``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.exceptions import ConfigurationError


@dataclass
class ThermalModel:
    """Single-node thermal RC model of a component.

    Parameters
    ----------
    ambient_c:
        Ambient (room) temperature in °C; the air-conditioned server room
        of the paper's DRAM experiments sits around 25 °C.
    thermal_resistance_c_per_w:
        Steady-state temperature rise per watt of dissipated power.
    time_constant_s:
        Thermal RC time constant.
    """

    ambient_c: float = 25.0
    thermal_resistance_c_per_w: float = 0.8
    time_constant_s: float = 30.0

    def __post_init__(self) -> None:
        if self.thermal_resistance_c_per_w < 0:
            raise ConfigurationError("thermal resistance must be non-negative")
        if self.time_constant_s <= 0:
            raise ConfigurationError("time constant must be positive")
        self._temperature_c = self.ambient_c

    @property
    def temperature_c(self) -> float:
        """Current junction temperature."""
        return self._temperature_c

    def state_dict(self) -> dict:
        """Serializable mutable state (the junction temperature)."""
        return {"temperature_c": self._temperature_c}

    def load_state_dict(self, state: dict) -> None:
        """Restore the temperature saved by :meth:`state_dict`."""
        self._temperature_c = float(state["temperature_c"])

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature while dissipating ``power_w``."""
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        return self.ambient_c + self.thermal_resistance_c_per_w * power_w

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the model ``dt_s`` seconds at constant ``power_w``.

        Returns the new temperature.  Uses the exact exponential solution
        of the first-order ODE so large steps stay stable.
        """
        if dt_s < 0:
            raise ConfigurationError("dt must be non-negative")
        target = self.steady_state_c(power_w)
        decay = math.exp(-dt_s / self.time_constant_s)
        self._temperature_c = target + (self._temperature_c - target) * decay
        return self._temperature_c

    def reset(self, temperature_c: float | None = None) -> None:
        """Reset to a given temperature (ambient by default)."""
        self._temperature_c = (
            self.ambient_c if temperature_c is None else temperature_c
        )


def retention_temperature_factor(temperature_c: float,
                                 reference_c: float = 45.0,
                                 halving_c: float = 10.0) -> float:
    """DRAM retention-time multiplier at a device temperature.

    Retention roughly halves per ``halving_c`` degrees above the reference
    (Liu et al. [32]); below the reference it doubles correspondingly.
    """
    if halving_c <= 0:
        raise ConfigurationError("halving interval must be positive")
    return 2.0 ** ((reference_c - temperature_c) / halving_c)
