"""Retention-aware multirate refresh (RAIDR-style row binning).

The paper cites RAIDR [26] (Liu et al., ISCA 2013) as the source of its
refresh-power argument.  The uniform relaxation of Section 6.B leaves
savings on the table: almost all rows retain data for many seconds, and
only a tiny weak tail needs frequent refresh.  RAIDR bins rows by
profiled retention time and refreshes each bin at its own rate.

This module implements that mechanism on top of the statistical
retention model:

* :func:`bin_rows` — expected row population per retention bin, from
  the per-cell lognormal and the cells-per-row geometry (a row is as
  weak as its weakest cell);
* :class:`MultirateRefresh` — refresh-power and BER accounting for a
  binned scheme, comparable head-to-head against uniform refresh.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.eop import NOMINAL_REFRESH_INTERVAL_S
from ..core.exceptions import ConfigurationError
from .dram import Dimm, RetentionModel


@dataclass(frozen=True)
class RefreshBin:
    """One retention bin: rows refreshed every ``interval_s``."""

    interval_s: float
    #: Fraction of rows assigned to this bin.
    row_fraction: float

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError("bin interval must be positive")
        if not 0.0 <= self.row_fraction <= 1.0:
            raise ConfigurationError("row fraction must be in [0, 1]")


def row_failure_probability(retention: RetentionModel, interval_s: float,
                            cells_per_row: int,
                            temperature_c: Optional[float] = None) -> float:
    """Probability a row has ≥1 cell with retention below the interval.

    A row must be refreshed at the rate of its weakest cell; with
    per-cell BER ``p`` and independent cells, P(row weak) = 1-(1-p)^n.
    """
    if cells_per_row < 1:
        raise ConfigurationError("cells_per_row must be >= 1")
    p = retention.ber(interval_s, temperature_c)
    if p <= 0:
        return 0.0
    # log1p for numerical stability at tiny p.
    return -math.expm1(cells_per_row * math.log1p(-min(p, 1.0 - 1e-15)))


def bin_rows(retention: RetentionModel,
             intervals_s: Sequence[float] = (0.064, 0.256, 1.0, 4.0),
             cells_per_row: int = 8192,
             temperature_c: Optional[float] = None) -> List[RefreshBin]:
    """Assign row population to retention bins.

    ``intervals_s`` must ascend; a row lands in the *longest* interval it
    can safely sustain (its weakest cell's retention exceeds it), with
    rows too weak even for the shortest interval folded into that first
    bin (they would be remapped/ECC-handled in a real system).
    """
    intervals = sorted(intervals_s)
    if intervals[0] > NOMINAL_REFRESH_INTERVAL_S + 1e-12:
        raise ConfigurationError(
            "the shortest bin must be at most the nominal interval"
        )
    # P(row cannot sustain interval i) is monotone increasing in i.
    weak_at = [
        row_failure_probability(retention, interval, cells_per_row,
                                temperature_c)
        for interval in intervals
    ]
    bins = []
    for i, interval in enumerate(intervals):
        if i == len(intervals) - 1:
            fraction = 1.0 - weak_at[i]
        else:
            fraction = weak_at[i + 1] - (weak_at[i] if i > 0 else 0.0)
        if i == 0:
            # Fold the hopeless rows into the fastest bin.
            fraction += weak_at[0]
        bins.append(RefreshBin(interval_s=interval,
                               row_fraction=max(0.0, fraction)))
    total = sum(b.row_fraction for b in bins)
    if total > 0:
        bins = [RefreshBin(b.interval_s, b.row_fraction / total)
                for b in bins]
    return bins


class MultirateRefresh:
    """Refresh-power accounting for a binned refresh scheme."""

    def __init__(self, dimm: Dimm, bins: Sequence[RefreshBin]) -> None:
        if not bins:
            raise ConfigurationError("need at least one bin")
        if abs(sum(b.row_fraction for b in bins) - 1.0) > 1e-6:
            raise ConfigurationError("bin fractions must sum to 1")
        self.dimm = dimm
        self.bins = list(bins)

    def refresh_power_w(self) -> float:
        """Total refresh power: each bin refreshed at its own rate.

        Refresh power is proportional to refresh operations per second,
        i.e. ``row_fraction / interval`` summed over bins, normalised to
        the all-rows-at-nominal case.
        """
        model = self.dimm.power_model()
        nominal_power = (model.refresh_power_w(NOMINAL_REFRESH_INTERVAL_S)
                         * self.dimm.n_devices)
        rate_fraction = sum(
            b.row_fraction * NOMINAL_REFRESH_INTERVAL_S / b.interval_s
            for b in self.bins
        )
        return nominal_power * rate_fraction

    def saving_vs_nominal(self) -> float:
        """Fraction of nominal refresh power saved by binning."""
        model = self.dimm.power_model()
        nominal_power = (model.refresh_power_w(NOMINAL_REFRESH_INTERVAL_S)
                         * self.dimm.n_devices)
        if nominal_power <= 0:
            return 0.0
        return 1.0 - self.refresh_power_w() / nominal_power

    def saving_vs_uniform(self, uniform_interval_s: float) -> float:
        """Refresh-power saving relative to a uniform relaxed interval.

        A fair comparison requires the uniform scheme to be *safe*, i.e.
        its interval can be no longer than the shortest bin that has any
        weak rows — in practice the nominal 64 ms, since some rows always
        need it.  Positive values mean binning wins.
        """
        if uniform_interval_s <= 0:
            raise ConfigurationError("interval must be positive")
        model = self.dimm.power_model()
        uniform_power = (model.refresh_power_w(uniform_interval_s)
                         * self.dimm.n_devices)
        if uniform_power <= 0:
            return 0.0
        return 1.0 - self.refresh_power_w() / uniform_power

    def residual_ber(self, retention: RetentionModel,
                     temperature_c: Optional[float] = None) -> float:
        """Cell BER remaining after binning (mis-binned weak cells).

        Only the rows folded into the fastest bin beyond their ability
        contribute; with the fastest bin at nominal this is the nominal
        BER — effectively zero.
        """
        fastest = min(b.interval_s for b in self.bins)
        return retention.ber(fastest, temperature_c)


def raidr_comparison(dimm: Dimm,
                     intervals_s: Sequence[float] = (0.064, 0.256, 1.0, 4.0),
                     temperature_c: Optional[float] = None,
                     ) -> Tuple[List[RefreshBin], float, float]:
    """Convenience: (bins, saving vs nominal, residual BER)."""
    retention = dimm.retention
    bins = bin_rows(retention, intervals_s,
                    temperature_c=temperature_c)
    scheme = MultirateRefresh(dimm, bins)
    return bins, scheme.saving_vs_nominal(), scheme.residual_ber(
        retention, temperature_c)
