"""CPU core model: Vmin, voltage droop, and undervolting crash behaviour.

This is the silicon substitute for the paper's undervolted Intel parts
(Table 2).  Each core has a *static* minimum operational voltage composed
of a chip-wide base plus a core-specific deviation; a running workload
lowers the *effective* supply through di/dt voltage droop, so the observed
crash voltage is::

    V_crash(core, workload) =
        (vmin_base + delta_core · sens(workload) + aging_drift)
        / (1 - droop_span · droop_intensity(workload))

* ``delta_core`` is the core's static Vmin deviation (process variation).
* ``sens(workload)`` in [0, 1] is how strongly the workload exposes
  core-to-core differences — control-heavy codes exercise fewer critical
  paths and expose less variation than wide numeric codes, which is why
  the paper measures core-to-core variation from 0 % up to 8 % depending
  on the benchmark.
* ``droop_span`` is the chip's worst-case supply droop fraction, reached
  when a workload's droop intensity is 1.

Frequency scaling lowers Vmin along a linear timing-slack model, enabling
the EOP exploration the rest of the stack performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError, MachineCrash
from ..workloads.base import StressProfile, Workload
from .aging import AgingModel


@dataclass(frozen=True)
class CoreParameters:
    """Electrical parameters of one core.

    Parameters
    ----------
    vmin_base_v:
        Chip-wide static Vmin at maximum frequency (volts).
    delta_v:
        This core's Vmin deviation from the chip base (volts, signed).
    droop_span:
        Worst-case fractional supply droop of the chip's power-delivery
        network (reached at droop intensity 1).
    sensitivity_floor:
        Workload core-sensitivity below this value is not expressed at all
        by this design (measurement/critical-path masking); the remaining
        range is rescaled to [0, 1].
    frequency_vmin_slope:
        Fractional Vmin reduction when frequency halves (timing slack).
    max_frequency_hz:
        The frequency at which ``vmin_base_v`` holds.
    run_noise_sigma_v:
        Run-to-run Gaussian noise of the observed crash voltage (volts),
        modelling temperature wander and sporadic droop alignment.
    """

    vmin_base_v: float
    delta_v: float
    droop_span: float
    max_frequency_hz: float
    sensitivity_floor: float = 0.0
    frequency_vmin_slope: float = 0.25
    run_noise_sigma_v: float = 0.002

    def __post_init__(self) -> None:
        if self.vmin_base_v <= 0:
            raise ConfigurationError("vmin_base_v must be positive")
        if not 0.0 <= self.droop_span < 0.5:
            raise ConfigurationError("droop_span must be in [0, 0.5)")
        if not 0.0 <= self.sensitivity_floor < 1.0:
            raise ConfigurationError("sensitivity_floor must be in [0, 1)")
        if self.max_frequency_hz <= 0:
            raise ConfigurationError("max_frequency_hz must be positive")
        if self.run_noise_sigma_v < 0:
            raise ConfigurationError("run noise must be non-negative")


class CoreModel:
    """One CPU core with a workload-dependent crash voltage.

    The model is deterministic given its seed; run-to-run noise comes from
    a private :class:`numpy.random.Generator`.
    """

    def __init__(self, core_id: int, params: CoreParameters,
                 seed: int = 0, aging: Optional[AgingModel] = None) -> None:
        if core_id < 0:
            raise ConfigurationError("core_id must be non-negative")
        self.core_id = core_id
        self.params = params
        self.aging = aging or AgingModel(
            nominal_voltage_v=params.vmin_base_v * 1.2
        )
        self._rng = np.random.default_rng(seed)
        self._isolated = False

    # -- state -------------------------------------------------------------

    @property
    def isolated(self) -> bool:
        """Whether the hypervisor has fenced this core off."""
        return self._isolated

    def isolate(self) -> None:
        """Fence the core off from scheduling (hypervisor isolation)."""
        self._isolated = True

    def deisolate(self) -> None:
        """Return the core to service (e.g. after re-characterisation)."""
        self._isolated = False

    # -- physics -----------------------------------------------------------

    def expressed_sensitivity(self, profile: StressProfile) -> float:
        """Core-sensitivity after applying the design's masking floor."""
        floor = self.params.sensitivity_floor
        raw = profile.core_sensitivity
        if raw <= floor:
            return 0.0
        return (raw - floor) / (1.0 - floor)

    def static_vmin_v(self, frequency_hz: Optional[float] = None) -> float:
        """Static Vmin of this core at a frequency (no droop, no noise)."""
        p = self.params
        freq = p.max_frequency_hz if frequency_hz is None else frequency_hz
        if freq <= 0 or freq > p.max_frequency_hz * 1.001:
            raise ConfigurationError(
                f"frequency {freq} Hz outside (0, fmax] for core {self.core_id}"
            )
        slack = 1.0 - freq / p.max_frequency_hz
        relief = p.frequency_vmin_slope * 2.0 * slack  # halving => full slope
        base = p.vmin_base_v * max(0.5, 1.0 - relief)
        return base + self.aging.vmin_drift_v()

    def crash_voltage_v(self, profile: StressProfile,
                        frequency_hz: Optional[float] = None) -> float:
        """Expected crash voltage for a workload profile (no run noise)."""
        p = self.params
        vmin = (self.static_vmin_v(frequency_hz)
                + p.delta_v * self.expressed_sensitivity(profile))
        droop = p.droop_span * profile.droop_intensity
        return vmin / (1.0 - droop)

    def sample_crash_voltage_v(self, profile: StressProfile,
                               frequency_hz: Optional[float] = None) -> float:
        """One run's observed crash voltage (expected value + run noise)."""
        noise = self._rng.normal(0.0, self.params.run_noise_sigma_v)
        return self.crash_voltage_v(profile, frequency_hz) + noise

    def crash_probability(self, point: OperatingPoint,
                          profile: StressProfile) -> float:
        """Probability a run at ``point`` crashes (Gaussian noise CDF).

        This is the ground-truth quantity the Predictor daemon estimates
        from observations.
        """
        from scipy.stats import norm

        expected = self.crash_voltage_v(profile, point.frequency_hz)
        sigma = max(self.params.run_noise_sigma_v, 1e-6)
        return float(norm.cdf((expected - point.voltage_v) / sigma))

    def check_run(self, point: OperatingPoint, profile: StressProfile,
                  raise_on_crash: bool = False) -> bool:
        """Execute one run; returns ``True`` if the core survived.

        With ``raise_on_crash`` the simulated crash surfaces as
        :class:`MachineCrash`, mirroring how a real characterisation run
        ends (machine unresponsive, reboot required).
        """
        crash_v = self.sample_crash_voltage_v(profile, point.frequency_hz)
        survived = point.voltage_v >= crash_v
        if not survived and raise_on_crash:
            raise MachineCrash(
                f"core {self.core_id} crashed at {point.describe()} "
                f"(crash voltage {crash_v:.3f} V)",
                component=f"core{self.core_id}",
            )
        return survived

    def age(self, dt_s: float, voltage_v: float, temperature_c: float) -> None:
        """Accrue aging stress for ``dt_s`` seconds of operation."""
        self.aging.accrue(dt_s, voltage_v, temperature_c)

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable mutable state: RNG, isolation flag, aging stress."""
        return {
            "rng": self._rng.bit_generator.state,
            "isolated": self._isolated,
            "effective_stress_s": self.aging._effective_stress_s,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]
        self._isolated = bool(state["isolated"])
        self.aging._effective_stress_s = float(state["effective_stress_s"])
