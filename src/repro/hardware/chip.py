"""Chip (SoC) assembly and the catalog of modelled parts.

A :class:`ChipModel` composes cores, a cache hierarchy, a power model, a
thermal node and sensors into one undervoltable processor.  The catalog
provides the two parts characterised in the paper's Table 2 — the low-end
Intel Core i5-4200U and the high-end Intel Core i7-3970X — calibrated so a
full characterisation campaign reproduces the measured ranges, plus an
ARM 64-bit Server-on-Chip standing in for the UniServer main chassis.

Calibration notes (see DESIGN.md §6): crash voltages derive from a
chip-wide static Vmin, symmetric per-core deviations and workload droop.
The SPEC-like suite spans droop intensities ≈0.05–0.8 and core
sensitivities ≈0.45–0.9, leaving headroom above for stress viruses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError
from ..workloads.base import Workload
from .cache import CacheModel, CacheParameters, CacheRunResult
from .core_model import CoreModel, CoreParameters
from .power import CorePowerModel
from .sensors import PerfCounters, SensorBlock, SensorReadings
from .thermal import ThermalModel
from .variation import ChipSample


@dataclass(frozen=True)
class ChipSpec:
    """Static description of a chip design plus one specimen's silicon.

    ``core_deltas_v`` pins the per-core Vmin deviations of the *specific
    unit under test* (the paper characterises individual machines);
    population studies instead derive specs from
    :class:`~repro.hardware.variation.ChipSample` via
    :func:`spec_from_variation`.
    """

    name: str
    nominal: OperatingPoint
    vmin_base_v: float
    core_deltas_v: Tuple[float, ...]
    droop_span: float
    sensitivity_floor: float = 0.0
    cache: CacheParameters = field(default_factory=CacheParameters)
    tdp_w: float = 15.0
    leakage_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.core_deltas_v:
            raise ConfigurationError("chip needs at least one core delta")
        if self.vmin_base_v >= self.nominal.voltage_v:
            raise ConfigurationError(
                "static Vmin must be below the nominal voltage"
            )

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return len(self.core_deltas_v)


@dataclass(frozen=True)
class RunOutcome:
    """Result of one benchmark run on one core."""

    survived: bool
    crash_voltage_v: float
    cache_result: CacheRunResult
    power_w: float
    counters: Optional[PerfCounters] = None


class ChipModel:
    """One undervoltable processor: cores + caches + power/thermal/sensors."""

    def __init__(self, spec: ChipSpec, seed: int = 0) -> None:
        self.spec = spec
        self.cores: List[CoreModel] = []
        for core_id, delta in enumerate(spec.core_deltas_v):
            params = CoreParameters(
                vmin_base_v=spec.vmin_base_v,
                delta_v=delta,
                droop_span=spec.droop_span,
                sensitivity_floor=spec.sensitivity_floor,
                max_frequency_hz=spec.nominal.frequency_hz,
            )
            self.cores.append(CoreModel(core_id, params, seed=seed + core_id))
        self.cache = CacheModel(spec.cache, seed=seed + 1000)
        dynamic_w = spec.tdp_w * (1.0 - spec.leakage_fraction)
        ceff = dynamic_w / (
            spec.nominal.voltage_v ** 2 * spec.nominal.frequency_hz
        )
        self.power = CorePowerModel(
            effective_capacitance_f=ceff,
            leakage_at_nominal_w=spec.tdp_w * spec.leakage_fraction,
            nominal_voltage_v=spec.nominal.voltage_v,
        )
        self.thermal = ThermalModel()
        self.sensors = SensorBlock(seed=seed + 2000)

    @property
    def name(self) -> str:
        """The chip's catalog name."""
        return self.spec.name

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return len(self.cores)

    def core(self, core_id: int) -> CoreModel:
        """One core model by id."""
        if not 0 <= core_id < len(self.cores):
            raise ConfigurationError(
                f"core {core_id} out of range for {self.name}"
            )
        return self.cores[core_id]

    def active_cores(self) -> List[CoreModel]:
        """Cores not isolated by the hypervisor."""
        return [c for c in self.cores if not c.isolated]

    def run_benchmark(self, core_id: int, workload: Workload,
                      point: OperatingPoint,
                      with_counters: bool = False) -> RunOutcome:
        """Execute one run of ``workload`` on ``core_id`` at ``point``.

        A run either survives (possibly with corrected cache errors — the
        Table 2 ECC counts) or crashes when the supply dips below the
        core's workload-dependent crash voltage.
        """
        core = self.core(core_id)
        profile = workload.profile
        crash_v = core.sample_crash_voltage_v(profile, point.frequency_hz)
        survived = point.voltage_v >= crash_v
        cache_result = self.cache.run(point.voltage_v, crash_v, profile)
        power_w = self.power.total_power_w(
            point, activity=profile.activity_factor,
            temperature_c=self.thermal.temperature_c,
        )
        counters = None
        if with_counters and survived:
            counters = self.sensors.count_run(workload, point.frequency_hz)
        return RunOutcome(
            survived=survived,
            crash_voltage_v=crash_v,
            cache_result=cache_result,
            power_w=power_w,
            counters=counters,
        )

    def state_dict(self) -> dict:
        """Serializable mutable state of the whole chip."""
        return {
            "cores": [core.state_dict() for core in self.cores],
            "cache": self.cache.state_dict(),
            "sensors": self.sensors.state_dict(),
            "thermal": self.thermal.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        saved_cores = state["cores"]
        if len(saved_cores) != len(self.cores):
            raise ConfigurationError(
                f"chip restore mismatch: snapshot has {len(saved_cores)} "
                f"cores, chip has {len(self.cores)}")
        for core, core_state in zip(self.cores, saved_cores):
            core.load_state_dict(core_state)
        self.cache.load_state_dict(state["cache"])
        self.sensors.load_state_dict(state["sensors"])
        self.thermal.load_state_dict(state["thermal"])

    def read_sensors(self, timestamp: float, point: OperatingPoint,
                     activity: float = 0.5) -> SensorReadings:
        """Snapshot the chip's sensors at an operating point."""
        power_w = self.power.total_power_w(
            point, activity=activity,
            temperature_c=self.thermal.temperature_c,
        )
        return self.sensors.read(
            timestamp, point, self.thermal.temperature_c, power_w
        )


# ---------------------------------------------------------------------------
# Catalog: the parts the paper characterises, plus the UniServer chassis.
# ---------------------------------------------------------------------------

def intel_i5_4200u_spec() -> ChipSpec:
    """The low-end part of Table 2: 2 cores, 0.844 V @ 2.6 GHz.

    Calibration targets: benchmark-mean crash offsets −10 %…−11.2 %,
    core-to-core variation 0 %…2.7 %, cache ECC errors 1…17 with onset
    ≈15 mV above the crash point.
    """
    return ChipSpec(
        name="Intel Core i5-4200U",
        nominal=OperatingPoint(0.844, 2.6e9),
        vmin_base_v=0.74880,
        core_deltas_v=(-0.01373, 0.01373),
        droop_span=0.01777,
        sensitivity_floor=0.45,
        cache=CacheParameters(ecc_reporting=True),
        tdp_w=15.0,
    )


def intel_i7_3970x_spec() -> ChipSpec:
    """The high-end part of Table 2: 6 cores, 1.365 V @ 4.0 GHz.

    Calibration targets: benchmark-mean crash offsets −8.4 %…−15.4 %,
    core-to-core variation 3.7 %…8 %, no ECC visibility.
    """
    return ChipSpec(
        name="Intel Core i7-3970X",
        nominal=OperatingPoint(1.365, 4.0e9),
        vmin_base_v=1.1493,
        core_deltas_v=(-0.0558, -0.0335, -0.0112, 0.0112, 0.0335, 0.0558),
        droop_span=0.10,
        sensitivity_floor=0.0,
        cache=CacheParameters(ecc_reporting=False),
        tdp_w=150.0,
    )


def arm_server_soc_spec(n_cores: int = 8) -> ChipSpec:
    """A 64-bit ARM Server-on-Chip, the UniServer main chassis stand-in.

    Loosely X-Gene-class: 8 cores at 2.4 GHz, 0.98 V nominal, with the
    >30 % combined margins reported for 28 nm ARM parts [4].
    """
    if n_cores < 1:
        raise ConfigurationError("SoC needs at least one core")
    span = 0.060
    step = 2 * span / max(1, n_cores - 1)
    deltas = tuple(
        round(-span + i * step, 5) if n_cores > 1 else 0.0
        for i in range(n_cores)
    )
    return ChipSpec(
        name="ARM Server-on-Chip",
        nominal=OperatingPoint(0.98, 2.4e9),
        vmin_base_v=0.72,
        core_deltas_v=tuple(d * 0.5 for d in deltas),
        droop_span=0.08,
        sensitivity_floor=0.1,
        cache=CacheParameters(ecc_reporting=True),
        tdp_w=45.0,
    )


def spec_from_variation(base: ChipSpec, sample: ChipSample) -> ChipSpec:
    """Instantiate a design for one sampled manufactured specimen.

    The variation sample's per-core Vmin factors become per-core deltas on
    the base design, enabling population-scale studies (Figure 1, yield).
    """
    if sample.n_cores != base.n_cores:
        raise ConfigurationError(
            f"variation sample has {sample.n_cores} cores, "
            f"spec {base.name!r} has {base.n_cores}"
        )
    mean_factor = sum(sample.core_vmin_factor) / sample.n_cores
    vmin_base = base.vmin_base_v * mean_factor
    deltas = tuple(
        base.vmin_base_v * (f - mean_factor) + d
        for f, d in zip(sample.core_vmin_factor, base.core_deltas_v)
    )
    if vmin_base >= base.nominal.voltage_v:
        # A hopelessly weak specimen: clamp just below nominal so the
        # model stays constructible; binning will discard it anyway.
        vmin_base = base.nominal.voltage_v * 0.999
    return replace(base, name=f"{base.name} #chip{sample.chip_id}",
                   vmin_base_v=vmin_base, core_deltas_v=deltas)
