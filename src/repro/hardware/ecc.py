"""ECC scheme models: SECDED(72, 64) bit-accurate, SEC-DAEC and BCH.

Caches and ECC DIMMs in the paper rely on Single-Error-Correct,
Double-Error-Detect codes: the cache ECC errors counted in Table 2 are
SECDED corrections, and Section 6.B notes classical SECDED handles raw bit
error rates up to ~1e-6.

Two layers live here:

* a real, bit-accurate implementation of the standard (72, 64) extended
  Hamming code used by server memory systems (64 data bits, 7 Hamming
  parity bits plus 1 overall parity bit; single-bit errors corrected,
  double-bit errors detected as uncorrectable); and
* analytic :class:`EccScheme` models for the heterogeneous-reliability
  memory (HRM) tiers — SECDED, SEC-DAEC (adjacent-double correction for
  the spatially-correlated retention failures relaxed refresh produces)
  and shortened BCH codes (t = 2, 3) — each carrying its parity
  overhead, correction/detection coverage and decode energy per access,
  so an :class:`EccSelector` can pick the cheapest scheme that meets a
  tier's uncorrectable-error target at a given raw BER.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError

DATA_BITS = 64
PARITY_BITS = 7  # Hamming parity for 64 data bits (positions 1, 2, 4, ..., 64)
CODEWORD_BITS = 72  # 64 data + 7 Hamming parity + 1 overall parity


class DecodeStatus(Enum):
    """Outcome classes for a SECDED decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one 72-bit codeword.

    ``data`` is the (possibly corrected) 64-bit payload; for uncorrectable
    words it is the best-effort raw payload and must not be trusted.
    ``flipped_bit`` is the corrected codeword bit position (0-based within
    the 72-bit word) for ``CORRECTED`` results, else ``None``.
    """

    status: DecodeStatus
    data: int
    flipped_bit: int = -1


def _hamming_positions() -> Tuple[List[int], List[int]]:
    """Positions (1-based, within the 71-bit Hamming word) of parity/data.

    Standard Hamming layout: positions that are powers of two carry parity;
    the rest carry data bits in order.
    """
    parity_positions = [1 << i for i in range(PARITY_BITS)]
    data_positions = [
        p for p in range(1, 2 ** PARITY_BITS)
        if p not in parity_positions
    ][:DATA_BITS]
    return parity_positions, data_positions


_PARITY_POSITIONS, _DATA_POSITIONS = _hamming_positions()


def encode(data: int) -> int:
    """Encode a 64-bit integer into a 72-bit SECDED codeword.

    Bit layout of the returned integer: bits 0..70 are the Hamming word
    (1-based positions 1..71 map to bits 0..70), bit 71 is the overall
    parity bit.
    """
    if not 0 <= data < (1 << DATA_BITS):
        raise ConfigurationError("data must be an unsigned 64-bit integer")

    word = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (data >> i) & 1:
            word |= 1 << (pos - 1)

    for parity_pos in _PARITY_POSITIONS:
        parity = 0
        # The Hamming word occupies positions 1..71; the overall parity
        # bit (stored at position 72) is outside the Hamming code.
        for pos in range(1, CODEWORD_BITS):
            if pos & parity_pos and (word >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            word |= 1 << (parity_pos - 1)

    overall = bin(word).count("1") & 1
    if overall:
        word |= 1 << (CODEWORD_BITS - 1)
    return word


def _extract_data(word: int) -> int:
    """Pull the 64 data bits out of a (possibly corrupted) codeword."""
    data = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (word >> (pos - 1)) & 1:
            data |= 1 << i
    return data


def decode(codeword: int) -> DecodeResult:
    """Decode a 72-bit codeword, correcting single and detecting double errors.

    Returns a :class:`DecodeResult`; triple and higher errors may alias and
    are not guaranteed to be detected (a fundamental SECDED property the
    tests exercise explicitly).
    """
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ConfigurationError("codeword must be an unsigned 72-bit integer")

    syndrome = 0
    for parity_pos in _PARITY_POSITIONS:
        parity = 0
        # Positions 1..71 only: the overall parity bit at position 72
        # does not participate in the Hamming syndrome.
        for pos in range(1, CODEWORD_BITS):
            if pos & parity_pos and (codeword >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            syndrome |= parity_pos

    overall_parity = bin(codeword).count("1") & 1

    if syndrome == 0 and overall_parity == 0:
        return DecodeResult(DecodeStatus.CLEAN, _extract_data(codeword))

    if overall_parity == 1:
        # Odd number of flipped bits: assume exactly one and correct it.
        if syndrome == 0:
            # The overall parity bit itself flipped.
            corrected = codeword ^ (1 << (CODEWORD_BITS - 1))
            return DecodeResult(
                DecodeStatus.CORRECTED, _extract_data(corrected),
                flipped_bit=CODEWORD_BITS - 1,
            )
        if syndrome <= CODEWORD_BITS - 1:
            corrected = codeword ^ (1 << (syndrome - 1))
            return DecodeResult(
                DecodeStatus.CORRECTED, _extract_data(corrected),
                flipped_bit=syndrome - 1,
            )
        # Syndrome points outside the codeword: ≥3 odd errors aliased to an
        # invalid position — flag as uncorrectable rather than miscorrect.
        return DecodeResult(DecodeStatus.UNCORRECTABLE, _extract_data(codeword))

    # Even number of flips with non-zero syndrome: a double error.
    return DecodeResult(DecodeStatus.UNCORRECTABLE, _extract_data(codeword))


def inject_bit_flips(codeword: int, bit_positions: List[int]) -> int:
    """Flip the given codeword bit positions (0-based) and return the result."""
    for bit in bit_positions:
        if not 0 <= bit < CODEWORD_BITS:
            raise ConfigurationError(
                f"bit position {bit} outside 72-bit codeword"
            )
        codeword ^= 1 << bit
    return codeword


#: Raw bit-error-rate ceiling classical SECDED is quoted to handle in the
#: paper (Section 6.B, via ArchShield [27]).
SECDED_BER_CAPABILITY = 1e-6


def secded_word_failure_probability(raw_ber: float,
                                    word_bits: int = CODEWORD_BITS) -> float:
    """Probability a SECDED word sees ≥2 raw bit errors (uncorrectable).

    For independent bit errors at rate ``raw_ber``, P(uncorrectable) =
    1 − P(0 errors) − P(1 error).  Used by the DRAM characterisation to
    translate raw BERs into the uncorrectable-error exposure the paper
    reasons about.
    """
    if raw_ber < 0 or raw_ber > 1:
        raise ConfigurationError("raw_ber must be a probability")
    p0 = (1.0 - raw_ber) ** word_bits
    p1 = word_bits * raw_ber * (1.0 - raw_ber) ** (word_bits - 1)
    return max(0.0, 1.0 - p0 - p1)


# ---------------------------------------------------------------------------
# ECC scheme models for heterogeneous-reliability memory tiers
# ---------------------------------------------------------------------------

def _binom_pmf(k: int, n: int, p: float) -> float:
    """Binomial P(X = k) for n independent bit errors at rate p."""
    return math.comb(n, k) * p ** k * (1.0 - p) ** (n - k)


@dataclass(frozen=True)
class EccScheme:
    """Analytic model of one ECC scheme protecting a 64-bit data word.

    ``correct_random`` is the guaranteed random-error correction strength
    (t); ``correct_adjacent`` marks codes that additionally correct any
    *adjacent* double error (SEC-DAEC); ``detect`` is the guaranteed
    detection coverage.  ``energy_pj_per_access`` is the decoder energy
    per 64-bit access — the knob the selector trades against correction
    strength.
    """

    name: str
    data_bits: int
    parity_bits: int
    correct_random: int
    detect: int
    energy_pj_per_access: float
    correct_adjacent: bool = False

    def __post_init__(self) -> None:
        if self.data_bits < 1 or self.parity_bits < 1:
            raise ConfigurationError("scheme geometry must be positive")
        if self.correct_random < 0 or self.detect < self.correct_random:
            raise ConfigurationError(
                "detection coverage cannot be below correction strength"
            )
        if self.energy_pj_per_access <= 0:
            raise ConfigurationError("decode energy must be positive")

    @property
    def word_bits(self) -> int:
        """Total codeword length (data + parity)."""
        return self.data_bits + self.parity_bits

    @property
    def overhead_fraction(self) -> float:
        """Parity storage overhead relative to the data payload."""
        return self.parity_bits / self.data_bits

    def corrects(self, bit_positions: Sequence[int]) -> bool:
        """Whether this scheme corrects a specific error pattern.

        Patterns of up to ``correct_random`` errors always correct; a
        SEC-DAEC code additionally corrects any two errors in adjacent
        codeword positions.
        """
        positions = sorted(set(bit_positions))
        for bit in positions:
            if not 0 <= bit < self.word_bits:
                raise ConfigurationError(
                    f"bit position {bit} outside {self.word_bits}-bit codeword"
                )
        if len(positions) <= self.correct_random:
            return True
        if (self.correct_adjacent and len(positions) == 2
                and positions[1] - positions[0] == 1):
            return True
        return False

    def uncorrectable_word_probability(
            self, raw_ber: float,
            adjacent_fraction: Optional[float] = None) -> float:
        """P(an access word holds an error pattern this scheme cannot fix).

        Independent bit errors at ``raw_ber`` over the codeword: the upper
        binomial tail beyond ``correct_random`` (summed term-by-term —
        computing it as 1 − ΣP(k ≤ t) cancels catastrophically at the tiny
        BERs relaxed refresh produces), minus the adjacent-double patterns
        a SEC-DAEC decoder also fixes.  ``adjacent_fraction`` is the
        fraction of double-bit errors landing in adjacent cells; ``None``
        means errors place uniformly at random ((n−1)/C(n,2) of pairs are
        adjacent), while relaxed-refresh retention failures cluster and
        warrant a much larger value.
        """
        if raw_ber < 0 or raw_ber > 1:
            raise ConfigurationError("raw_ber must be a probability")
        n = self.word_bits
        tail = sum(
            _binom_pmf(k, n, raw_ber)
            for k in range(self.correct_random + 1, n + 1)
        )
        if self.correct_adjacent and self.correct_random < 2:
            if adjacent_fraction is None:
                adjacent_fraction = (n - 1) / math.comb(n, 2)
            if not 0.0 <= adjacent_fraction <= 1.0:
                raise ConfigurationError(
                    "adjacent_fraction must be in [0, 1]"
                )
            tail -= _binom_pmf(2, n, raw_ber) * adjacent_fraction
        return max(0.0, tail)

    def as_dict(self) -> dict:
        """Canonical-JSON-friendly description of the scheme."""
        return {
            "name": self.name,
            "data_bits": self.data_bits,
            "parity_bits": self.parity_bits,
            "correct_random": self.correct_random,
            "correct_adjacent": self.correct_adjacent,
            "detect": self.detect,
            "energy_pj_per_access": self.energy_pj_per_access,
        }


#: The bit-accurate code above, as a scheme model: (72, 64) extended
#: Hamming — corrects 1 random error, detects 2.
SECDED = EccScheme(
    name="secded", data_bits=64, parity_bits=8,
    correct_random=1, detect=2, energy_pj_per_access=2.2,
)

#: SEC-DAEC(73, 64): single-error-correct plus double-*adjacent*-error
#: correct — targets the spatially-correlated multi-cell upsets relaxed
#: refresh tends to produce, at a one-extra-parity-bit cost.
SEC_DAEC = EccScheme(
    name="sec-daec", data_bits=64, parity_bits=9,
    correct_random=1, detect=2, energy_pj_per_access=2.9,
    correct_adjacent=True,
)

#: Shortened BCH over GF(2^7) for 64 data bits, t = 2: (78, 64) with
#: 2·7 = 14 parity bits.  Double-error-correct, triple-error-detect.
BCH_DEC = EccScheme(
    name="bch-dec", data_bits=64, parity_bits=14,
    correct_random=2, detect=3, energy_pj_per_access=5.6,
)

#: Shortened BCH, t = 3: (85, 64) with 3·7 = 21 parity bits.
BCH_TEC = EccScheme(
    name="bch-tec", data_bits=64, parity_bits=21,
    correct_random=3, detect=4, energy_pj_per_access=8.8,
)

#: All modelled schemes, cheapest decode energy first.
ECC_SCHEMES: Tuple[EccScheme, ...] = (SECDED, SEC_DAEC, BCH_DEC, BCH_TEC)

#: Fraction of double-bit retention errors that land in adjacent cells
#: under relaxed refresh.  Retention failures cluster spatially (shared
#: wordline/bitline leakage paths), unlike uniformly-placed soft errors —
#: this is what makes SEC-DAEC worth its extra parity bit on relaxed
#: tiers.
RETENTION_ADJACENT_FRACTION = 0.9


def scheme_by_name(name: str) -> EccScheme:
    """Look up a scheme model by its canonical name."""
    for scheme in ECC_SCHEMES:
        if scheme.name == name:
            return scheme
    raise ConfigurationError(f"unknown ECC scheme {name!r}")


class EccSelector:
    """Pick the cheapest ECC scheme meeting a tier's reliability target.

    Candidates are ranked by decode energy per access; ``select`` returns
    the first (cheapest) scheme whose uncorrectable-word probability at
    the tier's raw BER (from :meth:`RetentionModel.ber`) stays at or
    below the tier's uncorrectable-error target.  Because the qualifying
    set only shrinks as the target tightens, a stricter target can never
    pick a weaker scheme.
    """

    def __init__(self, schemes: Sequence[EccScheme] = ECC_SCHEMES,
                 adjacent_fraction: Optional[float] = None) -> None:
        if not schemes:
            raise ConfigurationError("selector needs at least one scheme")
        self._schemes = tuple(sorted(
            schemes, key=lambda s: (s.energy_pj_per_access, s.name)
        ))
        self._adjacent_fraction = adjacent_fraction

    @property
    def schemes(self) -> Tuple[EccScheme, ...]:
        """Candidate schemes, cheapest decode energy first."""
        return self._schemes

    def _ue(self, scheme: EccScheme, raw_ber: float) -> float:
        return scheme.uncorrectable_word_probability(
            raw_ber, adjacent_fraction=self._adjacent_fraction)

    def select(self, raw_ber: float, ue_target: float) -> EccScheme:
        """Cheapest scheme with UE-word probability ≤ ``ue_target``."""
        if not 0.0 < ue_target <= 1.0:
            raise ConfigurationError("ue_target must be in (0, 1]")
        for scheme in self._schemes:
            if self._ue(scheme, raw_ber) <= ue_target:
                return scheme
        raise ConfigurationError(
            f"no ECC scheme meets UE target {ue_target:g} at raw BER "
            f"{raw_ber:g}"
        )

    def selection_table(self, raw_ber: float) -> List[dict]:
        """Per-scheme UE probability at a raw BER, for reporting."""
        return [
            {
                "scheme": s.name,
                "energy_pj_per_access": s.energy_pj_per_access,
                "parity_bits": s.parity_bits,
                "ue_word_probability": self._ue(s, raw_ber),
            }
            for s in self._schemes
        ]
