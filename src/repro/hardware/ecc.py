"""Hamming SECDED(72, 64) error-correcting code.

Caches and ECC DIMMs in the paper rely on Single-Error-Correct,
Double-Error-Detect codes: the cache ECC errors counted in Table 2 are
SECDED corrections, and Section 6.B notes classical SECDED handles raw bit
error rates up to ~1e-6.

This is a real, bit-accurate implementation of the standard (72, 64)
extended Hamming code used by server memory systems: 64 data bits are
protected by 7 Hamming parity bits plus 1 overall parity bit.  Single-bit
errors are located and corrected; double-bit errors are detected as
uncorrectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple

from ..core.exceptions import ConfigurationError

DATA_BITS = 64
PARITY_BITS = 7  # Hamming parity for 64 data bits (positions 1, 2, 4, ..., 64)
CODEWORD_BITS = 72  # 64 data + 7 Hamming parity + 1 overall parity


class DecodeStatus(Enum):
    """Outcome classes for a SECDED decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding one 72-bit codeword.

    ``data`` is the (possibly corrected) 64-bit payload; for uncorrectable
    words it is the best-effort raw payload and must not be trusted.
    ``flipped_bit`` is the corrected codeword bit position (0-based within
    the 72-bit word) for ``CORRECTED`` results, else ``None``.
    """

    status: DecodeStatus
    data: int
    flipped_bit: int = -1


def _hamming_positions() -> Tuple[List[int], List[int]]:
    """Positions (1-based, within the 71-bit Hamming word) of parity/data.

    Standard Hamming layout: positions that are powers of two carry parity;
    the rest carry data bits in order.
    """
    parity_positions = [1 << i for i in range(PARITY_BITS)]
    data_positions = [
        p for p in range(1, 2 ** PARITY_BITS)
        if p not in parity_positions
    ][:DATA_BITS]
    return parity_positions, data_positions


_PARITY_POSITIONS, _DATA_POSITIONS = _hamming_positions()


def encode(data: int) -> int:
    """Encode a 64-bit integer into a 72-bit SECDED codeword.

    Bit layout of the returned integer: bits 0..70 are the Hamming word
    (1-based positions 1..71 map to bits 0..70), bit 71 is the overall
    parity bit.
    """
    if not 0 <= data < (1 << DATA_BITS):
        raise ConfigurationError("data must be an unsigned 64-bit integer")

    word = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (data >> i) & 1:
            word |= 1 << (pos - 1)

    for parity_pos in _PARITY_POSITIONS:
        parity = 0
        # The Hamming word occupies positions 1..71; the overall parity
        # bit (stored at position 72) is outside the Hamming code.
        for pos in range(1, CODEWORD_BITS):
            if pos & parity_pos and (word >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            word |= 1 << (parity_pos - 1)

    overall = bin(word).count("1") & 1
    if overall:
        word |= 1 << (CODEWORD_BITS - 1)
    return word


def _extract_data(word: int) -> int:
    """Pull the 64 data bits out of a (possibly corrupted) codeword."""
    data = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (word >> (pos - 1)) & 1:
            data |= 1 << i
    return data


def decode(codeword: int) -> DecodeResult:
    """Decode a 72-bit codeword, correcting single and detecting double errors.

    Returns a :class:`DecodeResult`; triple and higher errors may alias and
    are not guaranteed to be detected (a fundamental SECDED property the
    tests exercise explicitly).
    """
    if not 0 <= codeword < (1 << CODEWORD_BITS):
        raise ConfigurationError("codeword must be an unsigned 72-bit integer")

    syndrome = 0
    for parity_pos in _PARITY_POSITIONS:
        parity = 0
        # Positions 1..71 only: the overall parity bit at position 72
        # does not participate in the Hamming syndrome.
        for pos in range(1, CODEWORD_BITS):
            if pos & parity_pos and (codeword >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            syndrome |= parity_pos

    overall_parity = bin(codeword).count("1") & 1

    if syndrome == 0 and overall_parity == 0:
        return DecodeResult(DecodeStatus.CLEAN, _extract_data(codeword))

    if overall_parity == 1:
        # Odd number of flipped bits: assume exactly one and correct it.
        if syndrome == 0:
            # The overall parity bit itself flipped.
            corrected = codeword ^ (1 << (CODEWORD_BITS - 1))
            return DecodeResult(
                DecodeStatus.CORRECTED, _extract_data(corrected),
                flipped_bit=CODEWORD_BITS - 1,
            )
        if syndrome <= CODEWORD_BITS - 1:
            corrected = codeword ^ (1 << (syndrome - 1))
            return DecodeResult(
                DecodeStatus.CORRECTED, _extract_data(corrected),
                flipped_bit=syndrome - 1,
            )
        # Syndrome points outside the codeword: ≥3 odd errors aliased to an
        # invalid position — flag as uncorrectable rather than miscorrect.
        return DecodeResult(DecodeStatus.UNCORRECTABLE, _extract_data(codeword))

    # Even number of flips with non-zero syndrome: a double error.
    return DecodeResult(DecodeStatus.UNCORRECTABLE, _extract_data(codeword))


def inject_bit_flips(codeword: int, bit_positions: List[int]) -> int:
    """Flip the given codeword bit positions (0-based) and return the result."""
    for bit in bit_positions:
        if not 0 <= bit < CODEWORD_BITS:
            raise ConfigurationError(
                f"bit position {bit} outside 72-bit codeword"
            )
        codeword ^= 1 << bit
    return codeword


#: Raw bit-error-rate ceiling classical SECDED is quoted to handle in the
#: paper (Section 6.B, via ArchShield [27]).
SECDED_BER_CAPABILITY = 1e-6


def secded_word_failure_probability(raw_ber: float,
                                    word_bits: int = CODEWORD_BITS) -> float:
    """Probability a SECDED word sees ≥2 raw bit errors (uncorrectable).

    For independent bit errors at rate ``raw_ber``, P(uncorrectable) =
    1 − P(0 errors) − P(1 error).  Used by the DRAM characterisation to
    translate raw BERs into the uncorrectable-error exposure the paper
    reasons about.
    """
    if raw_ber < 0 or raw_ber > 1:
        raise ConfigurationError("raw_ber must be a probability")
    p0 = (1.0 - raw_ber) ** word_bits
    p1 = word_bits * raw_ber * (1.0 - raw_ber) ** (word_bits - 1)
    return max(0.0, 1.0 - p0 - p1)
