"""Transistor-aging model (Vmin drift over lifetime).

The paper's StressLog exists precisely because characterised margins do not
stay valid: *"these new values may need to be updated several times over
the lifetime of a server due to the aging effects of the machine"*
(Section 3.D).  BTI-style aging raises every core's minimum operational
voltage over time, following the classical sub-linear power law
``ΔVmin(t) = A · (t / t_ref)^n`` with ``n ≈ 0.2``.

Stress accelerates aging: time spent at elevated voltage and temperature
counts more than idle time, captured by an effective-stress-time
accumulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.exceptions import ConfigurationError

#: Seconds in a year, the natural unit for lifetime drift.
YEAR_S = 365.25 * 24 * 3600.0


@dataclass
class AgingModel:
    """Accumulates stress time and reports the resulting Vmin drift.

    Parameters
    ----------
    drift_at_reference_v:
        Vmin increase (volts) after ``reference_time_s`` of nominal-stress
        operation.  3 years at ~10 mV drift is a typical BTI figure.
    reference_time_s:
        The reference lifetime for ``drift_at_reference_v``.
    exponent:
        Power-law exponent, classically ≈ 0.2 for BTI.
    voltage_acceleration:
        Multiplier on stress time per volt above the nominal voltage
        (exponential law).
    temperature_acceleration_c:
        Temperature increase (°C) that doubles the stress rate.
    """

    drift_at_reference_v: float = 0.010
    reference_time_s: float = 3 * YEAR_S
    exponent: float = 0.2
    voltage_acceleration: float = 4.0
    temperature_acceleration_c: float = 15.0
    nominal_voltage_v: float = 1.0
    reference_temp_c: float = 60.0

    def __post_init__(self) -> None:
        if self.drift_at_reference_v < 0:
            raise ConfigurationError("drift must be non-negative")
        if self.reference_time_s <= 0 or self.exponent <= 0:
            raise ConfigurationError(
                "reference time and exponent must be positive"
            )
        self._effective_stress_s = 0.0

    @property
    def effective_stress_s(self) -> float:
        """Accumulated stress-equivalent seconds."""
        return self._effective_stress_s

    def stress_rate(self, voltage_v: float, temperature_c: float) -> float:
        """Stress-time accrual rate relative to nominal conditions."""
        v_factor = math.exp(self.voltage_acceleration
                            * (voltage_v - self.nominal_voltage_v))
        t_factor = 2.0 ** ((temperature_c - self.reference_temp_c)
                           / self.temperature_acceleration_c)
        return v_factor * t_factor

    def accrue(self, dt_s: float, voltage_v: float,
               temperature_c: float) -> None:
        """Accumulate ``dt_s`` seconds of operation at the given conditions."""
        if dt_s < 0:
            raise ConfigurationError("dt must be non-negative")
        self._effective_stress_s += dt_s * self.stress_rate(
            voltage_v, temperature_c
        )

    def vmin_drift_v(self) -> float:
        """Current Vmin increase (volts) caused by accumulated aging."""
        if self._effective_stress_s == 0.0:
            return 0.0
        return self.drift_at_reference_v * (
            self._effective_stress_s / self.reference_time_s
        ) ** self.exponent

    def reset(self) -> None:
        """Forget accumulated stress (a fresh part)."""
        self._effective_stress_s = 0.0
