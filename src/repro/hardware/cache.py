"""Cache-bank model with SECDED protection.

Table 2's third row counts *cache ECC errors*: as the i5-4200U is
undervolted toward its crash point (frequency pinned at maximum), SRAM
cells in the caches start failing before the core logic does, and the
built-in SECDED corrects them.  The paper measures 1–17 corrected errors
per run, with the first errors appearing on average 15 mV above the crash
voltage.  The high-end i7-3970X exposed none (its reporting interface does
not surface them).

The model: the expected number of corrected errors in one run decays
exponentially with headroom above the crash voltage::

    E[errors](V) = amplitude · exp(-(V - V_crash) / tau) · pressure

calibrated so the onset (expected count crossing 1) sits ``onset_margin_v``
above the crash point.  Counts are Poisson-sampled.  A small fraction of
raw errors are double-bit and become uncorrectable, handled through the
real SECDED codec in :mod:`repro.hardware.ecc`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..workloads.base import StressProfile
from . import ecc
from .faults import FaultClass, FaultOrigin, FaultRecord


@dataclass(frozen=True)
class CacheParameters:
    """Electrical/error parameters of a cache hierarchy.

    Parameters
    ----------
    ecc_reporting:
        Whether the platform exposes correctable-error counts to software
        (the i5 does; the i7 in the paper's setup does not).
    onset_margin_v:
        Headroom above the core crash voltage where the expected error
        count crosses 1 (the paper's ~15 mV).
    tau_v:
        Exponential decay constant of the error count with voltage
        headroom.  ~5.3 mV puts the expected count at ~17 right above the
        crash point and at 1 near the 15 mV onset, spanning Table 2's
        1..17 range.
    double_bit_fraction:
        Fraction of raw error events that hit two bits of the same word
        (uncorrectable after SECDED).
    max_errors_per_run:
        Reporting saturation of the error counters.
    """

    ecc_reporting: bool = True
    onset_margin_v: float = 0.011
    tau_v: float = 0.0042
    double_bit_fraction: float = 0.002
    max_errors_per_run: int = 1000

    def __post_init__(self) -> None:
        if self.onset_margin_v <= 0 or self.tau_v <= 0:
            raise ConfigurationError("onset margin and tau must be positive")
        if not 0.0 <= self.double_bit_fraction <= 1.0:
            raise ConfigurationError("double_bit_fraction is a probability")
        if self.max_errors_per_run < 1:
            raise ConfigurationError("max_errors_per_run must be >= 1")


@dataclass(frozen=True)
class CacheRunResult:
    """ECC outcome of one benchmark run on a cache."""

    correctable: int
    uncorrectable: int

    @property
    def total(self) -> int:
        """Number of claims checked."""
        return self.correctable + self.uncorrectable


class CacheModel:
    """A cache hierarchy whose SRAM error rate depends on voltage headroom."""

    def __init__(self, params: Optional[CacheParameters] = None,
                 seed: int = 0) -> None:
        self.params = params or CacheParameters()
        self._rng = np.random.default_rng(seed)
        # Amplitude so that expected count == 1 at onset_margin_v headroom.
        self._amplitude = math.exp(self.params.onset_margin_v / self.params.tau_v)

    def expected_errors(self, voltage_v: float, crash_voltage_v: float,
                        profile: Optional[StressProfile] = None) -> float:
        """Expected corrected-error count for one run at ``voltage_v``.

        ``crash_voltage_v`` is the core's crash voltage under the same
        workload; below it the run never completes, so the count is
        reported as the saturated maximum (the machine dies mid-run).
        """
        headroom = voltage_v - crash_voltage_v
        pressure = 1.0 if profile is None else 0.7 + 0.6 * profile.cache_pressure
        if headroom <= 0:
            return float(self.params.max_errors_per_run)
        lam = self._amplitude * math.exp(-headroom / self.params.tau_v) * pressure
        return min(lam, float(self.params.max_errors_per_run))

    def run(self, voltage_v: float, crash_voltage_v: float,
            profile: Optional[StressProfile] = None) -> CacheRunResult:
        """Sample the ECC outcome of one run.

        Returns zero counts when the platform does not report ECC events,
        matching the i7-3970X row of Table 2.
        """
        if not self.params.ecc_reporting:
            return CacheRunResult(correctable=0, uncorrectable=0)
        lam = self.expected_errors(voltage_v, crash_voltage_v, profile)
        raw = int(self._rng.poisson(lam))
        raw = min(raw, self.params.max_errors_per_run)
        double = int(self._rng.binomial(raw, self.params.double_bit_fraction)) \
            if raw else 0
        return CacheRunResult(correctable=raw - double, uncorrectable=double)

    def state_dict(self) -> dict:
        """Serializable mutable state (the sampling RNG)."""
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore the RNG saved by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]

    def fault_records(self, result: CacheRunResult, timestamp: float,
                      component: str, operating_point: str = "",
                      ) -> List[FaultRecord]:
        """Expand a run result into HealthLog fault records."""
        records = []
        for _ in range(result.correctable):
            records.append(FaultRecord(
                timestamp=timestamp, fault_class=FaultClass.CORRECTABLE,
                origin=FaultOrigin.CACHE, component=component,
                operating_point=operating_point, detail="SECDED corrected",
            ))
        for _ in range(result.uncorrectable):
            records.append(FaultRecord(
                timestamp=timestamp, fault_class=FaultClass.UNCORRECTABLE,
                origin=FaultOrigin.CACHE, component=component,
                operating_point=operating_point, detail="double-bit",
            ))
        return records

    def demonstrate_secded(self, data_word: int,
                           flip_bits: Tuple[int, ...] = ()) -> ecc.DecodeResult:
        """Push one word through the real SECDED codec with injected flips.

        Used by tests and examples to show the correctable/uncorrectable
        boundary is a real code property, not a modelling assumption.
        """
        codeword = ecc.encode(data_word)
        corrupted = ecc.inject_bit_flips(codeword, list(flip_bits))
        return ecc.decode(corrupted)
