"""StressLog daemon: offline stress testing producing new safe V-F-R margins.

Paper Section 3.D.  The StressLog takes the machine offline (periodically,
every 2–3 months, or on-demand when the HealthLog flags anomalous
behaviour), runs a workload suite of stress kernels, and wraps the new
safe operating margins into a vector for the higher layers.

Per-core characterisation: the crash voltage under the *worst* stress
kernel is located by repeated downward sweeps; the safe voltage adds a
guard margin above the worst observed crash.  Because viruses are
"a pathogenic worst case scenario that is unlikely to be encountered in
real-life workloads" (Section 3.B), margins that survive them bound every
real workload.

Per-domain characterisation: the refresh interval is set from the
retention model's BER inversion with a derating factor, then validated
with a pattern test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.clock import SimClock
from ..core.eop import (
    NOMINAL_REFRESH_INTERVAL_S,
    CharacterizedPoint,
    EOPTable,
    OperatingPoint,
)
from ..core.events import AnomalyEvent, EventBus, MarginUpdateEvent
from ..core.exceptions import ConfigurationError, StressTestError
from ..core.runtime import MetricsRegistry, NodeRuntime
from ..hardware.platform import ServerPlatform
from ..workloads.base import Workload, WorkloadSuite
from ..workloads.patterns import RANDOM
from ..workloads.viruses import virus_suite
from .infovector import ComponentMargin, MarginVector


@dataclass(frozen=True)
class StressTargets:
    """The "input stress target parameters" handed to the StressLog.

    Parameters
    ----------
    failure_budget:
        Acceptable per-run failure probability at the characterised point.
    guard_margin_v:
        Voltage added above the worst observed crash point.
    sweep_trials:
        Downward sweeps per (core, kernel) to sample crash-point noise.
    refresh_ber_target:
        BER ceiling for relaxed refresh domains (commercial target 1e-9).
    refresh_derating:
        Multiplier (<1) applied to the BER-inverted refresh interval.
    pattern_passes:
        Validation passes of the test pattern on each relaxed domain.
    temperature_c:
        Worst-case device temperature assumed for retention.
    """

    failure_budget: float = 1e-4
    guard_margin_v: float = 0.010
    sweep_trials: int = 5
    refresh_ber_target: float = 1e-9
    refresh_derating: float = 0.8
    pattern_passes: int = 4
    temperature_c: float = 45.0

    def __post_init__(self) -> None:
        if not 0 < self.failure_budget < 1:
            raise ConfigurationError("failure_budget must be in (0, 1)")
        if self.guard_margin_v < 0:
            raise ConfigurationError("guard margin must be non-negative")
        if self.sweep_trials < 1:
            raise ConfigurationError("sweep_trials must be >= 1")
        if not 0 < self.refresh_derating <= 1:
            raise ConfigurationError("refresh_derating must be in (0, 1]")


class StressLog:
    """The StressLog monitor for one platform.

    Preferred construction is ``StressLog(platform, runtime=runtime)``;
    the legacy ``(platform, clock, bus=...)`` form is kept for
    standalone campaigns (e.g. the lifetime simulator).
    """

    def __init__(self, platform: ServerPlatform,
                 clock: Optional[SimClock] = None,
                 bus: Optional[EventBus] = None,
                 suite: Optional[WorkloadSuite] = None,
                 targets: Optional[StressTargets] = None,
                 runtime: Optional[NodeRuntime] = None) -> None:
        if runtime is not None:
            clock = clock or runtime.clock
            bus = bus or runtime.bus
        if clock is None:
            raise ConfigurationError(
                "StressLog needs a runtime or an explicit clock")
        self.platform = platform
        self.clock = clock
        self.bus = bus
        self.metrics = (runtime.metrics if runtime is not None
                        else MetricsRegistry())
        self.suite = suite or virus_suite()
        self.targets = targets or StressTargets()
        self.eop_table = EOPTable()
        self.history: List[MarginVector] = []
        self._offline = False

    # -- triggering ------------------------------------------------------------

    @property
    def offline(self) -> bool:
        """Whether the machine is currently fenced for stress testing."""
        return self._offline

    def attach_anomaly_trigger(self, bus: EventBus) -> None:
        """Re-characterise whenever the HealthLog raises a critical anomaly."""

        def on_anomaly(event: AnomalyEvent) -> None:
            """Trigger a stress cycle on critical anomalies."""
            if event.severity == "critical":
                self.characterize(trigger="anomaly")

        bus.subscribe(AnomalyEvent, on_anomaly)

    def schedule_periodic(self, period_s: float) -> None:
        """Periodic re-characterisation (the paper's 2–3 month cadence)."""
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        self.clock.schedule_every(
            period_s, lambda: self.characterize(trigger="periodic")
        )

    # -- core characterisation ----------------------------------------------------

    def _characterize_core(self, core_id: int) -> ComponentMargin:
        """Find the safe V-F point of one core under the stress suite."""
        chip = self.platform.chip
        core = chip.core(core_id)
        nominal = chip.spec.nominal

        worst_crash_v = 0.0
        worst_kernel = ""
        for kernel in self.suite:
            observed = max(
                core.sample_crash_voltage_v(kernel.profile)
                for _ in range(self.targets.sweep_trials)
            )
            if observed > worst_crash_v:
                worst_crash_v = observed
                worst_kernel = kernel.name

        safe_voltage = min(
            nominal.voltage_v,
            worst_crash_v + self.targets.guard_margin_v,
        )
        safe_point = nominal.with_voltage(safe_voltage)
        worst_profile = self.suite.get(worst_kernel).profile
        failure_probability = core.crash_probability(safe_point, worst_profile)
        relative_power = chip.power.relative_dynamic_power(safe_point, nominal)
        return ComponentMargin(
            component=f"core{core_id}",
            safe_point=safe_point,
            failure_probability=failure_probability,
            relative_power=relative_power,
            stress_workload=worst_kernel,
            observed_crash_voltage_v=worst_crash_v,
            guard_margin=self.targets.guard_margin_v,
        )

    # -- memory characterisation ----------------------------------------------------

    def _characterize_domain(self, domain_name: str) -> ComponentMargin:
        """Find the safe refresh interval of one relaxable domain."""
        domain = self.platform.memory.domain(domain_name)
        if domain.reliable:
            raise StressTestError(
                f"domain {domain_name!r} is the reliable domain; it stays "
                "at nominal refresh by design"
            )
        retention = max(
            (d.retention for d in domain.dimms),
            key=lambda r: r.ber(NOMINAL_REFRESH_INTERVAL_S * 100,
                                self.targets.temperature_c),
        )
        raw_interval = retention.max_interval_for_ber(
            self.targets.refresh_ber_target, self.targets.temperature_c
        )
        safe_interval = max(
            NOMINAL_REFRESH_INTERVAL_S,
            raw_interval * self.targets.refresh_derating,
        )

        # Validation pattern test at the candidate interval.
        original = domain.refresh_interval_s
        try:
            domain.set_refresh_interval(safe_interval)
            coverage = RANDOM.cumulative_coverage(self.targets.pattern_passes)
            errors = domain.sample_pattern_errors(
                coverage=coverage, temperature_c=self.targets.temperature_c
            )
            while errors > 0 and safe_interval > NOMINAL_REFRESH_INTERVAL_S:
                safe_interval = max(
                    NOMINAL_REFRESH_INTERVAL_S, safe_interval / 2.0
                )
                domain.set_refresh_interval(safe_interval)
                errors = domain.sample_pattern_errors(
                    coverage=coverage,
                    temperature_c=self.targets.temperature_c,
                )
            ber = domain.ber(self.targets.temperature_c)
        finally:
            domain.set_refresh_interval(original)

        nominal_power = sum(
            d.total_power_w(NOMINAL_REFRESH_INTERVAL_S) for d in domain.dimms
        )
        relaxed_power = sum(
            d.total_power_w(safe_interval) for d in domain.dimms
        )
        chip_nominal = self.platform.chip.spec.nominal
        return ComponentMargin(
            component=domain_name,
            safe_point=chip_nominal.with_refresh(safe_interval),
            failure_probability=ber,
            relative_power=relaxed_power / nominal_power,
            stress_workload=RANDOM.name,
            observed_ber=ber,
            guard_margin=1.0 - self.targets.refresh_derating,
        )

    # -- the full cycle ---------------------------------------------------------------

    def characterize(self, trigger: str = "on-demand") -> MarginVector:
        """One full offline stress-test cycle over cores and domains.

        The machine is fenced (``offline``) for the duration; the margin
        vector is appended to history, folded into the EOP table, and
        published as a :class:`MarginUpdateEvent` when a bus is attached.
        """
        if self._offline:
            raise StressTestError("a stress-test cycle is already running")
        self._offline = True
        start = self.clock.now
        try:
            margins: List[ComponentMargin] = []
            for core in self.platform.chip.cores:
                margins.append(self._characterize_core(core.core_id))
            for domain in self.platform.memory.domains():
                if not domain.reliable:
                    margins.append(self._characterize_domain(domain.name))
        finally:
            self._offline = False

        vector = MarginVector(
            timestamp=self.clock.now,
            node=self.platform.name,
            margins=tuple(margins),
            stress_duration_s=self.clock.now - start,
            trigger=trigger,
        )
        self.history.append(vector)
        self.metrics.inc("daemons.stresslog.cycles")
        self.metrics.inc(f"daemons.stresslog.trigger.{trigger}")
        self.metrics.set_gauge("daemons.stresslog.characterized_components",
                               float(len(margins)))
        for margin in margins:
            self.eop_table.add(margin.component, CharacterizedPoint(
                point=margin.safe_point,
                failure_probability=margin.failure_probability,
                relative_power=margin.relative_power,
                stress_workload=margin.stress_workload,
            ))
        if self.bus is not None:
            for margin in margins:
                self.bus.publish(MarginUpdateEvent(
                    timestamp=self.clock.now, source="stresslog",
                    component=margin.component,
                    detail=margin.safe_point.describe(),
                ))
        return vector
