"""Log-message-pattern failure prediction.

Section 5.B surveys techniques that "use the pattern of the system log
messages to predict a failure by classifying the messages by their
similarities in real-time" (Watanabe et al. [25]) and links resource
anomalies with failures from cluster logs (Chuah et al. [23]).
UniServer's HealthLog produces exactly such a log stream; this module
implements an online pattern learner over it:

1. each log line is reduced to a *template* (numbers and identifiers
   masked out);
2. template transition statistics are learned online during healthy
   operation;
3. a sliding window is scored by how surprising its templates and
   transitions are; windows past a threshold raise a failure warning.

The learner is deliberately unsupervised — no failure labels are needed,
matching the cited techniques — and integrates with the cloud layer as a
third predictor option.
"""

from __future__ import annotations

import math
import re
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError

#: Tokens that are run-specific and must be masked to form templates.
_NUMBER = re.compile(r"\b\d+(\.\d+)?(e[+-]?\d+)?\b", re.IGNORECASE)
_HEX = re.compile(r"0x[0-9a-f]+", re.IGNORECASE)
_COMPONENT_INDEX = re.compile(r"\b(core|channel|vm|node|dimm)\d+\b")


def template_of(line: str) -> str:
    """Reduce a log line to its message template.

    Masks numbers, hex constants and component indices so that
    ``"t=3.2 correctable core5 2 corrected"`` and
    ``"t=9.7 correctable core1 4 corrected"`` share one template.
    """
    masked = _COMPONENT_INDEX.sub(lambda m: m.group(0).rstrip("0123456789")
                                  + "#", line)
    masked = _HEX.sub("<hex>", masked)
    masked = _NUMBER.sub("<n>", masked)
    return " ".join(masked.split())


@dataclass
class PatternStats:
    """Learned healthy-operation statistics."""

    template_counts: Counter = field(default_factory=Counter)
    transition_counts: Counter = field(default_factory=Counter)
    total_lines: int = 0

    def template_probability(self, template: str) -> float:
        """Laplace-smoothed template probability."""
        vocabulary = max(1, len(self.template_counts))
        return ((self.template_counts.get(template, 0) + 1)
                / (self.total_lines + vocabulary))

    def transition_probability(self, prev: str, cur: str) -> float:
        """Laplace-smoothed transition probability."""
        vocabulary = max(1, len(self.template_counts))
        from_count = sum(
            count for (a, _), count in self.transition_counts.items()
            if a == prev
        )
        return ((self.transition_counts.get((prev, cur), 0) + 1)
                / (from_count + vocabulary))


@dataclass(frozen=True)
class WindowScore:
    """Anomaly verdict for one log window."""

    surprisal: float
    threshold: float
    novel_templates: int

    @property
    def anomalous(self) -> bool:
        """Whether the window's surprisal exceeds the threshold."""
        return self.surprisal > self.threshold


class LogPatternPredictor:
    """Online, unsupervised log-pattern failure predictor."""

    def __init__(self, window: int = 20,
                 threshold_sigma: float = 3.0) -> None:
        if window < 2:
            raise ConfigurationError("window must be >= 2")
        if threshold_sigma <= 0:
            raise ConfigurationError("threshold_sigma must be positive")
        self.window = window
        self.threshold_sigma = threshold_sigma
        self.stats = PatternStats()
        self._recent: Deque[str] = deque(maxlen=window)
        self._surprisal_history: List[float] = []
        self._frozen = False

    # -- learning --------------------------------------------------------------

    def learn(self, lines: Sequence[str]) -> None:
        """Fold healthy-operation log lines into the baseline."""
        if self._frozen:
            raise ConfigurationError(
                "the baseline is frozen; create a new predictor to relearn"
            )
        prev: Optional[str] = None
        for line in lines:
            template = template_of(line)
            self.stats.template_counts[template] += 1
            self.stats.total_lines += 1
            if prev is not None:
                self.stats.transition_counts[(prev, template)] += 1
            prev = template

    def freeze(self) -> None:
        """Stop learning: subsequent lines are only scored."""
        if self.stats.total_lines < self.window:
            raise ConfigurationError(
                "learn at least one window of healthy lines first"
            )
        self._frozen = True

    @property
    def is_trained(self) -> bool:
        """Whether the model is ready to score/predict."""
        return self._frozen

    # -- scoring ---------------------------------------------------------------

    def _window_surprisal(self, templates: Sequence[str]) -> float:
        """Mean negative log-probability of the window's content."""
        total = 0.0
        prev: Optional[str] = None
        for template in templates:
            total -= math.log(self.stats.template_probability(template))
            if prev is not None:
                total -= math.log(
                    self.stats.transition_probability(prev, template))
            prev = template
        return total / max(1, len(templates))

    def _threshold(self) -> float:
        """Adaptive threshold: mean + k·sigma of past window surprisals."""
        history = self._surprisal_history
        if len(history) < 5:
            # Cold start: anything within 3x the first observations is ok.
            return (max(history) * 2.0 if history else float("inf"))
        mean = sum(history) / len(history)
        var = sum((s - mean) ** 2 for s in history) / len(history)
        return mean + self.threshold_sigma * math.sqrt(var)

    def observe(self, line: str) -> Optional[WindowScore]:
        """Score one incoming log line; returns a verdict per full window."""
        if not self._frozen:
            raise ConfigurationError("freeze() the baseline before scoring")
        template = template_of(line)
        self._recent.append(template)
        if len(self._recent) < self.window:
            return None
        surprisal = self._window_surprisal(list(self._recent))
        threshold = self._threshold()
        novel = sum(
            1 for t in self._recent
            if t not in self.stats.template_counts
        )
        self._surprisal_history.append(surprisal)
        if len(self._surprisal_history) > 500:
            del self._surprisal_history[:250]
        return WindowScore(surprisal=surprisal, threshold=threshold,
                           novel_templates=novel)

    def scan(self, lines: Sequence[str]) -> List[WindowScore]:
        """Score a batch of lines; returns every full-window verdict."""
        verdicts = []
        for line in lines:
            verdict = self.observe(line)
            if verdict is not None:
                verdicts.append(verdict)
        return verdicts

    def any_anomaly(self, lines: Sequence[str]) -> bool:
        """Whether any window in the batch scored anomalous."""
        return any(v.anomalous for v in self.scan(lines))
