"""System-software daemons: HealthLog, StressLog and the Predictor.

These are the paper's low-level monitoring/characterisation/prediction
layer (Sections 3.C–3.E): the HealthLog watches the hardware at runtime,
the StressLog periodically re-characterises safe V-F-R margins offline,
and the Predictor learns failure-probability models that advise the
Hypervisor on operating modes.
"""

from .healthlog import HealthLog, HealthLogConfig
from .infovector import ComponentMargin, InfoVector, MarginVector
from .predictor import (
    Advice,
    FEATURE_NAMES,
    FailureDataset,
    LogisticModel,
    Predictor,
    dataset_from_campaign,
    make_features,
)
from .stresslog import StressLog, StressTargets
from .logpattern import (
    LogPatternPredictor,
    PatternStats,
    WindowScore,
    template_of,
)

__all__ = [
    "LogPatternPredictor", "PatternStats", "WindowScore", "template_of",
    "HealthLog", "HealthLogConfig",
    "ComponentMargin", "InfoVector", "MarginVector",
    "Advice", "FEATURE_NAMES", "FailureDataset", "LogisticModel",
    "Predictor", "dataset_from_campaign", "make_features",
    "StressLog", "StressTargets",
]
