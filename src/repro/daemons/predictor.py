"""Predictor daemon: machine-learning failure models advising the Hypervisor.

Paper Sections 2 and 3.E: "Using the information provided by the HealthLog
and StressLog the Predictor develops probability failure models and tries
to predict the hardware behavior under any operating point", advising the
Hypervisor on execution modes (e.g. high-performance or low-power).

The model is a from-scratch logistic regression (batch gradient descent
with L2 regularisation on standardised features) — no ML framework is
available offline, and a linear model over physically meaningful features
(voltage offset, frequency fraction, droop, sensitivity, temperature) is
both fast enough for a runtime daemon and faithful to the "probability
failure models" the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError, PredictionError
from ..core.runtime import MetricsRegistry, NodeRuntime
from ..workloads.base import StressProfile, Workload

FEATURE_NAMES = (
    "voltage_offset",      # (v - v_nominal) / v_nominal, negative = undervolt
    "frequency_fraction",  # f / f_nominal
    "droop_intensity",
    "core_sensitivity",
    "activity_factor",
    "temperature_norm",    # (T - 50) / 50
)


def make_features(point: OperatingPoint, nominal: OperatingPoint,
                  profile: StressProfile,
                  temperature_c: float = 50.0) -> np.ndarray:
    """Build one feature row for a (point, workload, temperature) triple."""
    return np.array([
        point.voltage_offset_from(nominal),
        point.frequency_hz / nominal.frequency_hz,
        profile.droop_intensity,
        profile.core_sensitivity,
        profile.activity_factor,
        (temperature_c - 50.0) / 50.0,
    ])


@dataclass
class FailureDataset:
    """Labelled observations: feature rows plus crash labels."""

    features: List[np.ndarray] = field(default_factory=list)
    labels: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.labels)

    def add(self, point: OperatingPoint, nominal: OperatingPoint,
            profile: StressProfile, crashed: bool,
            temperature_c: float = 50.0) -> None:
        """Append one observation."""
        self.features.append(
            make_features(point, nominal, profile, temperature_c)
        )
        self.labels.append(1 if crashed else 0)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The dataset as (features, labels) numpy arrays."""
        if not self.labels:
            raise PredictionError("dataset is empty")
        return np.vstack(self.features), np.asarray(self.labels, dtype=float)

    def crash_fraction(self) -> float:
        """Fraction of positive (crash) labels."""
        if not self.labels:
            return 0.0
        return sum(self.labels) / len(self.labels)


def dataset_from_campaign(campaign, suite, nominal: OperatingPoint,
                          step_v: float = 0.005) -> FailureDataset:
    """Build a dataset from an undervolting campaign's sweeps.

    Every sweep contributes its surviving voltage steps as negative
    examples and its crash step as the positive example — exactly the
    observations a HealthLog accumulates while StressLog sweeps run.

    ``campaign`` is a
    :class:`~repro.characterization.cpu_undervolting.CampaignResult`;
    ``suite`` maps benchmark names back to stress profiles.
    """
    dataset = FailureDataset()
    for sweep in campaign.sweeps:
        profile = suite.get(sweep.benchmark).profile
        voltage = nominal.voltage_v
        while voltage > sweep.crash_voltage_v + 1e-12:
            dataset.add(nominal.with_voltage(voltage), nominal, profile,
                        crashed=False)
            voltage = round(voltage - step_v, 9)
        dataset.add(nominal.with_voltage(sweep.crash_voltage_v), nominal,
                    profile, crashed=True)
    return dataset


class LogisticModel:
    """Minimal logistic regression with L2, trained by gradient descent."""

    def __init__(self, learning_rate: float = 0.5, epochs: int = 400,
                 l2: float = 1e-3) -> None:
        if learning_rate <= 0 or epochs < 1 or l2 < 0:
            raise ConfigurationError("bad hyper-parameters")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self._weights: Optional[np.ndarray] = None
        self._bias = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    @property
    def is_trained(self) -> bool:
        """Whether the model is ready to score/predict."""
        return self._weights is not None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticModel":
        """Train on standardised features; returns ``self``."""
        if features.ndim != 2 or len(features) != len(labels):
            raise ConfigurationError("features/labels shape mismatch")
        if len(np.unique(labels)) < 2:
            raise PredictionError(
                "training data needs both crash and survival examples"
            )
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0)
        self._std[self._std < 1e-12] = 1.0
        x = (features - self._mean) / self._std
        y = labels.astype(float)

        n, d = x.shape
        weights = np.zeros(d)
        bias = 0.0
        for _ in range(self.epochs):
            p = self._sigmoid(x @ weights + bias)
            grad_w = x.T @ (p - y) / n + self.l2 * weights
            grad_b = float(np.mean(p - y))
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self._weights = weights
        self._bias = bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Crash probabilities for feature rows."""
        if self._weights is None:
            raise PredictionError("model is not trained")
        x = np.atleast_2d(features)
        x = (x - self._mean) / self._std
        return self._sigmoid(x @ self._weights + self._bias)

    def accuracy(self, features: np.ndarray, labels: np.ndarray,
                 threshold: float = 0.5) -> float:
        """Classification accuracy at a probability threshold."""
        preds = self.predict_proba(features) >= threshold
        return float(np.mean(preds == labels.astype(bool)))

    def feature_weights(self) -> Dict[str, float]:
        """Standardised-feature weights, keyed by feature name."""
        if self._weights is None:
            raise PredictionError("model is not trained")
        return dict(zip(FEATURE_NAMES, (float(w) for w in self._weights)))

    def contributions(self, features: np.ndarray) -> np.ndarray:
        """Per-feature logit contribution (weight x standardised value).

        The decomposition of one row's decision: positive values push
        toward failure.  Used by risk reports to name the features that
        drove a verdict.
        """
        if self._weights is None:
            raise PredictionError("model is not trained")
        row = np.asarray(features, dtype=float).reshape(-1)
        z = (row - self._mean) / self._std
        return z * self._weights

    def state_dict(self) -> Dict[str, object]:
        """Serializable model state (hyper-parameters plus fit)."""
        return {
            "learning_rate": self.learning_rate,
            "epochs": self.epochs,
            "l2": self.l2,
            "weights": (None if self._weights is None
                        else [float(w) for w in self._weights]),
            "bias": float(self._bias),
            "mean": (None if self._mean is None
                     else [float(m) for m in self._mean]),
            "std": (None if self._std is None
                    else [float(s) for s in self._std]),
        }

    def load_state_dict(self, state) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self.learning_rate = float(state["learning_rate"])
        self.epochs = int(state["epochs"])
        self.l2 = float(state["l2"])
        weights = state["weights"]
        self._weights = (None if weights is None
                         else np.array([float(w) for w in weights]))
        self._bias = float(state["bias"])
        mean = state["mean"]
        self._mean = (None if mean is None
                      else np.array([float(m) for m in mean]))
        std = state["std"]
        self._std = (None if std is None
                     else np.array([float(s) for s in std]))


@dataclass(frozen=True)
class Advice:
    """The Predictor's recommendation to the Hypervisor."""

    point: OperatingPoint
    predicted_failure_probability: float
    relative_power: float
    mode: str


class Predictor:
    """The Predictor daemon: failure model plus operating-mode advisor."""

    #: Execution modes the Hypervisor can request (paper: "possible
    #: execution modes (e.g. high-performance or low-power)").
    MODES = ("high-performance", "low-power")

    def __init__(self, nominal: OperatingPoint,
                 model: Optional[LogisticModel] = None,
                 runtime: Optional[NodeRuntime] = None) -> None:
        self.nominal = nominal
        self.model = model or LogisticModel()
        self.dataset = FailureDataset()
        self.metrics = (runtime.metrics if runtime is not None
                        else MetricsRegistry())

    def observe(self, point: OperatingPoint, profile: StressProfile,
                crashed: bool, temperature_c: float = 50.0) -> None:
        """Fold one runtime observation (from HealthLog) into the dataset."""
        self.dataset.add(point, self.nominal, profile, crashed, temperature_c)
        self.metrics.inc("daemons.predictor.observations")

    def ingest(self, dataset: FailureDataset) -> None:
        """Fold a whole dataset (e.g. from a StressLog campaign) in."""
        self.dataset.features.extend(dataset.features)
        self.dataset.labels.extend(dataset.labels)
        self.metrics.inc("daemons.predictor.observations", len(dataset))

    def train(self) -> LogisticModel:
        """(Re)train the failure model on everything observed so far."""
        features, labels = self.dataset.as_arrays()
        fitted = self.model.fit(features, labels)
        self.metrics.inc("daemons.predictor.trainings")
        self.metrics.set_gauge("daemons.predictor.dataset_size",
                               float(len(self.dataset)))
        return fitted

    def predict_failure(self, point: OperatingPoint, profile: StressProfile,
                        temperature_c: float = 50.0) -> float:
        """Predicted crash probability at a point for a workload."""
        row = make_features(point, self.nominal, profile, temperature_c)
        return float(self.model.predict_proba(row)[0])

    def advise(self, workload: Workload, mode: str = "low-power",
               failure_budget: float = 1e-3, voltage_step_v: float = 0.005,
               min_frequency_fraction: float = 0.5,
               relative_power_fn=None) -> Advice:
        """Recommend an operating point for a workload and mode.

        * ``high-performance``: frequency stays at nominal; voltage is
          lowered to the deepest point whose predicted failure probability
          fits the budget.
        * ``low-power``: voltage *and* frequency scale down together
          (classical DVFS shape) and the advisor picks the lowest-power
          safe point.
        """
        if mode not in self.MODES:
            raise ConfigurationError(
                f"unknown mode {mode!r}; choose from {self.MODES}"
            )
        if not self.model.is_trained:
            raise PredictionError("train the predictor before asking advice")

        candidates: List[OperatingPoint] = []
        if mode == "high-performance":
            voltage = self.nominal.voltage_v
            while voltage >= self.nominal.voltage_v * 0.6:
                candidates.append(self.nominal.with_voltage(voltage))
                voltage = round(voltage - voltage_step_v, 9)
        else:
            for i in range(40):
                t = i / 39
                vf = 1.0 - t * 0.35
                ff = 1.0 - t * (1.0 - min_frequency_fraction)
                candidates.append(self.nominal.scaled(
                    voltage_factor=vf, frequency_factor=ff))

        def rel_power(point: OperatingPoint) -> float:
            """Relative dynamic power of a candidate point."""
            if relative_power_fn is not None:
                return relative_power_fn(point)
            return ((point.voltage_v / self.nominal.voltage_v) ** 2
                    * point.frequency_hz / self.nominal.frequency_hz)

        best: Optional[Advice] = None
        for point in candidates:
            prob = self.predict_failure(point, workload.profile)
            if prob > failure_budget:
                continue
            advice = Advice(
                point=point,
                predicted_failure_probability=prob,
                relative_power=rel_power(point),
                mode=mode,
            )
            if best is None or advice.relative_power < best.relative_power:
                best = advice
        if best is None:
            # Nothing safe below nominal: recommend nominal itself.
            best = Advice(
                point=self.nominal,
                predicted_failure_probability=self.predict_failure(
                    self.nominal, workload.profile),
                relative_power=1.0,
                mode=mode,
            )
        return best
