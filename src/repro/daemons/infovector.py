"""Information-vector schemas exchanged between daemons and system software.

Section 3.C: the HealthLog "records runtime system metrics in the form of
an information vector, stored in a system logfile", combining error
reports with "system configuration values, sensor readings and performance
counters".  Section 3.D: the StressLog wraps its findings "into a vector
to be passed to the higher system layers".

Two vector types exist: the HealthLog's :class:`InfoVector` (runtime
status) and the StressLog's :class:`MarginVector` (new safe V-F-R values
per component).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.eop import OperatingPoint
from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class InfoVector:
    """One HealthLog information vector.

    Field groups map to the paper's enumeration: errors (correctable /
    uncorrectable / crashes since the last vector), configuration values
    (per-component operating points), sensor readings and performance
    counters.
    """

    timestamp: float
    node: str
    #: Per-component V-F-R configuration strings, e.g. {"core0": "..."}.
    configuration: Mapping[str, str]
    #: Error counts since the previous vector.
    correctable_errors: int
    uncorrectable_errors: int
    crashes: int
    #: Sensor readings, e.g. {"temperature_c": 54.2, "power_w": 38.1}.
    sensors: Mapping[str, float]
    #: Performance counters, e.g. {"ipc": 1.4, "cache_miss_rate": 0.02}.
    counters: Mapping[str, float]
    #: Components currently above the error threshold.
    suspect_components: Tuple[str, ...] = ()

    def to_log_line(self) -> str:
        """Serialise to the one-line logfile format HealthLog appends."""
        parts = [
            f"t={self.timestamp:.3f}",
            f"node={self.node}",
            f"ce={self.correctable_errors}",
            f"ue={self.uncorrectable_errors}",
            f"crash={self.crashes}",
        ]
        parts.extend(f"cfg.{k}={v}" for k, v in sorted(self.configuration.items()))
        parts.extend(f"sen.{k}={v:.4g}" for k, v in sorted(self.sensors.items()))
        parts.extend(f"ctr.{k}={v:.4g}" for k, v in sorted(self.counters.items()))
        if self.suspect_components:
            parts.append("suspect=" + ",".join(self.suspect_components))
        return " ".join(parts)

    @property
    def total_errors(self) -> int:
        """Correctable plus uncorrectable plus crashes."""
        return self.correctable_errors + self.uncorrectable_errors + self.crashes


@dataclass(frozen=True)
class ComponentMargin:
    """StressLog verdict for one component.

    For cores ``safe_point`` carries the characterised V-F; for memory
    domains the refresh interval.  ``observed_crash_voltage_v`` (cores) or
    ``observed_ber`` (domains) records the evidence; ``guard_margin``
    states the safety buffer StressLog kept above the observed limit.
    """

    component: str
    safe_point: OperatingPoint
    failure_probability: float
    relative_power: float
    stress_workload: str
    observed_crash_voltage_v: Optional[float] = None
    observed_ber: Optional[float] = None
    guard_margin: float = 0.0


@dataclass(frozen=True)
class MarginVector:
    """The StressLog output vector: new safe V-F-R margins per component."""

    timestamp: float
    node: str
    margins: Tuple[ComponentMargin, ...]
    stress_duration_s: float = 0.0
    trigger: str = "periodic"

    def __post_init__(self) -> None:
        names = [m.component for m in self.margins]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate components in margin vector")

    def component_names(self) -> List[str]:
        """Components covered by this margin vector."""
        return [m.component for m in self.margins]

    def margin_for(self, component: str) -> ComponentMargin:
        """The margin entry for one component."""
        for m in self.margins:
            if m.component == component:
                return m
        raise KeyError(f"no margin for component {component!r}")

    def mean_power_saving(self) -> float:
        """Mean fractional power saving over all characterised components."""
        if not self.margins:
            return 0.0
        savings = [max(0.0, 1.0 - m.relative_power) for m in self.margins]
        return sum(savings) / len(savings)
