"""HealthLog daemon: runtime health monitoring and error logging.

Paper Section 3.C.  The HealthLog monitor provides two service classes:

* **Event-driven**: it subscribes to hardware error events (correctable,
  uncorrectable, crashes) and sensor anomalies on the node's event bus,
  appending everything to its ledger and logfile.  When the error count of
  a component rises above a threshold within a sliding window, it raises
  an :class:`~repro.core.events.AnomalyEvent` — the trigger that spawns an
  on-demand StressLog cycle (Section 3: "If the number of errors rises
  above a certain threshold a new stress-test cycle may be triggered").

* **On-demand**: higher layers (Predictor, Hypervisor, OpenStack) request
  the current :class:`~repro.daemons.infovector.InfoVector` snapshot.

The daemon also samples sensors periodically on the simulation clock,
mirroring the real daemon's polling loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.clock import SimClock
from ..core.events import (
    AnomalyEvent,
    CorrectableErrorEvent,
    CrashEvent,
    Event,
    EventBus,
    SensorEvent,
    UncorrectableErrorEvent,
)
from ..core.exceptions import ConfigurationError
from ..core.runtime import MetricsRegistry, NodeRuntime
from ..hardware.faults import FaultClass, FaultLedger, FaultOrigin, FaultRecord
from ..hardware.platform import ServerPlatform
from .infovector import InfoVector


@dataclass(frozen=True)
class HealthLogConfig:
    """Tunables of the HealthLog daemon."""

    #: Sensor sampling period (seconds of simulation time).
    sampling_period_s: float = 1.0
    #: Error-count threshold per component within the window that raises
    #: an anomaly (and thus a StressLog re-characterisation request).
    error_threshold: int = 10
    #: Sliding window for the threshold rule (seconds).
    error_window_s: float = 300.0
    #: Retain at most this many logfile lines (memory bound).
    logfile_limit: int = 100_000

    def __post_init__(self) -> None:
        if self.sampling_period_s <= 0:
            raise ConfigurationError("sampling period must be positive")
        if self.error_threshold < 1:
            raise ConfigurationError("error threshold must be >= 1")
        if self.error_window_s <= 0:
            raise ConfigurationError("error window must be positive")


class HealthLog:
    """The HealthLog monitor for one platform.

    Preferred construction is ``HealthLog(platform, runtime=runtime)``,
    taking the bus, clock and metrics registry from the shared
    :class:`~repro.core.runtime.NodeRuntime`.  The legacy
    ``(platform, bus, clock)`` form is kept for standalone use.
    """

    def __init__(self, platform: ServerPlatform,
                 bus: Optional[EventBus] = None,
                 clock: Optional[SimClock] = None,
                 config: Optional[HealthLogConfig] = None,
                 runtime: Optional[NodeRuntime] = None) -> None:
        if runtime is not None:
            bus = bus or runtime.bus
            clock = clock or runtime.clock
        if bus is None or clock is None:
            raise ConfigurationError(
                "HealthLog needs a runtime or an explicit bus and clock")
        self.platform = platform
        self.bus = bus
        self.clock = clock
        self.metrics = (runtime.metrics if runtime is not None
                        else MetricsRegistry())
        self.config = config or HealthLogConfig()
        self.ledger = FaultLedger()
        self._logfile: List[str] = []
        self._last_snapshot_counts = {"ce": 0, "ue": 0, "crash": 0}
        self._sensor_cache: Dict[str, float] = {}
        self._counter_cache: Dict[str, float] = {}
        self._flagged: set = set()
        self._started = False
        #: Chaos/fault-injection switch: while set, the polling loop is
        #: wedged and info vectors stop refreshing (they age instead).
        self.stalled = False
        self._last_refresh_s = clock.now

        bus.subscribe(CorrectableErrorEvent, self._on_correctable)
        bus.subscribe(UncorrectableErrorEvent, self._on_uncorrectable)
        bus.subscribe(CrashEvent, self._on_crash)
        bus.subscribe(SensorEvent, self._on_sensor)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic sensor sampling on the simulation clock."""
        if self._started:
            return
        self._started = True
        self.clock.schedule_every(self.config.sampling_period_s, self._sample)

    def _sample(self) -> None:
        """One periodic sampling tick: read chip sensors into the cache."""
        if self.stalled:
            self.metrics.inc("resilience.healthlog.stalled_ticks")
            return
        self._last_refresh_s = self.clock.now
        point = self.platform.core_point(0)
        reading = self.platform.chip.read_sensors(self.clock.now, point)
        self._sensor_cache = {
            "voltage_v": reading.voltage_v,
            "temperature_c": reading.temperature_c,
            "power_w": reading.power_w,
        }
        self.metrics.inc("daemons.healthlog.samples")
        self.metrics.set_gauge("daemons.healthlog.temperature_c",
                               reading.temperature_c)
        self.metrics.observe("daemons.healthlog.power_w", reading.power_w)
        self._append_log(
            f"t={self.clock.now:.3f} sample "
            f"v={reading.voltage_v:.4f} temp={reading.temperature_c:.2f} "
            f"p={reading.power_w:.2f}"
        )

    # -- persistence -----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Serializable daemon state.

        ``_started`` is not saved: the periodic sampling callback lives in
        the clock queue, which a restore target re-creates by calling
        :meth:`start` during rebuild.
        """
        return {
            "ledger": self.ledger.state_dict(),
            "logfile": list(self._logfile),
            "last_snapshot_counts": dict(self._last_snapshot_counts),
            "sensor_cache": dict(self._sensor_cache),
            "counter_cache": dict(self._counter_cache),
            "flagged": sorted(self._flagged),
            "stalled": self.stalled,
            "last_refresh_s": self._last_refresh_s,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self.ledger.load_state_dict(state["ledger"])  # type: ignore[arg-type]
        self._logfile = [str(line) for line in state["logfile"]]  # type: ignore[union-attr]
        self._last_snapshot_counts = {
            str(k): int(v) for k, v
            in state["last_snapshot_counts"].items()}  # type: ignore[union-attr]
        self._sensor_cache = {str(k): float(v) for k, v
                              in state["sensor_cache"].items()}  # type: ignore[union-attr]
        self._counter_cache = {str(k): float(v) for k, v
                               in state["counter_cache"].items()}  # type: ignore[union-attr]
        self._flagged = {str(c) for c in state["flagged"]}  # type: ignore[union-attr]
        self.stalled = bool(state["stalled"])
        self._last_refresh_s = float(state["last_refresh_s"])  # type: ignore[arg-type]

    # -- event-driven services ---------------------------------------------------

    def _record(self, fault: FaultRecord) -> None:
        self.ledger.record(fault)
        self.metrics.inc("daemons.healthlog.events")
        self.metrics.inc(
            f"daemons.healthlog.{fault.fault_class.value}")
        self._append_log(
            f"t={fault.timestamp:.3f} {fault.fault_class.value} "
            f"{fault.component} {fault.detail}"
        )
        self._check_threshold(fault.component, fault.timestamp)

    def _on_correctable(self, event: CorrectableErrorEvent) -> None:
        self._record(FaultRecord(
            timestamp=event.timestamp, fault_class=FaultClass.CORRECTABLE,
            origin=FaultOrigin.UNKNOWN, component=event.component,
            detail=event.detail,
        ))

    def _on_uncorrectable(self, event: UncorrectableErrorEvent) -> None:
        self._record(FaultRecord(
            timestamp=event.timestamp, fault_class=FaultClass.UNCORRECTABLE,
            origin=FaultOrigin.UNKNOWN, component=event.component,
            detail=event.detail,
        ))

    def _on_crash(self, event: CrashEvent) -> None:
        self._record(FaultRecord(
            timestamp=event.timestamp, fault_class=FaultClass.CRASH,
            origin=FaultOrigin.UNKNOWN, component=event.component,
            operating_point=event.operating_point,
        ))

    def _on_sensor(self, event: SensorEvent) -> None:
        self._sensor_cache[event.sensor] = event.value

    def _check_threshold(self, component: str, timestamp: float) -> None:
        """Raise an anomaly when a component exceeds the error budget."""
        since = timestamp - self.config.error_window_s
        count = self.ledger.count(component=component, since=since)
        if count >= self.config.error_threshold and component not in self._flagged:
            self._flagged.add(component)
            self.metrics.inc("daemons.healthlog.anomalies")
            self.bus.publish(AnomalyEvent(
                timestamp=timestamp, source="healthlog",
                description=(
                    f"component {component} logged {count} errors within "
                    f"{self.config.error_window_s:.0f}s; stress re-test advised"
                ),
                severity="critical",
                component=component,
            ))

    def clear_flag(self, component: str) -> None:
        """Re-arm the anomaly trigger (after a StressLog cycle handled it)."""
        self._flagged.discard(component)

    def update_counters(self, counters: Dict[str, float]) -> None:
        """Fold fresh performance counters into the next snapshot."""
        self._counter_cache.update(counters)

    # -- on-demand services --------------------------------------------------------

    def info_vector_age_s(self) -> float:
        """Age of the newest info-vector refresh (grows while stalled)."""
        return max(0.0, self.clock.now - self._last_refresh_s)

    def snapshot(self) -> InfoVector:
        """On-demand service: the current information vector.

        Error counts are deltas since the previous snapshot, matching a
        logfile reader consuming incremental vectors.
        """
        by_class = self.ledger.counts_by_class()
        totals = {
            "ce": by_class.get(FaultClass.CORRECTABLE, 0),
            "ue": by_class.get(FaultClass.UNCORRECTABLE, 0)
            + by_class.get(FaultClass.SILENT_DATA_CORRUPTION, 0),
            "crash": by_class.get(FaultClass.CRASH, 0),
        }
        delta = {k: totals[k] - self._last_snapshot_counts[k] for k in totals}
        self._last_snapshot_counts = totals

        configuration = {
            f"core{core.core_id}": self.platform.core_point(
                core.core_id).describe()
            for core in self.platform.chip.cores
        }
        for domain in self.platform.memory.domains():
            configuration[domain.name] = (
                f"refresh {domain.refresh_interval_s * 1e3:.0f} ms"
            )

        suspects = tuple(self.ledger.components_above_threshold(
            self.config.error_threshold,
            since=self.clock.now - self.config.error_window_s,
        ))
        return InfoVector(
            timestamp=self.clock.now,
            node=self.platform.name,
            configuration=configuration,
            correctable_errors=delta["ce"],
            uncorrectable_errors=delta["ue"],
            crashes=delta["crash"],
            sensors=dict(self._sensor_cache),
            counters=dict(self._counter_cache),
            suspect_components=suspects,
        )

    # -- logfile ---------------------------------------------------------------

    def _append_log(self, line: str) -> None:
        self._logfile.append(line)
        if len(self._logfile) > self.config.logfile_limit:
            del self._logfile[: len(self._logfile) - self.config.logfile_limit]

    @property
    def logfile(self) -> List[str]:
        """The retained logfile lines (most recent last)."""
        return list(self._logfile)
