"""DRAM test patterns for the refresh-relaxation campaign.

The paper's Section 6.B uses "random test patterns" while sweeping refresh
rates.  A pattern determines what fraction of cells sit in their
leak-vulnerable state (a DRAM cell only loses data when it stores the
charge level that decays — true-cells lose 1s, anti-cells lose 0s; devices
mix both orientations roughly half/half).

Coverage values:

* ``random`` — every cell holds a random bit: ≈50 % of cells vulnerable,
  and every pass re-randomises, so repeated passes approach full coverage.
* ``all_ones`` / ``all_zeros`` — exactly the true- or anti-cell half.
* ``checkerboard`` — alternating bits; same 50 % but spatially adversarial
  (worst-case coupling noise), modelled with a small coverage bonus.
* ``marching`` — a march test that writes both polarities per pass:
  full coverage per pass, the gold standard for retention profiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class TestPattern:
    """One DRAM data-retention test pattern.

    ``coverage`` is the per-pass fraction of cells observed in their
    vulnerable state; ``passes_to_full`` how many independent passes reach
    ≈full coverage (march tests need one; random data needs several).
    """

    name: str
    coverage: float
    passes_to_full: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage <= 1.0:
            raise ConfigurationError("coverage must be in (0, 1]")
        if self.passes_to_full < 1:
            raise ConfigurationError("passes_to_full must be >= 1")

    def cumulative_coverage(self, passes: int) -> float:
        """Coverage achieved after ``passes`` independent passes.

        Random-style patterns gain coverage geometrically; deterministic
        patterns saturate at their single-pass coverage.
        """
        if passes < 1:
            raise ConfigurationError("passes must be >= 1")
        if self.passes_to_full == 1:
            return self.coverage
        miss = (1.0 - self.coverage) ** passes
        return 1.0 - miss


RANDOM = TestPattern(
    "random", coverage=0.5, passes_to_full=8,
    description="Uniform random data, re-randomised per pass (paper 6.B).",
)
ALL_ONES = TestPattern(
    "all_ones", coverage=0.5,
    description="Solid 1s: exercises true-cells only.",
)
ALL_ZEROS = TestPattern(
    "all_zeros", coverage=0.5,
    description="Solid 0s: exercises anti-cells only.",
)
CHECKERBOARD = TestPattern(
    "checkerboard", coverage=0.55,
    description="Alternating bits, adversarial coupling noise.",
)
MARCHING = TestPattern(
    "marching", coverage=1.0,
    description="March test writing both polarities: full coverage.",
)

ALL_PATTERNS = (RANDOM, ALL_ONES, ALL_ZEROS, CHECKERBOARD, MARCHING)


def pattern_by_name(name: str) -> TestPattern:
    """Look a pattern up by its name."""
    for p in ALL_PATTERNS:
        if p.name == name:
            return p
    raise KeyError(
        f"unknown pattern {name!r}; choose from "
        f"{', '.join(p.name for p in ALL_PATTERNS)}"
    )


def generate_pattern_data(pattern: TestPattern, n_words: int,
                          seed: int = 0) -> np.ndarray:
    """Materialise ``n_words`` 64-bit words of the pattern's data.

    Used by tests that drive actual words through the SECDED codec; the
    statistical campaigns only need the coverage numbers.
    """
    if n_words < 0:
        raise ConfigurationError("n_words must be non-negative")
    rng = np.random.default_rng(seed)
    if pattern.name == "random":
        return rng.integers(0, 2 ** 63, size=n_words, dtype=np.uint64) * 2 \
            + rng.integers(0, 2, size=n_words, dtype=np.uint64)
    if pattern.name == "all_ones":
        return np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    if pattern.name == "all_zeros":
        return np.zeros(n_words, dtype=np.uint64)
    if pattern.name == "checkerboard":
        data = np.empty(n_words, dtype=np.uint64)
        data[0::2] = np.uint64(0xAAAAAAAAAAAAAAAA)
        data[1::2] = np.uint64(0x5555555555555555)
        return data
    if pattern.name == "marching":
        data = np.empty(n_words, dtype=np.uint64)
        data[0::2] = np.uint64(0xFFFFFFFFFFFFFFFF)
        data[1::2] = np.uint64(0)
        return data
    raise ConfigurationError(f"no generator for pattern {pattern.name!r}")
