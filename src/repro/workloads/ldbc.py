"""LDBC Social Network Benchmark-like graph database workload.

The paper's Figure 3 measures the hypervisor memory footprint while four
VMs run "a graph database benchmark (LDBC Social Network Benchmark on top
of Sparksee)".  This module is the workload substitute: a scaled-down but
*functional* social-network benchmark —

* a generated social graph (persons with power-law friendships, forums,
  posts) built on :mod:`networkx`;
* an interactive query mix modelled on LDBC SNB Interactive: complex reads
  (friends-of-friends search, shortest friendship paths, popular content
  in a community), short reads (profile/post lookups) and updates (new
  posts, new friendships);
* a driver that executes the mix and reports operation counts, plus a
  memory-demand trace (load ramp, then query-phase fluctuation) used by
  the VM layer to reproduce Figure 3's footprint dynamics.

The benchmark "stresses the CPU, disk I/O and network" (paper Section 6.C),
reflected in the resource demand attached to the generated workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..core.exceptions import ConfigurationError
from .base import ResourceDemand, StressProfile, Workload

#: Stress profile of an LDBC-style graph workload: memory/IO heavy,
#: moderate droop, irregular access patterns hammering the caches.
LDBC_PROFILE = StressProfile(
    droop_intensity=0.30, core_sensitivity=0.55, activity_factor=0.50,
    cache_pressure=0.90, dram_pressure=0.85,
)


@dataclass
class SocialGraph:
    """A generated LDBC-like social network.

    ``graph`` holds person vertices with friendship edges; ``posts`` maps
    each person to their post ids; ``forums`` groups persons into
    communities.
    """

    graph: nx.Graph
    posts: Dict[int, List[int]]
    forums: List[List[int]]

    @property
    def n_persons(self) -> int:
        """Number of person vertices."""
        return self.graph.number_of_nodes()

    @property
    def n_friendships(self) -> int:
        """Number of friendship edges."""
        return self.graph.number_of_edges()

    @property
    def n_posts(self) -> int:
        """Total posts across all persons."""
        return sum(len(p) for p in self.posts.values())

    def estimated_size_mb(self) -> float:
        """Rough in-memory size of the database (vertices/edges/posts)."""
        return (self.n_persons * 0.4 + self.n_friendships * 0.1
                + self.n_posts * 0.008) / 1024.0 * 1024.0 / 1024.0 * 1024


def generate_social_graph(scale_factor: float = 1.0,
                          seed: int = 0) -> SocialGraph:
    """Generate a social network at a given scale factor.

    Scale factor 1 ≈ 3 000 persons; the LDBC degree distribution is
    approximated by a powerlaw-cluster graph (heavy-tailed with
    triangles, like real friendships).
    """
    if scale_factor <= 0:
        raise ConfigurationError("scale_factor must be positive")
    rng = np.random.default_rng(seed)
    n_persons = max(50, int(3000 * scale_factor))
    graph = nx.powerlaw_cluster_graph(n_persons, m=5, p=0.3, seed=seed)

    posts: Dict[int, List[int]] = {}
    next_post = 0
    # Post counts follow activity ~ degree (hubs post more).
    for person in graph.nodes:
        activity = 1 + graph.degree(person) // 3
        count = int(rng.poisson(activity))
        posts[person] = list(range(next_post, next_post + count))
        next_post += count

    # Forums: greedy modularity communities as the membership structure.
    communities = nx.algorithms.community.greedy_modularity_communities(
        graph, cutoff=5, best_n=20
    )
    forums = [sorted(c) for c in communities]
    return SocialGraph(graph=graph, posts=posts, forums=forums)


@dataclass(frozen=True)
class QueryStats:
    """Execution counts of one driver session."""

    complex_reads: int
    short_reads: int
    updates: int
    vertices_touched: int

    @property
    def total_operations(self) -> int:
        """All operations executed in the session."""
        return self.complex_reads + self.short_reads + self.updates


class InteractiveDriver:
    """Executes an LDBC-SNB-Interactive-like query mix on a social graph.

    The default mix follows the benchmark's spirit: short reads dominate,
    complex reads are rarer but touch far more data, updates trickle in.
    """

    def __init__(self, database: SocialGraph, seed: int = 0,
                 mix: Tuple[float, float, float] = (0.1, 0.8, 0.1)) -> None:
        if abs(sum(mix) - 1.0) > 1e-9:
            raise ConfigurationError("query mix must sum to 1")
        self.database = database
        self._rng = np.random.default_rng(seed)
        self._mix = mix
        self._next_post = database.n_posts

    # -- complex reads -------------------------------------------------------

    def friends_of_friends(self, person: int) -> List[int]:
        """IC-1-like: persons within 2 hops, excluding the start."""
        g = self.database.graph
        level1 = set(g.neighbors(person))
        level2 = set()
        for friend in level1:
            level2.update(g.neighbors(friend))
        level2 -= level1
        level2.discard(person)
        return sorted(level2)

    def friendship_path(self, a: int, b: int) -> Optional[List[int]]:
        """IC-13-like: shortest friendship path between two persons."""
        try:
            return nx.shortest_path(self.database.graph, a, b)
        except nx.NetworkXNoPath:
            return None

    def popular_in_forum(self, forum_index: int, top_k: int = 5) -> List[int]:
        """IC-5-like: the forum members with the most posts."""
        forums = self.database.forums
        if not 0 <= forum_index < len(forums):
            raise ConfigurationError("forum index out of range")
        members = forums[forum_index]
        ranked = sorted(
            members, key=lambda p: len(self.database.posts.get(p, [])),
            reverse=True,
        )
        return ranked[:top_k]

    # -- short reads / updates -------------------------------------------------

    def person_profile(self, person: int) -> Dict[str, int]:
        """IS-1-like: degree and post count of a person."""
        return {
            "person": person,
            "friends": self.database.graph.degree(person),
            "posts": len(self.database.posts.get(person, [])),
        }

    def add_post(self, person: int) -> int:
        """IU-6-like: insert a new post for a person."""
        post_id = self._next_post
        self._next_post += 1
        self.database.posts.setdefault(person, []).append(post_id)
        return post_id

    def add_friendship(self, a: int, b: int) -> bool:
        """IU-8-like: create a friendship; returns False if it existed."""
        g = self.database.graph
        if g.has_edge(a, b) or a == b:
            return False
        g.add_edge(a, b)
        return True

    # -- the driver loop -------------------------------------------------------

    def run_session(self, n_operations: int = 200) -> QueryStats:
        """Execute a session of ``n_operations`` mixed queries."""
        if n_operations < 1:
            raise ConfigurationError("n_operations must be >= 1")
        persons = list(self.database.graph.nodes)
        complex_reads = short_reads = updates = vertices = 0
        for _ in range(n_operations):
            kind = self._rng.choice(3, p=self._mix)
            person = int(self._rng.choice(persons))
            if kind == 0:
                pick = self._rng.random()
                if pick < 0.5:
                    vertices += len(self.friends_of_friends(person))
                elif pick < 0.8:
                    other = int(self._rng.choice(persons))
                    path = self.friendship_path(person, other)
                    vertices += len(path) if path else 0
                else:
                    forum = int(self._rng.integers(len(self.database.forums)))
                    vertices += len(self.popular_in_forum(forum))
                complex_reads += 1
            elif kind == 1:
                self.person_profile(person)
                vertices += 1
                short_reads += 1
            else:
                if self._rng.random() < 0.7:
                    self.add_post(person)
                else:
                    other = int(self._rng.choice(persons))
                    self.add_friendship(person, other)
                updates += 1
        return QueryStats(
            complex_reads=complex_reads, short_reads=short_reads,
            updates=updates, vertices_touched=vertices,
        )


def memory_trace_mb(database_mb: float, n_steps: int, seed: int = 0,
                    load_fraction: float = 0.25,
                    churn_fraction: float = 0.08,
                    baseline_fraction: float = 0.35) -> np.ndarray:
    """The application's memory footprint over one benchmark execution.

    Phase 1 (``load_fraction`` of the steps): the database loads — memory
    ramps from the runtime baseline (process image plus page cache warmed
    by the on-disk database) up to the working set.  Phase 2: the
    interactive mix runs — footprint fluctuates with query buffers and
    grows slowly as updates accumulate.  This is the shape Figure 3 plots
    for the application series.
    """
    if n_steps < 2:
        raise ConfigurationError("n_steps must be >= 2")
    if not 0.0 < baseline_fraction < 1.0:
        raise ConfigurationError("baseline_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    baseline = database_mb * baseline_fraction
    trace = np.empty(n_steps)
    load_steps = max(1, int(n_steps * load_fraction))
    for i in range(load_steps):
        t = (i + 1) / load_steps
        trace[i] = baseline + (database_mb - baseline) * t
    growth = database_mb * 0.10
    for i in range(load_steps, n_steps):
        progress = (i - load_steps) / max(1, n_steps - load_steps)
        wobble = rng.normal(0.0, database_mb * churn_fraction / 3)
        trace[i] = database_mb + growth * progress + wobble
    return np.maximum(trace, baseline)


def ldbc_workload(scale_factor: float = 1.0,
                  duration_cycles: float = 5e10) -> Workload:
    """The LDBC-like benchmark as a schedulable workload."""
    database_mb = 600.0 * scale_factor
    return Workload(
        name=f"ldbc_snb_sf{scale_factor:g}",
        profile=LDBC_PROFILE,
        demand=ResourceDemand(
            cpu_cores=2.0, memory_mb=database_mb * 1.3,
            disk_iops=800.0 * scale_factor, network_mbps=120.0,
        ),
        duration_cycles=duration_cycles,
        description="LDBC SNB-like interactive graph workload (Figure 3).",
    )
