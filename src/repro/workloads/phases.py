"""Phased workloads: stress profiles that change during execution.

Real programs are not stationary — SPEC-class codes alternate compute,
memory and I/O phases, and the paper's EOPs "may dynamically change
depending on the workload" (Section 4.A).  A phased workload carries a
sequence of (profile, duration-fraction) phases; the hypervisor samples
``profile_at(progress)`` each tick, so a guest that enters a droop-heavy
phase genuinely becomes riskier mid-run — exactly the dynamism the
Predictor and HealthLog exist to track.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from .base import ResourceDemand, StressProfile, Workload


@dataclass(frozen=True)
class Phase:
    """One execution phase: a profile active for a fraction of the run."""

    profile: StressProfile
    fraction: float
    name: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError("phase fraction must be in (0, 1]")


@dataclass(frozen=True)
class PhasedWorkload(Workload):
    """A workload whose stress profile varies over its execution.

    ``profile`` (the base-class field) holds the *duration-weighted
    average* profile, so every consumer that treats the workload as
    stationary (power estimates, scheduling heuristics) sees a sensible
    summary; phase-aware consumers call :meth:`profile_at`.
    """

    phases: Tuple[Phase, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.phases:
            raise ConfigurationError("a phased workload needs phases")
        total = sum(p.fraction for p in self.phases)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"phase fractions must sum to 1, got {total}"
            )

    def profile_at(self, progress: float) -> StressProfile:
        """The active profile at a completed-fraction in [0, 1]."""
        if not 0.0 <= progress <= 1.0:
            raise ConfigurationError("progress must be in [0, 1]")
        cumulative = 0.0
        for phase in self.phases:
            cumulative += phase.fraction
            if progress < cumulative or cumulative >= 1.0 - 1e-12:
                return phase.profile
        return self.phases[-1].profile

    def phase_at(self, progress: float) -> Phase:
        """The active phase object (for reporting)."""
        if not 0.0 <= progress <= 1.0:
            raise ConfigurationError("progress must be in [0, 1]")
        cumulative = 0.0
        for phase in self.phases:
            cumulative += phase.fraction
            if progress < cumulative:
                return phase
        return self.phases[-1]

    def worst_phase(self) -> Phase:
        """The most stressful phase — what a safe margin must survive."""
        return max(self.phases, key=lambda p: p.profile.overall_stress())


def _weighted_mean_profile(phases: Sequence[Phase]) -> StressProfile:
    def mean(attribute: str) -> float:
        """Current EWMA mean."""
        return sum(getattr(p.profile, attribute) * p.fraction
                   for p in phases)

    return StressProfile(
        droop_intensity=mean("droop_intensity"),
        core_sensitivity=mean("core_sensitivity"),
        activity_factor=mean("activity_factor"),
        cache_pressure=mean("cache_pressure"),
        dram_pressure=mean("dram_pressure"),
    )


def make_phased(name: str, phases: Sequence[Phase],
                duration_cycles: float = 2e10,
                demand: Optional[ResourceDemand] = None,
                description: str = "") -> PhasedWorkload:
    """Build a phased workload; the summary profile is duration-weighted."""
    if not phases:
        raise ConfigurationError("need at least one phase")
    return PhasedWorkload(
        name=name,
        profile=_weighted_mean_profile(phases),
        demand=demand or ResourceDemand(),
        duration_cycles=duration_cycles,
        description=description,
        phases=tuple(phases),
    )


def compress_style_workload(name: str = "phased_compress",
                            duration_cycles: float = 2e10,
                            ) -> PhasedWorkload:
    """A bzip2-like read/compress/write phase structure."""
    read = StressProfile(0.10, 0.45, 0.30, 0.60, 0.85)
    compress = StressProfile(0.55, 0.70, 0.85, 0.65, 0.30)
    write = StressProfile(0.15, 0.45, 0.35, 0.45, 0.80)
    return make_phased(
        name,
        [Phase(read, 0.2, "read"), Phase(compress, 0.6, "compress"),
         Phase(write, 0.2, "write")],
        duration_cycles=duration_cycles,
        description="Read / compress / write phase alternation.",
    )


def burst_style_workload(name: str = "phased_burst",
                         duration_cycles: float = 2e10,
                         quiet_fraction: float = 0.7,
                         cycles: int = 1) -> PhasedWorkload:
    """A mostly-quiet service with droop-heavy burst phases.

    The nasty case for static per-workload margins: the *average*
    profile looks benign, the burst phases do not.  ``cycles`` repeats
    the quiet/burst alternation, so bursts recur throughout the run
    rather than arriving once at the end.
    """
    if not 0.0 < quiet_fraction < 1.0:
        raise ConfigurationError("quiet_fraction must be in (0, 1)")
    if cycles < 1:
        raise ConfigurationError("cycles must be >= 1")
    quiet = StressProfile(0.08, 0.45, 0.20, 0.30, 0.25)
    burst = StressProfile(0.78, 0.88, 0.90, 0.55, 0.40)
    phases = []
    for i in range(cycles):
        phases.append(Phase(quiet, quiet_fraction / cycles,
                            f"quiet{i}"))
        phases.append(Phase(burst, (1.0 - quiet_fraction) / cycles,
                            f"burst{i}"))
    return make_phased(
        name, phases,
        duration_cycles=duration_cycles,
        description="Quiet service with periodic compute bursts.",
    )
