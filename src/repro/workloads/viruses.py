"""Hand-coded diagnostic stress viruses.

Section 3.B: stress tests use "diagnostic viruses" that "cause maximum
voltage noise, power consumption and error rates", representing "a
pathogenic worst case scenario that is unlikely to be encountered in
real-life workloads".  The StressLog runs them during pre-deployment and
periodic re-characterisation, because margins that survive a virus are
safe (with headroom) for real workloads.

Three classic hand-coded kernels are modelled; the GA of
:mod:`repro.workloads.genetic` evolves stronger ones from these seeds.
"""

from __future__ import annotations

from typing import List

from .base import ResourceDemand, StressProfile, Workload, WorkloadSuite

#: Power virus: saturates every execution port — maximum activity and
#: near-worst droop (dI/dt steps as execution bursts align).
CPU_POWER_VIRUS = Workload(
    name="cpu_power_virus",
    profile=StressProfile(
        droop_intensity=0.92, core_sensitivity=0.93, activity_factor=0.98,
        cache_pressure=0.30, dram_pressure=0.10,
    ),
    demand=ResourceDemand(cpu_cores=1.0, memory_mb=64.0),
    duration_cycles=5e9,
    description="Hand-coded dI/dt power virus saturating execution ports.",
)

#: Resonance virus: alternates compute bursts with stalls at the power
#: delivery network's resonant frequency — the worst droop generator.
DROOP_RESONANCE_VIRUS = Workload(
    name="droop_resonance_virus",
    profile=StressProfile(
        droop_intensity=0.97, core_sensitivity=0.90, activity_factor=0.80,
        cache_pressure=0.20, dram_pressure=0.05,
    ),
    demand=ResourceDemand(cpu_cores=1.0, memory_mb=64.0),
    duration_cycles=5e9,
    description="Burst/stall kernel tuned to the PDN resonant frequency.",
)

#: Cache thrash virus: maximum SRAM toggling for ECC-error exposure.
CACHE_THRASH_VIRUS = Workload(
    name="cache_thrash_virus",
    profile=StressProfile(
        droop_intensity=0.70, core_sensitivity=0.80, activity_factor=0.75,
        cache_pressure=0.98, dram_pressure=0.60,
    ),
    demand=ResourceDemand(cpu_cores=1.0, memory_mb=256.0),
    duration_cycles=5e9,
    description="Pointer-walk kernel thrashing every cache level.",
)

#: DRAM hammer virus: maximum row activations and bandwidth.
DRAM_HAMMER_VIRUS = Workload(
    name="dram_hammer_virus",
    profile=StressProfile(
        droop_intensity=0.50, core_sensitivity=0.60, activity_factor=0.55,
        cache_pressure=0.80, dram_pressure=0.98,
    ),
    demand=ResourceDemand(cpu_cores=1.0, memory_mb=2048.0),
    duration_cycles=5e9,
    description="Streaming kernel maximising DRAM activations.",
)

ALL_VIRUSES = (
    CPU_POWER_VIRUS,
    DROOP_RESONANCE_VIRUS,
    CACHE_THRASH_VIRUS,
    DRAM_HAMMER_VIRUS,
)


def virus_suite() -> WorkloadSuite:
    """The hand-coded stress-virus suite used as the StressLog default."""
    return WorkloadSuite("hand_coded_viruses", list(ALL_VIRUSES))


def combined_stress_suite(extra: List[Workload] = ()) -> WorkloadSuite:
    """Viruses plus any extra kernels (e.g. GA-evolved champions)."""
    return WorkloadSuite(
        "stresslog_suite", list(ALL_VIRUSES) + list(extra)
    )
