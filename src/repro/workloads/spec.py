"""SPEC CPU2006-like benchmark suite.

The paper's Table 2 campaign uses 8 benchmarks "with diverse behaviors"
from SPEC CPU2006: bzip2, mcf, namd, milc, hmmer, h264ref, gobmk, zeusmp.
We model each by a stress profile consistent with its published
characterisation:

* **mcf** — pointer-chasing, memory-latency bound: low activity, low
  droop, heavy DRAM pressure.
* **gobmk** — branchy game-tree search: low-to-moderate everything, the
  least core-to-core exposure.
* **bzip2** — integer compression: moderate activity and cache pressure.
* **hmmer** — profile HMM search: high IPC integer compute.
* **h264ref** — video encoding: intense integer SIMD-like compute.
* **milc** — lattice QCD: floating-point plus heavy memory traffic.
* **namd** — molecular dynamics: dense floating-point, high droop.
* **zeusmp** — CFD: the most stressful of the eight, high droop and high
  core-sensitivity (wide FP datapaths exercise the most critical paths).

Droop intensities span ≈0.05–0.8 and core sensitivities ≈0.45–0.9 of the
platform worst case; hand-coded and GA-evolved viruses occupy the range
above (Section 3.B: real-life workloads are gentler than viruses).
"""

from __future__ import annotations

from typing import Dict

from .base import ResourceDemand, StressProfile, Workload, WorkloadSuite

_PROFILES: Dict[str, StressProfile] = {
    "bzip2": StressProfile(
        droop_intensity=0.35, core_sensitivity=0.60, activity_factor=0.55,
        cache_pressure=0.60, dram_pressure=0.35,
    ),
    "mcf": StressProfile(
        droop_intensity=0.05, core_sensitivity=0.50, activity_factor=0.25,
        cache_pressure=0.85, dram_pressure=0.90,
    ),
    "namd": StressProfile(
        droop_intensity=0.70, core_sensitivity=0.85, activity_factor=0.85,
        cache_pressure=0.35, dram_pressure=0.20,
    ),
    "milc": StressProfile(
        droop_intensity=0.55, core_sensitivity=0.75, activity_factor=0.60,
        cache_pressure=0.70, dram_pressure=0.75,
    ),
    "hmmer": StressProfile(
        droop_intensity=0.45, core_sensitivity=0.65, activity_factor=0.80,
        cache_pressure=0.40, dram_pressure=0.15,
    ),
    "h264ref": StressProfile(
        droop_intensity=0.60, core_sensitivity=0.70, activity_factor=0.75,
        cache_pressure=0.50, dram_pressure=0.30,
    ),
    "gobmk": StressProfile(
        droop_intensity=0.15, core_sensitivity=0.45, activity_factor=0.45,
        cache_pressure=0.55, dram_pressure=0.25,
    ),
    "zeusmp": StressProfile(
        droop_intensity=0.80, core_sensitivity=0.90, activity_factor=0.90,
        cache_pressure=0.65, dram_pressure=0.55,
    ),
}

_DESCRIPTIONS: Dict[str, str] = {
    "bzip2": "Integer compression (SPECint).",
    "mcf": "Combinatorial optimisation, memory-latency bound (SPECint).",
    "namd": "Molecular dynamics, dense floating point (SPECfp).",
    "milc": "Lattice QCD, FP with heavy memory traffic (SPECfp).",
    "hmmer": "Profile HMM sequence search, high-IPC integer (SPECint).",
    "h264ref": "H.264 video encoding, intense integer compute (SPECint).",
    "gobmk": "Go game-tree search, branchy control flow (SPECint).",
    "zeusmp": "Computational fluid dynamics, the most stressful (SPECfp).",
}

#: Benchmark order used in the paper's experiments and our tables.
SPEC_NAMES = ("bzip2", "mcf", "namd", "milc", "hmmer", "h264ref",
              "gobmk", "zeusmp")


def spec_workload(name: str, duration_cycles: float = 2e10) -> Workload:
    """One SPEC-like benchmark by name."""
    if name not in _PROFILES:
        raise KeyError(
            f"unknown SPEC benchmark {name!r}; choose from {SPEC_NAMES}"
        )
    return Workload(
        name=name,
        profile=_PROFILES[name],
        demand=ResourceDemand(cpu_cores=1.0, memory_mb=850.0),
        duration_cycles=duration_cycles,
        description=_DESCRIPTIONS[name],
    )


def spec_suite(duration_cycles: float = 2e10) -> WorkloadSuite:
    """The 8-benchmark suite of the paper's Table 2 campaign."""
    return WorkloadSuite(
        "spec_cpu2006_subset",
        [spec_workload(name, duration_cycles) for name in SPEC_NAMES],
    )
