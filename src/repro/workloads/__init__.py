"""Workload substrate: SPEC-like benchmarks, stress viruses, graph workloads.

Every consumer of a workload — crash models, power models, the hypervisor
and the scheduler — sees the same :class:`~repro.workloads.base.Workload`
abstraction carrying a stress profile and a resource demand.
"""

from .base import (
    IDLE,
    IDLE_PROFILE,
    ResourceDemand,
    StressProfile,
    Workload,
    WorkloadSuite,
)
from .genetic import (
    GAConfig,
    GAResult,
    GENE_NAMES,
    GENOME_LENGTH,
    VirusEvolver,
    crash_voltage_fitness,
    evolve_virus_for_chip,
    genome_to_profile,
    genome_to_workload,
    physical_genome_to_profile,
)
from .ldbc import (
    InteractiveDriver,
    LDBC_PROFILE,
    QueryStats,
    SocialGraph,
    generate_social_graph,
    ldbc_workload,
    memory_trace_mb,
)
from .patterns import (
    ALL_PATTERNS,
    ALL_ONES,
    ALL_ZEROS,
    CHECKERBOARD,
    MARCHING,
    RANDOM,
    TestPattern,
    generate_pattern_data,
    pattern_by_name,
)
from .spec import SPEC_NAMES, spec_suite, spec_workload
from .viruses import (
    ALL_VIRUSES,
    CACHE_THRASH_VIRUS,
    CPU_POWER_VIRUS,
    DRAM_HAMMER_VIRUS,
    DROOP_RESONANCE_VIRUS,
    combined_stress_suite,
    virus_suite,
)
from .traces import (
    ArrivalEvent,
    TraceConfig,
    TraceGenerator,
    arrivals_per_hour,
)

from .phases import (
    Phase,
    PhasedWorkload,
    burst_style_workload,
    compress_style_workload,
    make_phased,
)

__all__ = [
    "Phase", "PhasedWorkload", "burst_style_workload", "compress_style_workload", "make_phased",
    "ArrivalEvent", "TraceConfig", "TraceGenerator", "arrivals_per_hour",
    "IDLE", "IDLE_PROFILE", "ResourceDemand", "StressProfile", "Workload",
    "WorkloadSuite",
    "GAConfig", "GAResult", "GENE_NAMES", "GENOME_LENGTH", "VirusEvolver",
    "crash_voltage_fitness", "evolve_virus_for_chip", "genome_to_profile",
    "genome_to_workload", "physical_genome_to_profile",
    "InteractiveDriver", "LDBC_PROFILE", "QueryStats", "SocialGraph",
    "generate_social_graph", "ldbc_workload", "memory_trace_mb",
    "ALL_PATTERNS", "ALL_ONES", "ALL_ZEROS", "CHECKERBOARD", "MARCHING",
    "RANDOM", "TestPattern", "generate_pattern_data", "pattern_by_name",
    "SPEC_NAMES", "spec_suite", "spec_workload",
    "ALL_VIRUSES", "CACHE_THRASH_VIRUS", "CPU_POWER_VIRUS",
    "DRAM_HAMMER_VIRUS", "DROOP_RESONANCE_VIRUS", "combined_stress_suite",
    "virus_suite",
]
