"""Workload abstraction and stress profiles.

A workload, as far as the hardware models are concerned, is a *stress
profile*: how much voltage noise it induces, how active it keeps the
pipeline, how hard it hits the caches and DRAM.  The same profile drives
four consumers:

* the CPU crash model (droop intensity moves the effective crash voltage),
* the cache/DRAM error models (activity scales exposure),
* the power model (activity factor), and
* the hypervisor/VM layer (cpu/memory/io demand over time).

Concrete suites live in :mod:`repro.workloads.spec` (SPEC CPU2006-like),
:mod:`repro.workloads.viruses` (hand-coded stress kernels),
:mod:`repro.workloads.genetic` (GA-evolved viruses) and
:mod:`repro.workloads.ldbc` (graph database workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class StressProfile:
    """How hard a workload stresses each hardware subsystem.

    All intensities are fractions of the worst the platform can
    experience; a hand-tuned power virus approaches 1.0 on its target
    subsystem, while an idle system sits near 0.

    Parameters
    ----------
    droop_intensity:
        Voltage-noise severity (di/dt events); scales the supply droop the
        crash model applies.
    core_sensitivity:
        How strongly the workload exposes core-to-core Vmin differences
        (0 = crash voltage identical on every core, 1 = full exposure).
        Control-heavy codes with shallow pipelines expose less variation
        than wide floating-point codes.
    activity_factor:
        Pipeline switching activity, used by the dynamic power model.
    cache_pressure:
        Cache utilisation/thrash level; scales SECDED error exposure.
    dram_pressure:
        DRAM bandwidth demand; scales retention-error exposure per access.
    """

    droop_intensity: float
    core_sensitivity: float
    activity_factor: float
    cache_pressure: float
    dram_pressure: float

    def __post_init__(self) -> None:
        for name in ("droop_intensity", "core_sensitivity", "activity_factor",
                     "cache_pressure", "dram_pressure"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    def overall_stress(self) -> float:
        """A scalar summary used to rank workloads by severity."""
        return (0.4 * self.droop_intensity + 0.3 * self.activity_factor
                + 0.2 * self.cache_pressure + 0.1 * self.dram_pressure)

    def blend(self, other: "StressProfile", weight: float) -> "StressProfile":
        """Linear blend with another profile (``weight`` toward ``other``)."""
        if not 0.0 <= weight <= 1.0:
            raise ConfigurationError("weight must be in [0, 1]")

        def mix(a: float, b: float) -> float:
            """Linear interpolation between the two values."""
            return a * (1 - weight) + b * weight

        return StressProfile(
            droop_intensity=mix(self.droop_intensity, other.droop_intensity),
            core_sensitivity=mix(self.core_sensitivity, other.core_sensitivity),
            activity_factor=mix(self.activity_factor, other.activity_factor),
            cache_pressure=mix(self.cache_pressure, other.cache_pressure),
            dram_pressure=mix(self.dram_pressure, other.dram_pressure),
        )


@dataclass(frozen=True)
class ResourceDemand:
    """Average resource demand of a workload when run inside a VM."""

    cpu_cores: float = 1.0
    memory_mb: float = 512.0
    disk_iops: float = 0.0
    network_mbps: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cpu_cores", "memory_mb", "disk_iops", "network_mbps"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class Workload:
    """A named workload with its stress profile and resource demand.

    ``duration_cycles`` is the nominal amount of work one run represents,
    used by the power/energy models and the VM scheduler.
    """

    name: str
    profile: StressProfile
    demand: ResourceDemand = ResourceDemand()
    duration_cycles: float = 1e10
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload needs a name")
        if self.duration_cycles <= 0:
            raise ConfigurationError("duration_cycles must be positive")

    def scaled(self, factor: float) -> "Workload":
        """The same workload with ``factor``× the work (e.g. bigger input)."""
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        return replace(self, duration_cycles=self.duration_cycles * factor)

    def profile_at(self, progress: float) -> StressProfile:
        """The stress profile at a completed-fraction of the run.

        Stationary workloads return their single profile; phased
        workloads (:mod:`repro.workloads.phases`) override this with the
        active phase's profile.
        """
        if not 0.0 <= progress <= 1.0:
            raise ConfigurationError("progress must be in [0, 1]")
        return self.profile


class WorkloadSuite:
    """An ordered, name-addressable collection of workloads."""

    def __init__(self, name: str, workloads: Iterable[Workload]) -> None:
        self.name = name
        self._workloads: Dict[str, Workload] = {}
        for w in workloads:
            if w.name in self._workloads:
                raise ConfigurationError(f"duplicate workload name {w.name!r}")
            self._workloads[w.name] = w
        if not self._workloads:
            raise ConfigurationError("a suite needs at least one workload")

    def __len__(self) -> int:
        return len(self._workloads)

    def __iter__(self):
        return iter(self._workloads.values())

    def __contains__(self, name: str) -> bool:
        return name in self._workloads

    def names(self) -> List[str]:
        """Workload names in suite order."""
        return list(self._workloads)

    def get(self, name: str) -> Workload:
        """Look up by identifier; raises KeyError when absent."""
        if name not in self._workloads:
            raise KeyError(
                f"workload {name!r} not in suite {self.name!r}; "
                f"available: {', '.join(self._workloads)}"
            )
        return self._workloads[name]

    def most_stressful(self) -> Workload:
        """The workload with the highest overall stress score."""
        return max(self._workloads.values(),
                   key=lambda w: w.profile.overall_stress())


#: A near-idle profile (background OS noise).
IDLE_PROFILE = StressProfile(
    droop_intensity=0.05, core_sensitivity=0.1, activity_factor=0.05,
    cache_pressure=0.05, dram_pressure=0.02,
)

IDLE = Workload(
    name="idle", profile=IDLE_PROFILE, duration_cycles=1e9,
    description="Background OS noise with no user workload.",
)
