"""Synthetic datacenter arrival traces.

Section 4.B: the new scheduling policies must be "non-intrusive in
real-world scenarios where OpenStack would manage streams of incoming
and terminating VMs".  Exercising that requires an arrival process, not
a fixed fleet; this module generates diurnal VM-arrival traces — a
non-homogeneous Poisson process with a day/night cycle plus bursts —
with per-arrival workload and SLA-tier draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from .base import Workload
from .spec import SPEC_NAMES, spec_workload

DAY_S = 24 * 3600.0


@dataclass(frozen=True)
class ArrivalEvent:
    """One VM arrival."""

    timestamp: float
    vm_name: str
    workload: Workload
    tier: str
    lifetime_s: float


@dataclass(frozen=True)
class TraceConfig:
    """Shape of the synthetic arrival process.

    ``base_rate_per_hour`` is the mean arrival rate; the diurnal factor
    swings the instantaneous rate between ``1 - diurnal_amplitude`` and
    ``1 + diurnal_amplitude`` over a day, and bursts multiply it for
    short windows (deploy storms).
    """

    base_rate_per_hour: float = 6.0
    diurnal_amplitude: float = 0.6
    peak_hour: float = 14.0
    burst_probability_per_hour: float = 0.05
    burst_multiplier: float = 5.0
    burst_duration_s: float = 900.0
    mean_lifetime_s: float = 2 * 3600.0
    tier_weights: Tuple[float, float, float] = (0.2, 0.5, 0.3)

    def __post_init__(self) -> None:
        if self.base_rate_per_hour <= 0:
            raise ConfigurationError("rate must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigurationError("diurnal amplitude must be in [0, 1)")
        if abs(sum(self.tier_weights) - 1.0) > 1e-9:
            raise ConfigurationError("tier weights must sum to 1")
        if self.mean_lifetime_s <= 0 or self.burst_duration_s <= 0:
            raise ConfigurationError("durations must be positive")

    def rate_at(self, t_s: float, in_burst: bool = False) -> float:
        """Instantaneous arrivals/second at absolute time ``t_s``."""
        hour = (t_s % DAY_S) / 3600.0
        phase = 2 * math.pi * (hour - self.peak_hour) / 24.0
        diurnal = 1.0 + self.diurnal_amplitude * math.cos(phase)
        rate = self.base_rate_per_hour / 3600.0 * diurnal
        if in_burst:
            rate *= self.burst_multiplier
        return rate


class TraceGenerator:
    """Generates deterministic arrival traces by thinning."""

    TIERS = ("gold", "silver", "bronze")

    def __init__(self, config: Optional[TraceConfig] = None,
                 seed: int = 0) -> None:
        self.config = config or TraceConfig()
        self._rng = np.random.default_rng(seed)

    def _draw_workload(self) -> Workload:
        name = SPEC_NAMES[int(self._rng.integers(len(SPEC_NAMES)))]
        # Lifetime is carried on the event; cycles scale with lifetime.
        return spec_workload(name)

    def generate(self, duration_s: float) -> List[ArrivalEvent]:
        """All arrivals within ``[0, duration_s)``.

        Uses Lewis thinning against the maximum possible rate, so the
        produced process has exactly the configured intensity profile.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        cfg = self.config
        max_rate = (cfg.base_rate_per_hour / 3600.0
                    * (1 + cfg.diurnal_amplitude) * cfg.burst_multiplier)
        events: List[ArrivalEvent] = []
        burst_until = -1.0
        t = 0.0
        index = 0
        while True:
            t += float(self._rng.exponential(1.0 / max_rate))
            if t >= duration_s:
                break
            # Burst windows open memorylessly.
            if t > burst_until and self._rng.random() < (
                    cfg.burst_probability_per_hour / 3600.0
                    / max_rate * 1.0):
                burst_until = t + cfg.burst_duration_s
            in_burst = t <= burst_until
            if self._rng.random() > cfg.rate_at(t, in_burst) / max_rate:
                continue
            tier = self.TIERS[int(self._rng.choice(
                3, p=list(cfg.tier_weights)))]
            lifetime = float(self._rng.exponential(cfg.mean_lifetime_s))
            events.append(ArrivalEvent(
                timestamp=t,
                vm_name=f"trace-vm{index}",
                workload=self._draw_workload(),
                tier=tier,
                lifetime_s=max(60.0, lifetime),
            ))
            index += 1
        return events


def arrivals_per_hour(events: Sequence[ArrivalEvent],
                      duration_s: float) -> List[int]:
    """Hourly arrival counts (for inspecting the diurnal shape)."""
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    n_hours = int(math.ceil(duration_s / 3600.0))
    counts = [0] * n_hours
    for event in events:
        counts[min(n_hours - 1, int(event.timestamp // 3600.0))] += 1
    return counts
