"""Genetic algorithm for generating diagnostic stress viruses.

Section 3.B: "We plan to use genetic algorithms for generating these
viruses [...] The viruses will cause maximum voltage noise, power
consumption and error rates."  This follows the AUDIT line of work (Kim
et al., IEEE MICRO 2012): a virus is a parameterised instruction-mix
kernel, and the GA searches the mix space for the genome that stresses a
*specific* chip hardest.

**Genome.** Six genes in [0, 1] describing the kernel:

0. ``burst_fraction`` — fraction of time in full-width execution bursts;
1. ``pdn_alignment`` — how precisely burst/stall cycles hit the power
   delivery network's resonant frequency;
2. ``fpu_mix`` — share of wide floating-point ops (exercises the longest
   critical paths, maximising core-to-core exposure);
3. ``mem_streaming`` — streaming DRAM traffic share;
4. ``cache_walk`` — cache-thrashing pointer-walk share;
5. ``branchiness`` — branch density (dilutes stress; the GA learns to
   drive it to zero).

**Fitness.** The crash voltage the kernel induces on the target chip's
worst core: a higher crash voltage means the kernel found a deeper
worst-case, hence a safer revealed margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from .base import ResourceDemand, StressProfile, Workload

GENOME_LENGTH = 6
GENE_NAMES = ("burst_fraction", "pdn_alignment", "fpu_mix",
              "mem_streaming", "cache_walk", "branchiness")


def genome_to_profile(genome: Sequence[float]) -> StressProfile:
    """Map a genome to the stress profile its kernel would exhibit.

    The mapping is monotone in the physically meaningful directions and
    reaches the platform worst case (droop 1.0) only for aligned,
    burst-dominated, branch-free genomes — exactly the structure published
    GA-virus studies converge to.
    """
    if len(genome) != GENOME_LENGTH:
        raise ConfigurationError(
            f"genome must have {GENOME_LENGTH} genes, got {len(genome)}"
        )
    g = [min(1.0, max(0.0, float(x))) for x in genome]
    burst, align, fpu, mem, cache, branch = g

    dilution = 1.0 - 0.35 * branch
    droop = burst * (0.40 + 0.60 * align) * dilution
    sensitivity = (0.30 + 0.70 * fpu) * (1.0 - 0.25 * branch)
    activity = burst * (1.0 - 0.30 * mem) * dilution
    cache_pressure = cache * (0.50 + 0.50 * mem)
    dram = mem * (0.60 + 0.40 * cache)

    clamp = lambda x: min(1.0, max(0.0, x))
    return StressProfile(
        droop_intensity=clamp(droop),
        core_sensitivity=clamp(sensitivity),
        activity_factor=clamp(activity),
        cache_pressure=clamp(cache_pressure),
        dram_pressure=clamp(dram),
    )


def physical_genome_to_profile(genome: Sequence[float],
                               pdn_model) -> StressProfile:
    """Genome → profile with the droop term grounded in PDN physics.

    Instead of the abstract ``burst·(0.4 + 0.6·alignment)`` droop law,
    the burst/stall alignment gene is mapped through an actual
    :class:`~repro.hardware.pdn.PdnModel`: the induced droop is computed
    from the PDN's impedance at the genome's burst period, normalised by
    the on-resonance worst case.  Everything else follows the abstract
    mapping, so the two variants are directly comparable.
    """
    if len(genome) != GENOME_LENGTH:
        raise ConfigurationError(
            f"genome must have {GENOME_LENGTH} genes, got {len(genome)}"
        )
    abstract = genome_to_profile(genome)
    g = [min(1.0, max(0.0, float(x))) for x in genome]
    burst, align, _fpu, _mem, _cache, branch = g
    dilution = 1.0 - 0.35 * branch
    physical_droop = (burst * dilution
                      * pdn_model.alignment_to_droop_intensity(align))
    return StressProfile(
        droop_intensity=min(1.0, max(0.0, physical_droop)),
        core_sensitivity=abstract.core_sensitivity,
        activity_factor=abstract.activity_factor,
        cache_pressure=abstract.cache_pressure,
        dram_pressure=abstract.dram_pressure,
    )


def genome_to_workload(genome: Sequence[float],
                       name: str = "ga_virus") -> Workload:
    """Wrap a genome into a runnable workload."""
    return Workload(
        name=name,
        profile=genome_to_profile(genome),
        demand=ResourceDemand(cpu_cores=1.0, memory_mb=128.0),
        duration_cycles=5e9,
        description="GA-evolved diagnostic stress virus.",
    )


FitnessFunction = Callable[[StressProfile], float]


def crash_voltage_fitness(chip) -> FitnessFunction:
    """Fitness = worst-core expected crash voltage under the profile.

    ``chip`` is a :class:`~repro.hardware.chip.ChipModel`; typed loosely to
    avoid an import cycle.  Maximising this voltage means finding the
    workload that makes the chip fail *earliest* — the pathogenic worst
    case the margins must survive.
    """

    def fitness(profile: StressProfile) -> float:
        """Worst-core crash voltage under the profile."""
        return max(
            core.crash_voltage_v(profile) for core in chip.cores
        )

    return fitness


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the virus-evolution GA."""

    population_size: int = 40
    generations: int = 40
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.15
    mutation_sigma: float = 0.15
    elite_count: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ConfigurationError("population_size must be >= 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be >= 1")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ConfigurationError("bad tournament size")
        if not 0 <= self.elite_count < self.population_size:
            raise ConfigurationError("bad elite count")


@dataclass
class GAResult:
    """Outcome of one evolution run."""

    best_genome: Tuple[float, ...]
    best_fitness: float
    history: List[float] = field(default_factory=list)

    def best_workload(self, name: str = "ga_virus") -> Workload:
        """The champion genome wrapped as a workload."""
        return genome_to_workload(self.best_genome, name=name)

    def best_profile(self) -> StressProfile:
        """The champion genome's stress profile."""
        return genome_to_profile(self.best_genome)


class VirusEvolver:
    """Evolves stress-virus genomes against a fitness function."""

    def __init__(self, fitness: FitnessFunction,
                 config: Optional[GAConfig] = None, seed: int = 0) -> None:
        self.fitness = fitness
        self.config = config or GAConfig()
        self._rng = np.random.default_rng(seed)

    def _random_genome(self) -> np.ndarray:
        return self._rng.random(GENOME_LENGTH)

    def _tournament(self, population: List[np.ndarray],
                    scores: List[float]) -> np.ndarray:
        picks = self._rng.integers(0, len(population),
                                   size=self.config.tournament_size)
        best = max(picks, key=lambda i: scores[i])
        return population[best]

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self._rng.random() >= self.config.crossover_rate:
            return a.copy()
        mask = self._rng.random(GENOME_LENGTH) < 0.5
        child = np.where(mask, a, b)
        return child.copy()

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        mask = self._rng.random(GENOME_LENGTH) < self.config.mutation_rate
        noise = self._rng.normal(0.0, self.config.mutation_sigma,
                                 GENOME_LENGTH)
        mutated = np.clip(genome + mask * noise, 0.0, 1.0)
        return mutated

    def evolve(self) -> GAResult:
        """Run the GA and return the champion genome.

        The history records the best fitness per generation, so callers
        can verify monotone (elitist) convergence.
        """
        cfg = self.config
        population = [self._random_genome() for _ in range(cfg.population_size)]
        history: List[float] = []
        best_genome = population[0]
        best_fitness = float("-inf")

        for _ in range(cfg.generations):
            scores = [self.fitness(genome_to_profile(g)) for g in population]
            gen_best = int(np.argmax(scores))
            if scores[gen_best] > best_fitness:
                best_fitness = scores[gen_best]
                best_genome = population[gen_best].copy()
            history.append(best_fitness)

            elite_order = np.argsort(scores)[::-1][:cfg.elite_count]
            next_population = [population[i].copy() for i in elite_order]
            while len(next_population) < cfg.population_size:
                parent_a = self._tournament(population, scores)
                parent_b = self._tournament(population, scores)
                child = self._mutate(self._crossover(parent_a, parent_b))
                next_population.append(child)
            population = next_population

        return GAResult(
            best_genome=tuple(float(x) for x in best_genome),
            best_fitness=float(best_fitness),
            history=history,
        )


def evolve_virus_for_chip(chip, config: Optional[GAConfig] = None,
                          seed: int = 0, name: str = "ga_virus") -> Workload:
    """Convenience: evolve and return the champion virus for a chip."""
    evolver = VirusEvolver(crash_voltage_fitness(chip), config, seed=seed)
    return evolver.evolve().best_workload(name=name)
